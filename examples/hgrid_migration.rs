//! HGRID v1→v2 migration on a mid-size region (topology C), comparing all
//! four planners and exporting the winning plan as NPD phases.
//!
//! ```text
//! cargo run --release --example hgrid_migration
//! ```

use klotski::baselines::{JanusPlanner, MrcPlanner};
use klotski::core::migration::{MigrationBuilder, MigrationOptions};
use klotski::core::plan::validate_plan;
use klotski::core::planner::{AStarPlanner, DpPlanner, Planner};
use klotski::npd::convert::{attach_plan, region_to_npd};
use klotski::topology::presets::{self, PresetId};

fn main() {
    let preset = presets::build(PresetId::C);
    let spec = MigrationBuilder::hgrid_v1_to_v2(&preset, &MigrationOptions::default())
        .expect("well-posed migration");
    println!(
        "{}: {} blocks ({} switch-level actions), theta = {}",
        spec.name,
        spec.num_blocks(),
        spec.num_switch_actions(),
        spec.theta
    );

    let planners: Vec<(&str, Box<dyn Planner>)> = vec![
        ("MRC", Box::new(MrcPlanner::default())),
        ("Janus", Box::new(JanusPlanner::default())),
        ("Klotski-DP", Box::new(DpPlanner::default())),
        ("Klotski-A*", Box::new(AStarPlanner::default())),
    ];

    let mut best = None;
    println!("\nplanner      cost  phases  states  checks  time");
    for (name, planner) in planners {
        match planner.plan(&spec) {
            Ok(o) => {
                println!(
                    "{name:<12} {:<5} {:<7} {:<7} {:<7} {:?}",
                    o.cost,
                    o.plan.num_phases(),
                    o.stats.states_visited,
                    o.stats.sat_checks,
                    o.stats.planning_time
                );
                validate_plan(&spec, &o.plan).expect("every produced plan must be safe");
                let better = best.as_ref().map(|(c, _)| o.cost < *c).unwrap_or(true);
                if better {
                    best = Some((o.cost, o.plan));
                }
            }
            Err(e) => println!("{name:<12} failed: {e}"),
        }
    }

    // Ship the optimal plan downstream the way EDP-Lite would: attached to
    // the NPD document as an ordered phase list.
    let (cost, plan) = best.expect("at least one planner succeeds");
    let mut npd = region_to_npd(&preset.config);
    attach_plan(&mut npd, &spec, &plan);
    println!("\noptimal cost {cost}; NPD phases:");
    for phase in &npd.phases {
        println!(
            "  {}. {} ({} switch ops): {}",
            phase.index,
            phase.action,
            phase.switch_ops,
            phase.blocks.join(", ")
        );
    }
}
