//! The §7 operational pipeline: forecast demand, plan, execute with fault
//! injection, and replan when the realized world drifts.
//!
//! Reproduces the deployment-experience loop: traffic grows organically
//! while a migration runs for months (§7.1), surges hit mid-migration
//! (§7.2), pushes fail and are retried, and routine maintenance takes
//! uninvolved switches down — so the executor re-runs the planner on the
//! residual migration with the re-forecast demand.
//!
//! ```text
//! cargo run --release --example replanning_pipeline
//! ```

use klotski::core::executor::{execute, ExecutorConfig};
use klotski::core::migration::{MigrationBuilder, MigrationOptions};
use klotski::core::planner::{AStarPlanner, Planner};
use klotski::topology::presets::{self, PresetId};
use klotski::traffic::{
    DemandClass, EwmaForecaster, Forecaster, HistoryConfig, LinearTrendForecaster, SurgeEvent,
    TrafficHistory,
};

fn main() {
    // --- Forecast: synthesize a traffic history and predict the level over
    // the next migration step (§7.1).
    let history = TrafficHistory::synthesize(&HistoryConfig::default());
    let horizon = 14;
    let linear = LinearTrendForecaster::default();
    let ewma = EwmaForecaster::default();
    println!(
        "traffic history: {} days, latest level {:.3}",
        history.len(),
        history.latest()
    );
    println!(
        "forecast +{horizon}d: {} = {:.3}, {} = {:.3}",
        linear.name(),
        linear.forecast(&history, horizon),
        ewma.name(),
        ewma.forecast(&history, horizon)
    );
    let growth = (linear.forecast(&history, horizon) / history.latest() - 1.0).max(0.0);

    // --- Plan against the forecast demand.
    let preset = presets::build(PresetId::B);
    let spec =
        MigrationBuilder::hgrid_v1_to_v2(&preset, &MigrationOptions::default()).expect("spec");
    let planner = AStarPlanner::default();
    let plan = planner.plan(&spec).expect("plan").plan;
    println!(
        "\ninitial plan: {} phases over {} blocks",
        plan.num_phases(),
        plan.num_steps()
    );

    // --- Execute in a world that misbehaves.
    let cfg = ExecutorConfig {
        seed: 42,
        failure_prob: 0.25,
        max_retries: 10,
        demand_growth_per_phase: growth,
        surges: vec![SurgeEvent::on_class(1, 3, 1.25, DemandClass::RswToRsw)],
        external_maintenance_prob: 0.5,
        replan_on_violation: true,
    };
    println!(
        "executing with +{:.1}%/phase organic growth, a +25% east/west surge over phases 1-2, \
         25% push-failure rate, and random concurrent maintenance\n",
        growth * 100.0
    );
    let report = execute(&spec, &plan, &planner, &cfg);

    for p in &report.phases {
        println!(
            "phase {:>2}: {} block(s), {} attempt(s), peak util {:.1}%{}{}",
            p.index + 1,
            p.blocks_operated,
            p.attempts,
            p.realized_max_utilization * 100.0,
            if p.external_maintenance {
                ", concurrent maintenance"
            } else {
                ""
            },
            if p.safe {
                ""
            } else {
                "  << UNSAFE under realized demand"
            },
        );
    }
    println!(
        "\ncompleted: {} | replans: {} | {}",
        report.completed,
        report.replans,
        report
            .abort_reason
            .unwrap_or_else(|| "no aborts".to_string())
    );
}
