//! The §7 operational pipeline on the continuous controller: forecast
//! demand, plan, then let `klotski-controller` execute the migration
//! canary-first while the scripted world misbehaves — organic growth
//! (§7.1), a mid-migration east/west surge (§7.2), and a link failure that
//! drives utilization over the bound so the controller safe-pauses,
//! replans incrementally from the observed state, and resumes.
//!
//! ```text
//! cargo run --release --example replanning_pipeline
//! ```

use klotski::controller::{run_scenario, Scenario, ScenarioEvent};
use klotski::traffic::{
    DemandClass, EwmaForecaster, Forecaster, HistoryConfig, LinearTrendForecaster, TrafficHistory,
};

fn main() {
    // --- Forecast: synthesize a traffic history and predict the level over
    // the next migration window (§7.1).
    let history = TrafficHistory::synthesize(&HistoryConfig::default());
    let horizon = 14;
    let linear = LinearTrendForecaster::default();
    let ewma = EwmaForecaster::default();
    println!(
        "traffic history: {} days, latest level {:.3}",
        history.len(),
        history.latest()
    );
    println!(
        "forecast +{horizon}d: {} = {:.3}, {} = {:.3}",
        linear.name(),
        linear.forecast(&history, horizon),
        ewma.name(),
        ewma.forecast(&history, horizon)
    );
    // One controller step ≈ one day: compound the horizon forecast down to
    // a per-step organic growth rate.
    let window_growth = (linear.forecast(&history, horizon) / history.latest() - 1.0).max(0.0);
    let growth_per_step = (1.0 + window_growth).powf(1.0 / horizon as f64) - 1.0;

    // --- Script the world: a +25% east/west surge over steps 1-3 and a
    // link failure after the first batch, under a tightened utilization
    // bound so the failure actually violates a constraint.
    let scenario = Scenario {
        name: "replanning-pipeline".to_string(),
        theta: Some(0.62),
        demand_growth_per_step: growth_per_step,
        events: vec![
            ScenarioEvent::surge(1, 4, 1.25, Some(DemandClass::RswToRsw)),
            ScenarioEvent::link_failure(1, None, None),
        ],
        ..Scenario::sample()
    };
    println!(
        "\nexecuting on preset {} with theta {:.2}, +{:.2}%/step organic growth, a +25% \
         east/west surge over steps 1-3, and a link failure after step 1\n",
        scenario.preset.to_uppercase(),
        scenario.theta.unwrap(),
        growth_per_step * 100.0
    );

    // --- Run the controller: canary batches, per-step shadow audits,
    // safe-pause on violation, incremental replanning, rollback as the
    // last resort.
    let report = run_scenario(&scenario, None).expect("controller run");
    println!(
        "initial plan: {} phases ({} states visited)",
        report.initial_phases, report.initial_stats.states_visited
    );
    for s in &report.steps {
        println!(
            "step {:>2}: {} x{}{} | util {:>5.1}% | drift {}c/{}s{}{}",
            s.step,
            s.action,
            s.blocks,
            if s.canary { " (canary)" } else { "" },
            s.max_utilization * 100.0,
            s.drift_circuits,
            s.drift_switches,
            if s.safe { "" } else { "  << UNSAFE" },
            if s.paused { "  << PAUSE" } else { "" },
        );
        if let Some(reason) = &s.pause_reason {
            println!("         pause: {reason}");
        }
    }
    for r in &report.replans {
        if r.ok {
            println!(
                "replan after step {}: {} phases in {:.1}ms ({} esc entries, {} incremental \
                 replays)",
                r.at_step,
                r.phases,
                r.latency_ms,
                r.stats.esc_entries,
                r.stats.incremental_clean + r.stats.incremental_dirty
            );
        } else {
            println!(
                "replan after step {} FAILED: {}",
                r.at_step,
                r.error.as_deref().unwrap_or("unknown")
            );
        }
    }
    if let Some(rb) = &report.rollback {
        println!(
            "rollback at step {} to step {:?} ({} snapshot(s) skipped, restored state {})",
            rb.at_step,
            rb.to_step,
            rb.snapshots_skipped,
            if rb.safe { "safe" } else { "STILL UNSAFE" }
        );
    }
    println!(
        "\ncompleted: {} | pauses: {} | replans: {} | {} | fingerprint {:016x}",
        report.completed,
        report.pauses(),
        report.replans.len(),
        report.abort_reason.as_deref().unwrap_or("no aborts"),
        report.fingerprint()
    );
}
