//! NPD pipeline round trip: export a region to the Network Product
//! Definition format, re-import it, plan the migration, and attach the
//! resulting phase list to the document — the §5 EDP-Lite interface.
//!
//! ```text
//! cargo run --release --example npd_roundtrip
//! ```

use klotski::core::migration::{MigrationBuilder, MigrationOptions};
use klotski::core::planner::{AStarPlanner, Planner};
use klotski::npd::convert::{attach_plan, npd_to_topology, region_to_npd};
use klotski::npd::Npd;
use klotski::topology::presets::{self, PresetId};

fn main() {
    // Export an existing region design to NPD and serialize it.
    let preset = presets::build(PresetId::B);
    let npd = region_to_npd(&preset.config);
    let json = npd.to_json_pretty().expect("serialize");
    println!(
        "exported {} as NPD v{}: {} bytes of JSON, {} fabric building(s), {} HGRID layer(s)",
        npd.name,
        npd.version,
        json.len(),
        npd.fabric.buildings.len(),
        npd.hgrid.layers.len()
    );

    // A consumer parses the document and rebuilds the identical topology.
    let parsed = Npd::from_json(&json).expect("parse");
    let (topology, _) = npd_to_topology(&parsed).expect("convert");
    assert_eq!(topology.num_switches(), preset.topology.num_switches());
    assert_eq!(topology.num_circuits(), preset.topology.num_circuits());
    println!(
        "re-imported topology matches: {} switches / {} circuits",
        topology.num_switches(),
        topology.num_circuits()
    );

    // Plan and write the phases back into the document.
    let spec =
        MigrationBuilder::hgrid_v1_to_v2(&preset, &MigrationOptions::default()).expect("spec");
    let plan = AStarPlanner::default().plan(&spec).expect("plan").plan;
    let mut shipped = parsed;
    attach_plan(&mut shipped, &spec, &plan);
    println!("\nNPD migration phases (what operators receive):");
    for phase in &shipped.phases {
        println!(
            "  {}. {} — {} switch ops across {} block(s)",
            phase.index,
            phase.action,
            phase.switch_ops,
            phase.blocks.len()
        );
    }
    let final_json = shipped.to_json_pretty().expect("serialize with phases");
    println!("\nfinal document: {} bytes", final_json.len());
}
