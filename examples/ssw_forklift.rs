//! SSW forklift migration (Figure 3b): upgrade every spine switch of one
//! datacenter, sweeping the utilization bound θ to show how safety headroom
//! buys shorter plans.
//!
//! ```text
//! cargo run --release --example ssw_forklift
//! ```

use klotski::core::migration::{MigrationBuilder, MigrationOptions};
use klotski::core::plan::validate_plan;
use klotski::core::planner::{AStarPlanner, Planner};
use klotski::topology::presets::{self, PresetId};

fn main() {
    println!("SSW forklift on topology E (one datacenter's spine, both generations)\n");
    println!("theta   cost  phases  states  time");
    for theta in [0.60, 0.70, 0.75, 0.85, 0.95] {
        let preset = presets::build_for_bench(PresetId::ESsw);
        let opts = MigrationOptions {
            theta,
            ..MigrationOptions::default()
        };
        let spec = match MigrationBuilder::ssw_forklift(&preset, &opts) {
            Ok(s) => s,
            Err(e) => {
                println!("{theta:<7} instance infeasible: {e}");
                continue;
            }
        };
        match AStarPlanner::default().plan(&spec) {
            Ok(o) => {
                validate_plan(&spec, &o.plan).expect("safe plan");
                println!(
                    "{theta:<7} {:<5} {:<7} {:<7} {:?}",
                    o.cost,
                    o.plan.num_phases(),
                    o.stats.states_visited,
                    o.stats.planning_time
                );
            }
            Err(e) => println!("{theta:<7} ✗ {e}"),
        }
    }
    println!(
        "\nA tighter bound keeps more headroom for failures and bursts, but each drain can then \
         take down fewer spine switches at once, so the plan needs more serial phases — the \
         trade-off of Figure 12."
    );
}
