//! DMAG migration: inserting the MA layer between FAUUs and EBs (Figure 3c)
//! — the migration type that changes the topology's structure and therefore
//! defeats the symmetry-based and greedy baselines (§6.3).
//!
//! ```text
//! cargo run --release --example dmag_migration
//! ```

use klotski::baselines::{JanusPlanner, MrcPlanner};
use klotski::core::migration::{MigrationBuilder, MigrationOptions};
use klotski::core::plan::validate_plan;
use klotski::core::planner::{AStarPlanner, Planner};
use klotski::topology::presets::{self, PresetId};
use klotski::topology::SwitchRole;

fn main() {
    let preset = presets::build_for_bench(PresetId::EDmag);
    let mas = preset.topology.switches_by_role(SwitchRole::Ma).count();
    println!(
        "region {}: inserting {} MA switches between {} FAUUs and {} EBs",
        preset.topology.name(),
        mas,
        preset.topology.switches_by_role(SwitchRole::Fauu).count(),
        preset.topology.switches_by_role(SwitchRole::Eb).count()
    );

    let spec = MigrationBuilder::dmag(&preset, &MigrationOptions::default()).expect("spec");
    println!(
        "blocks: {} direct-circuit bundles to drain + {} MA groups to undrain (split policy: {:?})",
        spec.blocks_by_type[0].len(),
        spec.blocks_by_type[1].len(),
        spec.split
    );

    // The baselines cannot plan a topology-changing migration.
    for (name, result) in [
        ("MRC", MrcPlanner::default().plan(&spec).map(|o| o.cost)),
        ("Janus", JanusPlanner::default().plan(&spec).map(|o| o.cost)),
    ] {
        match result {
            Ok(c) => println!("{name}: unexpectedly planned at cost {c}"),
            Err(e) => println!("{name}: ✗ {e}"),
        }
    }

    // Klotski plans it.
    let outcome = AStarPlanner::default()
        .plan(&spec)
        .expect("Klotski plans DMAG");
    validate_plan(&spec, &outcome.plan).expect("safe plan");
    println!(
        "\nKlotski-A*: cost {} in {:?} ({} states visited)",
        outcome.cost, outcome.stats.planning_time, outcome.stats.states_visited
    );
    for (i, phase) in outcome.plan.phases().iter().enumerate() {
        let kind = spec.actions.kind(phase.kind);
        println!("  phase {}: {kind} x{}", i + 1, phase.blocks.len());
    }
    println!(
        "\nevery drain of a grid's direct circuits is covered by already-deployed MA capacity — \
         the port budgets at the EBs force the '{}' interleaving the paper describes in §5",
        outcome.plan.num_phases()
    );
}
