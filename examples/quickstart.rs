//! Quickstart: plan an HGRID v1→v2 migration on the smallest evaluation
//! topology and print the resulting phases.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use klotski::core::migration::{MigrationBuilder, MigrationOptions};
use klotski::core::plan::validate_plan;
use klotski::core::planner::{AStarPlanner, Planner};
use klotski::topology::presets::{self, PresetId};

fn main() {
    // 1. Build the union topology: both HGRID generations, v2 not yet live.
    let preset = presets::build(PresetId::A);
    println!(
        "topology {}: {} switches, {} circuits",
        preset.topology.name(),
        preset.topology.num_switches(),
        preset.topology.num_circuits()
    );

    // 2. Turn it into a migration instance: operation blocks, calibrated
    //    demands, port budgets, space model.
    let spec = MigrationBuilder::hgrid_v1_to_v2(&preset, &MigrationOptions::default())
        .expect("well-posed migration");
    println!(
        "migration {}: {} operation blocks over {} action types, {} switch-level actions",
        spec.name,
        spec.num_blocks(),
        spec.num_types(),
        spec.num_switch_actions()
    );

    // 3. Plan with the A* search planner.
    let outcome = AStarPlanner::default().plan(&spec).expect("plan");
    println!(
        "\noptimal plan: cost {} ({} serial phases), {} states visited, {} satisfiability checks ({} cache hits) in {:?}\n",
        outcome.cost,
        outcome.plan.num_phases(),
        outcome.stats.states_visited,
        outcome.stats.sat_checks,
        outcome.stats.cache_hits,
        outcome.stats.planning_time
    );
    for (i, phase) in outcome.plan.phases().iter().enumerate() {
        let kind = spec.actions.kind(phase.kind);
        let labels: Vec<&str> = phase
            .blocks
            .iter()
            .map(|&b| spec.blocks[b.index()].label.as_str())
            .collect();
        println!("  phase {}: {kind}  [{}]", i + 1, labels.join(", "));
    }

    // 4. Independently verify the plan against Eq. 2-6.
    validate_plan(&spec, &outcome.plan).expect("plan must replay safely");
    println!("\nplan validated: every intermediate topology is safe");
}
