//! Offline shim of `rand` for this workspace: a deterministic
//! xoshiro256++ `SmallRng` seeded via SplitMix64, with the small API
//! surface the repo uses (`seed_from_u64`, `random_range`, `shuffle`).
//! All consumers seed explicitly, so cross-version reproducibility is
//! governed by this file alone.

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Extension trait providing range sampling (mirrors `rand::Rng`'s
/// `random_range` in the 0.9+ naming).
pub trait RngExt: Rng + Sized {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + Sized> RngExt for R {}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let span = self.end - self.start;
        let mut v = self.start + rng.next_f64() * span;
        // Rounding can land exactly on `end`; the contract is half-open.
        if v >= self.end {
            v = f64::from_bits(self.end.to_bits() - 1);
        }
        v.max(self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling (Lemire); the tiny bias
                // is irrelevant for simulation seeds and test generators.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (end as u64).wrapping_sub(start as u64) + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++, seeded through SplitMix64 — deterministic and fast.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling/picking (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (((rng.next_u64() as u128) * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                return None;
            }
            let j = (((rng.next_u64() as u128) * (self.len() as u128)) >> 64) as usize;
            self.get(j)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn f64_range_is_half_open() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn usize_range_covers_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(2u16..=3);
            assert!(v == 2 || v == 3);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
        assert!(v.choose(&mut rng).is_some());
    }
}
