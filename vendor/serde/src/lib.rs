//! Offline shim of `serde` for this workspace.
//!
//! The build environment cannot reach a crate registry, so the workspace
//! vendors a minimal value-based serialization framework under the same
//! crate names the code already imports. Types convert to/from a JSON-like
//! [`Value`] tree; `vendor/serde_json` renders and parses the JSON text.
//!
//! The data model intentionally covers exactly what the repo serializes:
//! primitives, strings, `Vec`, `Option`, 2/3-tuples, `Duration`, and
//! string-keyed maps.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree — the interchange format between typed data and
/// serialized text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// An insertion-ordered string-keyed map (mirrors `serde_json::Map`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_entries(entries: Vec<(String, Value)>) -> Self {
        Self { entries }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Inserts or replaces, preserving the original position on replace.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called for an absent struct field with no `#[serde(default)]`.
    /// `Option` fields overrides this to yield `None`, matching serde's
    /// missing-field behavior for optionals.
    fn from_missing(field: &str) -> Result<Self, Error> {
        Err(Error::new(format!("missing field `{field}`")))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Deserialize for Map {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .cloned()
            .ok_or_else(|| Error::new("expected object"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::new("expected bool"))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_f64().ok_or_else(|| Error::new("expected number"))?;
                if n.fract() != 0.0 {
                    return Err(Error::new("expected integer"));
                }
                // A bare `as` cast would saturate silently (-3 → 0usize);
                // mirror serde's out-of-range rejection instead.
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(Error::new(concat!(
                        "integer out of range for ",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::new("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }

    fn from_missing(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::new("expected 2-tuple"))?;
        if arr.len() != 2 {
            return Err(Error::new("expected 2-tuple"));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::new("expected 3-tuple"))?;
        if arr.len() != 3 {
            return Err(Error::new("expected 3-tuple"));
        }
        Ok((
            A::from_value(&arr[0])?,
            B::from_value(&arr[1])?,
            C::from_value(&arr[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(Map::from_entries(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        ))
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::new("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(Map::from_entries(vec![
            ("secs".into(), Value::Number(self.as_secs() as f64)),
            (
                "nanos".into(),
                Value::Number(f64::from(self.subsec_nanos())),
            ),
        ]))
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::new("expected duration object"))?;
        let secs = obj
            .get("secs")
            .and_then(Value::as_f64)
            .ok_or_else(|| Error::new("duration missing secs"))?;
        let nanos = obj
            .get("nanos")
            .and_then(Value::as_f64)
            .ok_or_else(|| Error::new("duration missing nanos"))?;
        Ok(Duration::new(secs as u64, nanos as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces_in_place() {
        let mut m = Map::new();
        m.insert("b".into(), Value::Number(1.0));
        m.insert("a".into(), Value::Number(2.0));
        m.insert("b".into(), Value::Number(3.0));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::Number(3.0)));
        assert_eq!(m.remove("a"), Some(Value::Number(2.0)));
        assert!(!m.contains_key("a"));
    }

    #[test]
    fn option_handles_missing_and_null() {
        assert_eq!(Option::<u32>::from_missing("f").unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Value::Number(4.0)).unwrap(),
            Some(4)
        );
        assert!(u32::from_missing("f").is_err());
    }

    #[test]
    fn duration_roundtrips() {
        let d = Duration::new(12, 345_678_901);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn integers_reject_fractions() {
        assert!(u32::from_value(&Value::Number(1.5)).is_err());
        assert_eq!(u32::from_value(&Value::Number(7.0)).unwrap(), 7);
    }
}
