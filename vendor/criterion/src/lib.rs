//! Offline shim of `criterion` for this workspace: enough of the API for
//! the `benches/` files to compile and produce honest (if statistically
//! simpler) timings. Each `bench_function` warms up, then runs timed
//! batches until the measurement window closes, reporting min/mean/max.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, mut f: F) {
        run_benchmark(&name.to_string(), 10, Duration::from_secs(3), &mut f);
    }

    /// Criterion's post-run hook; nothing to finalize here.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(
            &name.to_string(),
            self.sample_size,
            self.measurement_time,
            &mut f,
        );
        self
    }

    pub fn finish(&mut self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
        measurement_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("  {name}: no samples");
        return;
    }
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().cloned().fold(0.0f64, f64::max);
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    eprintln!(
        "  {name}: [{} {} {}] ({} samples)",
        format_time(min),
        format_time(mean),
        format_time(max),
        b.samples.len()
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Runs the measured closure and records per-iteration timings.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: one untimed run.
        black_box(f());
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed().as_secs_f64());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Builds one `fn group_name()` running every target against a fresh
/// `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Builds `fn main()` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2e-9).ends_with("ns"));
        assert!(format_time(2e-6).ends_with("µs"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2.0).ends_with('s'));
    }
}
