//! Offline shim of `proptest` for this workspace.
//!
//! Provides the `proptest!` macro, `ProptestConfig`, numeric-range and
//! boolean strategies, and `collection::vec` — the exact surface the repo's
//! property tests use. Cases are generated from a deterministic RNG seeded
//! by the test name, so failures reproduce run-to-run. (No shrinking: a
//! failing case panics with the generated inputs visible in the assert.)

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The deterministic generator handed to strategies.
pub struct TestRng {
    rng: SmallRng,
}

impl TestRng {
    /// Seeded from the test's name, so each test gets a stable stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        Self {
            rng: SmallRng::seed_from_u64(h),
        }
    }
}

/// A value generator.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.rng.random_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        // Sampling the half-open range is fine for test generation; the
        // inclusive upper bound has probability ~0 anyway.
        let (s, e) = (*self.start(), *self.end());
        if s == e {
            return s;
        }
        rng.rng.random_range(s..e)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{RngExt, Strategy, TestRng};

    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.rng.random_range(0u32..2) == 1
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{RngExt, Strategy, TestRng};
    use std::ops::Range;

    /// A size specification: exact or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.random_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` block: expands each contained `fn name(arg in strategy)`
/// into a plain test that draws `config.cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (@funcs ($config:expr)) => {};
    (@funcs ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    // With an explicit config.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    // Without a config: use the default.
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(
            x in 3u32..10,
            y in 0.25f64..0.5,
            z in 2u16..=4,
            flag in prop::bool::ANY,
            v in prop::collection::vec(0usize..7, 1..5),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.5).contains(&y));
            prop_assert!((2..=4).contains(&z));
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 7));
        }
    }

    #[test]
    fn deterministic_streams_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
