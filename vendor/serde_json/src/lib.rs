//! Offline shim of `serde_json` for this workspace: renders and parses JSON
//! text against the vendored `serde` value model. Floats use Rust's shortest
//! round-trip formatting, so `to_string` → `from_str` is lossless for every
//! finite `f64`.

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::{Map, Value};

/// JSON serialization/parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Converts any serializable value into the [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
        out.push_str("null");
    } else if n == 0.0 && n.is_sign_negative() {
        out.push_str("-0.0");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(Map::from_entries(entries)));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(Map::from_entries(entries)));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            s.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let ch_len = utf8_len(b);
                    let chunk = rest
                        .get(..ch_len)
                        .ok_or_else(|| Error::new("invalid UTF-8"))?;
                    let ch = std::str::from_utf8(chunk)
                        .map_err(|_| Error::new("invalid UTF-8"))?
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("invalid UTF-8"))?;
                    s.push(ch);
                    self.pos = start + ch_len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::Object(Map::from_entries(vec![
            ("num".into(), Value::Number(0.25)),
            ("int".into(), Value::Number(9.0)),
            (
                "arr".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("s".into(), Value::String("a\"b\\c\nd".into())),
        ]));
        let compact = to_string(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
        assert!(compact.contains("\"int\":9"));
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &f in &[0.1, 1.0 / 3.0, f64::MAX, 5e-324, -0.0, 123456.789] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {s}");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""aé😀b""#).unwrap();
        assert_eq!(v, Value::String("aé😀b".into()));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
