//! Offline shim of `serde_derive` for this workspace.
//!
//! The build environment has no network access to a crate registry, so the
//! workspace vendors a minimal serde data model (`vendor/serde`) and this
//! companion derive. It intentionally supports exactly the shapes used in the
//! repo — named-field structs, single-field tuple structs, and unit-variant
//! enums — plus the `#[serde(default)]`, `#[serde(default = "path")]`, and
//! `#[serde(transparent)]` attributes. Anything else is a compile error, not
//! silent misbehavior.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum FieldDefault {
    Required,
    Std,
    Path(String),
}

struct Field {
    name: String,
    default: FieldDefault,
}

enum Kind {
    Struct(Vec<Field>),
    Newtype,
    Enum(Vec<String>),
}

struct Item {
    name: String,
    kind: Kind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let mut is_enum = false;
    // Skip outer attributes and visibility until `struct` / `enum`.
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" {
                    break;
                }
                if s == "enum" {
                    is_enum = true;
                    break;
                }
                // `pub` / `crate`; a following `(crate)` group is consumed
                // by the Group arm on the next loop turn.
            }
            Some(TokenTree::Group(_)) => {}
            Some(_) => {}
            None => panic!("serde_derive shim: no struct or enum found"),
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive shim: generics are not supported ({name})")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Item {
                    name,
                    kind: Kind::Enum(parse_variants(g.stream())),
                }
            } else {
                Item {
                    name,
                    kind: Kind::Struct(parse_fields(g.stream())),
                }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = count_tuple_fields(g.stream());
            if is_enum || n != 1 {
                panic!("serde_derive shim: only single-field tuple structs are supported ({name})");
            }
            Item {
                name,
                kind: Kind::Newtype,
            }
        }
        other => panic!("serde_derive shim: unsupported shape for {name}: {other:?}"),
    }
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_token = false;
    for t in ts {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    fields += 1;
                    saw_token = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token = true;
    }
    fields + usize::from(saw_token)
}

fn parse_fields(ts: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = ts.into_iter().peekable();
    loop {
        let mut default = FieldDefault::Required;
        // Attributes (doc comments and #[serde(...)]).
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.next() {
                if let Some(d) = parse_serde_default(g.stream()) {
                    default = d;
                }
            }
        }
        // Visibility.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(
                iter.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                iter.next();
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after {name}, got {other:?}"),
        }
        // Skip the type up to a top-level comma (angle-bracket aware).
        let mut depth = 0i32;
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
                None => break,
            }
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Extracts a default policy from one attribute token group, if it is
/// `serde(default)` or `serde(default = "path")`.
fn parse_serde_default(ts: TokenStream) -> Option<FieldDefault> {
    let mut iter = ts.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match iter.next() {
        Some(TokenTree::Group(g)) => g.stream(),
        _ => return None,
    };
    let mut it = inner.into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => match it.next() {
                Some(TokenTree::Literal(l)) => {
                    let s = l.to_string();
                    Some(FieldDefault::Path(s.trim_matches('"').to_string()))
                }
                _ => None,
            },
            _ => Some(FieldDefault::Std),
        },
        // `transparent` and friends need no field handling here: the
        // newtype codegen already forwards to the inner value.
        _ => None,
    }
}

fn parse_variants(ts: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = ts.into_iter().peekable();
    loop {
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => {
                variants.push(id.to_string());
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                    Some(TokenTree::Group(_)) => {
                        panic!("serde_derive shim: only unit enum variants are supported")
                    }
                    Some(other) => {
                        panic!("serde_derive shim: unexpected token after variant: {other:?}")
                    }
                    None => break,
                }
            }
            None => break,
            other => panic!("serde_derive shim: expected variant name, got {other:?}"),
        }
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    match &item.kind {
        Kind::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f})));\n",
                    f = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(::serde::Map::from_entries(__fields))\n\
                 }}\n}}\n"
            )
        }
        Kind::Newtype => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
             ::serde::Serialize::to_value(&self.0)\n\
             }}\n}}\n"
        ),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!("{name}::{v} => \"{v}\",\n"));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::String(::std::string::String::from(match self {{\n{arms}}}))\n\
                 }}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    match &item.kind {
        Kind::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let missing = match &f.default {
                    FieldDefault::Required => format!(
                        "::serde::Deserialize::from_missing(\"{name}.{f}\")?",
                        f = f.name
                    ),
                    FieldDefault::Std => "::std::default::Default::default()".to_string(),
                    FieldDefault::Path(p) => format!("{p}()"),
                };
                inits.push_str(&format!(
                    "{f}: match __obj.get(\"{f}\") {{\n\
                     ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                     ::std::option::Option::None => {missing},\n\
                     }},\n",
                    f = f.name
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::new(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                 }}\n}}\n"
            )
        }
        Kind::Newtype => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n\
             }}\n}}\n"
        ),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!(
                    "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let __s = __v.as_str().ok_or_else(|| \
                 ::serde::Error::new(\"expected string for {name}\"))?;\n\
                 match __s {{\n{arms}\
                 _ => ::std::result::Result::Err(::serde::Error::new(\
                 \"unknown {name} variant\")),\n}}\n\
                 }}\n}}\n"
            )
        }
    }
}
