//! Demand-constraint evaluation (Eq. 4–5) and demand calibration.

use crate::ecmp::{EcmpRouter, SplitPolicy};
use crate::loads::LoadMap;
use klotski_topology::{CircuitId, NetState, Topology};
use klotski_traffic::DemandMatrix;

/// Utilization summary of one routed state.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationReport {
    /// Highest worst-direction utilization over usable circuits.
    pub max_utilization: f64,
    /// The circuit attaining `max_utilization`, if any traffic was routed.
    pub worst_circuit: Option<CircuitId>,
    /// Number of usable circuits whose utilization exceeds θ.
    pub violations: usize,
    /// Smallest residual capacity `(θ·W_c − load)` over usable circuits,
    /// Gbps. Negative iff some circuit violates θ. This is the quantity the
    /// MRC baseline greedily maximizes.
    pub min_residual_gbps: f64,
}

/// Outcome of an Eq. 4–5 evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SafetyOutcome {
    /// Eq. 4: every demand has a live path.
    pub all_reachable: bool,
    /// Count of unreachable demands.
    pub unreachable_demands: usize,
    /// Eq. 5 summary.
    pub report: UtilizationReport,
}

impl SafetyOutcome {
    /// True iff both demand constraints hold.
    pub fn satisfied(&self) -> bool {
        self.all_reachable && self.report.violations == 0
    }
}

/// Evaluates the demand constraints of (`topo`, `state`) under `demands`
/// with utilization bound `theta`, reusing the caller's router and load
/// buffers.
pub fn evaluate_with(
    router: &mut EcmpRouter,
    loads: &mut LoadMap,
    topo: &Topology,
    state: &NetState,
    demands: &DemandMatrix,
    theta: f64,
) -> SafetyOutcome {
    assert!(theta > 0.0, "utilization bound must be positive");
    loads.clear();
    let route = router.route(topo, state, demands, loads);
    let report = summarize(topo, state, loads, theta);
    SafetyOutcome {
        all_reachable: route.all_reachable(),
        unreachable_demands: route.unreachable.len(),
        report,
    }
}

/// One-shot convenience wrapper around [`evaluate_with`] that allocates
/// fresh buffers. Prefer [`evaluate_with`] in loops.
pub fn evaluate(
    topo: &Topology,
    state: &NetState,
    demands: &DemandMatrix,
    theta: f64,
) -> SafetyOutcome {
    evaluate_policy(topo, state, demands, theta, SplitPolicy::Ecmp)
}

/// Like [`evaluate`], with an explicit flow-split policy.
pub fn evaluate_policy(
    topo: &Topology,
    state: &NetState,
    demands: &DemandMatrix,
    theta: f64,
    policy: SplitPolicy,
) -> SafetyOutcome {
    let mut router = EcmpRouter::with_policy(topo, policy);
    let mut loads = LoadMap::new(topo);
    evaluate_with(&mut router, &mut loads, topo, state, demands, theta)
}

/// Summarizes utilization over the usable circuits of a state.
pub fn summarize(
    topo: &Topology,
    state: &NetState,
    loads: &LoadMap,
    theta: f64,
) -> UtilizationReport {
    let mut max_utilization = 0.0_f64;
    let mut worst_circuit = None;
    let mut violations = 0usize;
    let mut min_residual = f64::INFINITY;
    for c in topo.circuits() {
        if !state.circuit_usable(topo, c.id) {
            continue;
        }
        let load = loads.max_direction(c.id);
        let util = load / c.capacity_gbps;
        if util > max_utilization {
            max_utilization = util;
            worst_circuit = Some(c.id);
        }
        if util > theta {
            violations += 1;
        }
        let residual = theta * c.capacity_gbps - load;
        if residual < min_residual {
            min_residual = residual;
        }
    }
    UtilizationReport {
        max_utilization,
        worst_circuit,
        violations,
        min_residual_gbps: if min_residual.is_finite() {
            min_residual
        } else {
            0.0
        },
    }
}

/// Returns the factor by which `demands` can be scaled so that the maximum
/// utilization of (`topo`, `state`) becomes exactly `target`.
///
/// ECMP loads are linear in the demand rates, so the factor is simply
/// `target / max_utilization`. Presets use this to pin the initial world at
/// a chosen fraction of θ, which is how we reproduce the paper's utilization
/// sweeps (Figure 12) without production traffic data.
///
/// # Panics
/// Panics if any demand is unreachable or no traffic is routed (the factor
/// would be meaningless).
pub fn scale_to_target_utilization(
    topo: &Topology,
    state: &NetState,
    demands: &DemandMatrix,
    target: f64,
) -> f64 {
    scale_to_target_utilization_on(topo, state, demands, target, SplitPolicy::Ecmp, |_| true)
}

/// Like [`scale_to_target_utilization`], but the maximum is taken only over
/// circuits selected by `filter`. Migration specs use this to pin the
/// utilization of the layer being migrated (e.g. the FA layer), independent
/// of how hot the untouched fabric below happens to be.
///
/// # Panics
/// Panics if any demand is unreachable, or if no selected circuit carries
/// traffic.
pub fn scale_to_target_utilization_on(
    topo: &Topology,
    state: &NetState,
    demands: &DemandMatrix,
    target: f64,
    policy: SplitPolicy,
    filter: impl Fn(CircuitId) -> bool,
) -> f64 {
    assert!(target > 0.0, "target utilization must be positive");
    let mut router = EcmpRouter::with_policy(topo, policy);
    let mut loads = LoadMap::new(topo);
    let route = router.route(topo, state, demands, &mut loads);
    assert!(
        route.all_reachable(),
        "cannot calibrate: {} unreachable demands",
        route.unreachable.len()
    );
    let mut max_util = 0.0_f64;
    for c in topo.circuits() {
        if state.circuit_usable(topo, c.id) && filter(c.id) {
            max_util = max_util.max(loads.utilization(topo, c.id));
        }
    }
    assert!(
        max_util > 0.0,
        "cannot calibrate: no traffic routed over selected circuits"
    );
    target / max_util
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_topology::{
        graph::{SwitchSpec, TopologyBuilder},
        DcId, Generation, SwitchId, SwitchRole,
    };
    use klotski_traffic::{Demand, DemandClass};

    /// src -2 circuits-> dst with capacities 100 and 50.
    fn twolink() -> (Topology, SwitchId, SwitchId, CircuitId, CircuitId) {
        let mut b = TopologyBuilder::new("t");
        let s = b.add_switch(SwitchSpec::new(SwitchRole::Rsw, Generation::V1, DcId(0), 8));
        let d = b.add_switch(SwitchSpec::new(SwitchRole::Ebb, Generation::V1, DcId(0), 8));
        let c0 = b.add_circuit(s, d, 100.0).unwrap();
        let c1 = b.add_circuit(s, d, 50.0).unwrap();
        (b.build(), s, d, c0, c1)
    }

    fn demand(s: SwitchId, d: SwitchId, gbps: f64) -> DemandMatrix {
        [Demand {
            src: s,
            dst: d,
            gbps,
            class: DemandClass::RswToEbb,
        }]
        .into_iter()
        .collect()
    }

    #[test]
    fn utilization_uses_worst_circuit() {
        let (t, s, d, _c0, c1) = twolink();
        let state = NetState::all_up(&t);
        // 60 Gbps split equally: 30 on each. c1 (50 Gbps) is at 0.6.
        let out = evaluate(&t, &state, &demand(s, d, 60.0), 0.75);
        assert!(out.satisfied());
        assert!((out.report.max_utilization - 0.6).abs() < 1e-9);
        assert_eq!(out.report.worst_circuit, Some(c1));
        // theta*50 - 30 = 7.5 is the binding residual.
        assert!((out.report.min_residual_gbps - 7.5).abs() < 1e-9);
    }

    #[test]
    fn violation_detected_above_theta() {
        let (t, s, d, _, _) = twolink();
        let state = NetState::all_up(&t);
        let out = evaluate(&t, &state, &demand(s, d, 90.0), 0.75);
        // 45 on the 50 Gbps circuit = 0.9 > 0.75.
        assert!(!out.satisfied());
        assert!(out.all_reachable);
        assert_eq!(out.report.violations, 1);
        assert!(out.report.min_residual_gbps < 0.0);
    }

    #[test]
    fn unreachable_fails_even_with_zero_traffic() {
        let (t, s, d, c0, c1) = twolink();
        let mut state = NetState::all_up(&t);
        state.set_circuit(c0, false);
        state.set_circuit(c1, false);
        let out = evaluate(&t, &state, &demand(s, d, 0.0), 0.75);
        assert!(!out.satisfied());
        assert!(!out.all_reachable);
        assert_eq!(out.unreachable_demands, 1);
    }

    #[test]
    fn drained_circuits_are_excluded_from_report() {
        let (t, s, d, _c0, c1) = twolink();
        let mut state = NetState::all_up(&t);
        state.set_circuit(c1, false);
        let out = evaluate(&t, &state, &demand(s, d, 70.0), 0.75);
        // All 70 on the 100 Gbps circuit: util 0.7, one usable circuit.
        assert!(out.satisfied());
        assert!((out.report.max_utilization - 0.7).abs() < 1e-9);
    }

    #[test]
    fn calibration_hits_target_exactly() {
        let (t, s, d, _, _) = twolink();
        let state = NetState::all_up(&t);
        let m = demand(s, d, 60.0);
        let factor = scale_to_target_utilization(&t, &state, &m, 0.5);
        let same = scale_to_target_utilization_on(&t, &state, &m, 0.5, SplitPolicy::Ecmp, |_| true);
        assert!((factor - same).abs() < 1e-12);
        let scaled = m.scaled(factor);
        let out = evaluate(&t, &state, &scaled, 0.75);
        assert!((out.report.max_utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn calibration_rejects_disconnected_state() {
        let (t, s, d, c0, c1) = twolink();
        let mut state = NetState::all_up(&t);
        state.set_circuit(c0, false);
        state.set_circuit(c1, false);
        scale_to_target_utilization(&t, &state, &demand(s, d, 10.0), 0.5);
    }

    #[test]
    fn empty_matrix_is_trivially_satisfied() {
        let (t, _, _, _, _) = twolink();
        let state = NetState::all_up(&t);
        let out = evaluate(&t, &state, &DemandMatrix::new(), 0.75);
        assert!(out.satisfied());
        assert_eq!(out.report.max_utilization, 0.0);
    }
}
