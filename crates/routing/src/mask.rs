//! Usable-circuit bitmask, hoisted out of routing inner loops.
//!
//! `NetState::circuit_usable` consults the circuit's own bit plus both
//! endpoint switches. The BFS and flow sweeps ask that question once per
//! circuit *per destination group*, so a full satisfiability check repeats
//! it O(|destinations| × |C|) times over an unchanging state. [`UsableMask`]
//! evaluates the predicate once per circuit per state and answers from a
//! bitset afterwards — and, being read-only after [`compute`], it is shared
//! safely across parallel routing lanes.
//!
//! [`compute`]: UsableMask::compute

use klotski_topology::{BitSet, CircuitId, NetState, Topology};

/// The set of circuits usable under one `(Topology, NetState)` pair.
#[derive(Debug, Clone)]
pub struct UsableMask {
    bits: BitSet,
    len: usize,
}

impl Default for UsableMask {
    fn default() -> Self {
        Self {
            bits: BitSet::new(0),
            len: 0,
        }
    }
}

impl UsableMask {
    /// An empty mask; call [`compute`](Self::compute) before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A mask computed for one state.
    pub fn for_state(topo: &Topology, state: &NetState) -> Self {
        let mut m = Self::new();
        m.compute(topo, state);
        m
    }

    /// Recomputes the mask for `state`, reusing the allocation when the
    /// topology size is unchanged.
    pub fn compute(&mut self, topo: &Topology, state: &NetState) {
        let n = topo.num_circuits();
        if self.len != n {
            self.bits = BitSet::new(n);
            self.len = n;
        } else {
            self.bits.clear_all();
        }
        for i in 0..n {
            if state.circuit_usable(topo, CircuitId::from_index(i)) {
                self.bits.set(i, true);
            }
        }
    }

    /// Overwrites the usability bit of one circuit. The incremental engine
    /// flips exactly the circuits whose usability changed between two
    /// states, skipping the full O(|C|) rescan of [`compute`](Self::compute).
    #[inline]
    pub fn set(&mut self, c: CircuitId, usable: bool) {
        self.bits.set(c.index(), usable);
    }

    /// True if circuit `c` was usable in the state last computed.
    #[inline]
    pub fn usable(&self, c: CircuitId) -> bool {
        self.bits.get(c.index())
    }

    /// [`usable`](Self::usable) by dense circuit index — the form the
    /// CSR-flattened routing loops use, skipping the id round-trip.
    #[inline]
    pub fn usable_idx(&self, c: usize) -> bool {
        self.bits.get(c)
    }

    /// Number of circuits covered by the last [`compute`](Self::compute).
    pub fn num_circuits(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_topology::{
        graph::{SwitchSpec, TopologyBuilder},
        DcId, Generation, SwitchRole,
    };

    fn line3() -> (Topology, [klotski_topology::SwitchId; 3], [CircuitId; 2]) {
        let mut b = TopologyBuilder::new("line");
        let x = b.add_switch(SwitchSpec::new(SwitchRole::Rsw, Generation::V1, DcId(0), 8));
        let y = b.add_switch(SwitchSpec::new(SwitchRole::Fsw, Generation::V1, DcId(0), 8));
        let z = b.add_switch(SwitchSpec::new(SwitchRole::Ebb, Generation::V1, DcId(0), 8));
        let c0 = b.add_circuit(x, y, 100.0).unwrap();
        let c1 = b.add_circuit(y, z, 100.0).unwrap();
        (b.build(), [x, y, z], [c0, c1])
    }

    #[test]
    fn mask_matches_predicate() {
        let (t, sw, ck) = line3();
        let mut state = NetState::all_up(&t);
        state.set_circuit(ck[0], false);
        state.set_switch(sw[2], false);
        let m = UsableMask::for_state(&t, &state);
        for &c in &ck {
            assert_eq!(m.usable(c), state.circuit_usable(&t, c), "{c}");
        }
        assert!(!m.usable(ck[0]), "down circuit");
        assert!(!m.usable(ck[1]), "down endpoint");
    }

    #[test]
    fn recompute_tracks_state_changes() {
        let (t, _, ck) = line3();
        let mut state = NetState::all_up(&t);
        let mut m = UsableMask::for_state(&t, &state);
        assert!(m.usable(ck[0]) && m.usable(ck[1]));
        state.set_circuit(ck[1], false);
        m.compute(&t, &state);
        assert!(m.usable(ck[0]) && !m.usable(ck[1]));
        assert_eq!(m.num_circuits(), 2);
    }
}
