//! # klotski-routing
//!
//! Routing and safety-evaluation substrate for the Klotski migration
//! planner.
//!
//! Klotski checks the demand constraints of the problem formulation
//! (Eq. 4–5) on every visited intermediate topology: each demand must have a
//! live path, and the ECMP utilization of every circuit must stay below the
//! bound θ. Following the paper (§5), routing models macro-scale behaviour —
//! equal-cost multi-path splitting over shortest paths — not packet-level
//! congestion.
//!
//! The cost model of the whole planner rests on this crate being fast:
//! one satisfiability check is Θ(|S|+|C|) per distinct demand destination
//! (one BFS + one linear flow-propagation pass), with all scratch memory
//! reused across checks via [`EcmpRouter`].
//!
//! Modules:
//! - [`ecmp`]: hop-count ECMP routing with fractional flow splitting;
//! - [`loads`]: per-circuit directional load accounting;
//! - [`mask`]: the usable-circuit bitmask hoisted out of routing loops;
//! - [`parallel`]: deterministic multi-threaded routing over a
//!   [`klotski_parallel::WorkerPool`], bit-identical to the sequential path;
//! - [`evaluate`]: the Eq. 4–5 evaluation combining reachability and
//!   utilization, plus demand calibration helpers;
//! - [`funneling`]: the traffic-funneling stress factor (§2.2, §7.2);
//! - [`incremental`]: delta-aware re-routing that caches per-destination
//!   routing structure across nearby states, bit-identical to from-scratch;
//! - [`reachability`]: standalone reachability queries.

pub mod ecmp;
pub mod evaluate;
pub mod funneling;
pub mod incremental;
pub mod loads;
pub mod mask;
pub mod parallel;
pub mod reachability;

pub use ecmp::{EcmpRouter, RouteOutcome, RouteSink, SplitPolicy};
pub use evaluate::{
    evaluate, evaluate_policy, evaluate_with, scale_to_target_utilization,
    scale_to_target_utilization_on, SafetyOutcome, UtilizationReport,
};
pub use funneling::FunnelingModel;
pub use incremental::{usability_toggles, IncrementalRouter, IncrementalStats};
pub use klotski_topology::{CsrEdge, CsrGraph};
pub use loads::LoadMap;
pub use mask::UsableMask;
pub use parallel::{route_parallel, ParallelRouter};
pub use reachability::{component_size, is_reachable};
