//! Per-circuit directional load accounting.
//!
//! Circuits are full duplex: a 400 Gbps circuit carries 400 Gbps in each
//! direction. [`LoadMap`] therefore tracks two accumulators per circuit —
//! the `a→b` and `b→a` directions — and reports utilization as the maximum
//! of the two, which is what bounds congestion in practice.

use klotski_topology::{CircuitId, SwitchId, Topology};

/// Directional traffic loads over the circuits of one topology.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadMap {
    /// `loads[2c]` = flow in the circuit's `a→b` direction,
    /// `loads[2c+1]` = flow in the `b→a` direction, Gbps.
    loads: Vec<f64>,
}

impl LoadMap {
    /// Zero loads for a topology.
    pub fn new(topo: &Topology) -> Self {
        Self {
            loads: vec![0.0; topo.num_circuits() * 2],
        }
    }

    /// Resets all loads to zero (reused across satisfiability checks).
    pub fn clear(&mut self) {
        for l in &mut self.loads {
            *l = 0.0;
        }
    }

    /// Adds `gbps` of flow on circuit `c` in the direction *leaving* switch
    /// `from` (which must be an endpoint of `c`).
    #[inline]
    pub fn add_directed(&mut self, topo: &Topology, c: CircuitId, from: SwitchId, gbps: f64) {
        let circuit = topo.circuit(c);
        let dir = if from == circuit.a {
            0
        } else {
            debug_assert_eq!(from, circuit.b, "from must be an endpoint");
            1
        };
        self.loads[c.index() * 2 + dir] += gbps;
    }

    /// Flow on circuit `c` in its `a→b` direction.
    #[inline]
    pub fn forward(&self, c: CircuitId) -> f64 {
        self.loads[c.index() * 2]
    }

    /// Flow on circuit `c` in its `b→a` direction.
    #[inline]
    pub fn reverse(&self, c: CircuitId) -> f64 {
        self.loads[c.index() * 2 + 1]
    }

    /// Worst-direction flow on circuit `c`.
    #[inline]
    pub fn max_direction(&self, c: CircuitId) -> f64 {
        self.forward(c).max(self.reverse(c))
    }

    /// Worst-direction utilization of circuit `c` against its capacity.
    #[inline]
    pub fn utilization(&self, topo: &Topology, c: CircuitId) -> f64 {
        self.max_direction(c) / topo.circuit(c).capacity_gbps
    }

    /// Multiplies both directions of circuit `c` by `factor` (funneling).
    #[inline]
    pub fn scale_circuit(&mut self, c: CircuitId, factor: f64) {
        self.loads[c.index() * 2] *= factor;
        self.loads[c.index() * 2 + 1] *= factor;
    }

    /// Number of circuits covered.
    pub fn num_circuits(&self) -> usize {
        self.loads.len() / 2
    }

    /// Total flow over all circuits and directions, Gbps. Useful as a
    /// conservation diagnostic in tests.
    pub fn total_flow(&self) -> f64 {
        self.loads.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_topology::{
        graph::{SwitchSpec, TopologyBuilder},
        DcId, Generation, SwitchRole,
    };

    fn pair() -> (Topology, SwitchId, SwitchId, CircuitId) {
        let mut b = TopologyBuilder::new("p");
        let x = b.add_switch(SwitchSpec::new(SwitchRole::Rsw, Generation::V1, DcId(0), 8));
        let y = b.add_switch(SwitchSpec::new(SwitchRole::Fsw, Generation::V1, DcId(0), 8));
        let c = b.add_circuit(x, y, 100.0).unwrap();
        (b.build(), x, y, c)
    }

    #[test]
    fn directions_are_independent() {
        let (t, x, y, c) = pair();
        let mut l = LoadMap::new(&t);
        l.add_directed(&t, c, x, 30.0);
        l.add_directed(&t, c, y, 70.0);
        assert_eq!(l.forward(c), 30.0);
        assert_eq!(l.reverse(c), 70.0);
        assert_eq!(l.max_direction(c), 70.0);
        assert!((l.utilization(&t, c) - 0.7).abs() < 1e-12);
        assert!((l.total_flow() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets() {
        let (t, x, _, c) = pair();
        let mut l = LoadMap::new(&t);
        l.add_directed(&t, c, x, 10.0);
        l.clear();
        assert_eq!(l.max_direction(c), 0.0);
        assert_eq!(l.num_circuits(), 1);
    }

    #[test]
    fn scale_circuit_scales_both_directions() {
        let (t, x, y, c) = pair();
        let mut l = LoadMap::new(&t);
        l.add_directed(&t, c, x, 10.0);
        l.add_directed(&t, c, y, 20.0);
        l.scale_circuit(c, 1.5);
        assert_eq!(l.forward(c), 15.0);
        assert_eq!(l.reverse(c), 30.0);
    }
}
