//! Per-circuit directional load accounting.
//!
//! Circuits are full duplex: a 400 Gbps circuit carries 400 Gbps in each
//! direction. [`LoadMap`] therefore tracks two accumulators per circuit —
//! the `a→b` and `b→a` directions — and reports utilization as the maximum
//! of the two, which is what bounds congestion in practice.

use klotski_topology::{CircuitId, SwitchId, Topology};

/// Directional traffic loads over the circuits of one topology.
#[derive(Debug, Clone)]
pub struct LoadMap {
    /// `loads[2c]` = flow in the circuit's `a→b` direction,
    /// `loads[2c+1]` = flow in the `b→a` direction, Gbps.
    loads: Vec<f64>,
    /// Slots that may hold nonzero flow, so `clear` is proportional to the
    /// circuits actually loaded rather than to the topology size. Routing
    /// touches O(demand destinations × path length) slots per check, far
    /// fewer than the O(100,000) circuits of a production region.
    touched: Vec<u32>,
}

/// Loads compare by flow values only; `touched` is bookkeeping whose order
/// depends on routing history.
impl PartialEq for LoadMap {
    fn eq(&self, other: &Self) -> bool {
        self.loads == other.loads
    }
}

impl LoadMap {
    /// Zero loads for a topology.
    pub fn new(topo: &Topology) -> Self {
        Self {
            loads: vec![0.0; topo.num_circuits() * 2],
            touched: Vec::new(),
        }
    }

    /// Resets all loads to zero (reused across satisfiability checks).
    /// Sparse: only slots written since the last clear are revisited.
    pub fn clear(&mut self) {
        for &s in &self.touched {
            self.loads[s as usize] = 0.0;
        }
        self.touched.clear();
    }

    /// The directional slot index for flow on `c` *leaving* switch `from`
    /// (which must be an endpoint of `c`). Precomputing the slot lets hot
    /// loops skip the endpoint comparison on replay.
    #[inline]
    pub fn directed_slot(topo: &Topology, c: CircuitId, from: SwitchId) -> u32 {
        let circuit = topo.circuit(c);
        let dir = if from == circuit.a {
            0
        } else {
            debug_assert_eq!(from, circuit.b, "from must be an endpoint");
            1
        };
        (c.index() * 2 + dir) as u32
    }

    /// Adds `gbps` of flow to a directional slot from [`directed_slot`]
    /// (tracking it for the sparse [`clear`]).
    ///
    /// [`directed_slot`]: Self::directed_slot
    /// [`clear`]: Self::clear
    #[inline]
    pub fn add_slot(&mut self, slot: u32, gbps: f64) {
        let l = &mut self.loads[slot as usize];
        if *l == 0.0 && gbps != 0.0 {
            self.touched.push(slot);
        }
        *l += gbps;
    }

    /// Adds `gbps` of flow on circuit `c` in the direction *leaving* switch
    /// `from` (which must be an endpoint of `c`).
    #[inline]
    pub fn add_directed(&mut self, topo: &Topology, c: CircuitId, from: SwitchId, gbps: f64) {
        self.add_slot(Self::directed_slot(topo, c, from), gbps);
    }

    /// Flow on circuit `c` in its `a→b` direction.
    #[inline]
    pub fn forward(&self, c: CircuitId) -> f64 {
        self.loads[c.index() * 2]
    }

    /// Flow on circuit `c` in its `b→a` direction.
    #[inline]
    pub fn reverse(&self, c: CircuitId) -> f64 {
        self.loads[c.index() * 2 + 1]
    }

    /// Worst-direction flow on circuit `c`.
    #[inline]
    pub fn max_direction(&self, c: CircuitId) -> f64 {
        self.forward(c).max(self.reverse(c))
    }

    /// Worst-direction utilization of circuit `c` against its capacity.
    #[inline]
    pub fn utilization(&self, topo: &Topology, c: CircuitId) -> f64 {
        self.max_direction(c) / topo.circuit(c).capacity_gbps
    }

    /// Multiplies both directions of circuit `c` by `factor` (funneling).
    #[inline]
    pub fn scale_circuit(&mut self, c: CircuitId, factor: f64) {
        self.loads[c.index() * 2] *= factor;
        self.loads[c.index() * 2 + 1] *= factor;
    }

    /// Number of circuits covered.
    pub fn num_circuits(&self) -> usize {
        self.loads.len() / 2
    }

    /// Total flow over all circuits and directions, Gbps. Useful as a
    /// conservation diagnostic in tests.
    pub fn total_flow(&self) -> f64 {
        self.loads.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_topology::{
        graph::{SwitchSpec, TopologyBuilder},
        DcId, Generation, SwitchRole,
    };

    fn pair() -> (Topology, SwitchId, SwitchId, CircuitId) {
        let mut b = TopologyBuilder::new("p");
        let x = b.add_switch(SwitchSpec::new(SwitchRole::Rsw, Generation::V1, DcId(0), 8));
        let y = b.add_switch(SwitchSpec::new(SwitchRole::Fsw, Generation::V1, DcId(0), 8));
        let c = b.add_circuit(x, y, 100.0).unwrap();
        (b.build(), x, y, c)
    }

    #[test]
    fn directions_are_independent() {
        let (t, x, y, c) = pair();
        let mut l = LoadMap::new(&t);
        l.add_directed(&t, c, x, 30.0);
        l.add_directed(&t, c, y, 70.0);
        assert_eq!(l.forward(c), 30.0);
        assert_eq!(l.reverse(c), 70.0);
        assert_eq!(l.max_direction(c), 70.0);
        assert!((l.utilization(&t, c) - 0.7).abs() < 1e-12);
        assert!((l.total_flow() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets() {
        let (t, x, _, c) = pair();
        let mut l = LoadMap::new(&t);
        l.add_directed(&t, c, x, 10.0);
        l.clear();
        assert_eq!(l.max_direction(c), 0.0);
        assert_eq!(l.num_circuits(), 1);
    }

    #[test]
    fn sparse_clear_matches_fresh_map() {
        let (t, x, y, c) = pair();
        let mut l = LoadMap::new(&t);
        l.add_directed(&t, c, x, 10.0);
        l.add_directed(&t, c, y, 5.0);
        l.scale_circuit(c, 2.0);
        l.clear();
        assert_eq!(l, LoadMap::new(&t));
        // Reuse after a sparse clear accumulates from zero again.
        l.add_slot(LoadMap::directed_slot(&t, c, x), 7.0);
        assert_eq!(l.forward(c), 7.0);
        assert_eq!(l.reverse(c), 0.0);
    }

    #[test]
    fn slot_api_matches_directed_api() {
        let (t, x, y, c) = pair();
        let mut a = LoadMap::new(&t);
        let mut b = LoadMap::new(&t);
        a.add_directed(&t, c, x, 3.0);
        a.add_directed(&t, c, y, 4.0);
        b.add_slot(LoadMap::directed_slot(&t, c, x), 3.0);
        b.add_slot(LoadMap::directed_slot(&t, c, y), 4.0);
        assert_eq!(a, b);
    }

    #[test]
    fn scale_circuit_scales_both_directions() {
        let (t, x, y, c) = pair();
        let mut l = LoadMap::new(&t);
        l.add_directed(&t, c, x, 10.0);
        l.add_directed(&t, c, y, 20.0);
        l.scale_circuit(c, 1.5);
        assert_eq!(l.forward(c), 15.0);
        assert_eq!(l.reverse(c), 30.0);
    }
}
