//! Standalone reachability queries over a network state.
//!
//! Used by plan validation (does every demand still have a path after each
//! phase?) and by the multi-DC safety analysis: §2.2 warns that migrating
//! datacenters independently can leave them *unconnected* in intermediate
//! steps.

use klotski_topology::{NetState, SwitchId, Topology};
use std::collections::VecDeque;

/// True if a usable path exists from `src` to `dst` in (`topo`, `state`).
pub fn is_reachable(topo: &Topology, state: &NetState, src: SwitchId, dst: SwitchId) -> bool {
    if !state.switch_up(src) || !state.switch_up(dst) {
        return false;
    }
    if src == dst {
        return true;
    }
    let mut seen = vec![false; topo.num_switches()];
    let mut queue = VecDeque::from([src]);
    seen[src.index()] = true;
    while let Some(u) = queue.pop_front() {
        for &(c, far) in topo.neighbors(u) {
            if !seen[far.index()] && state.circuit_usable(topo, c) {
                if far == dst {
                    return true;
                }
                seen[far.index()] = true;
                queue.push_back(far);
            }
        }
    }
    false
}

/// Size of the connected component containing `root` (0 if `root` is down).
pub fn component_size(topo: &Topology, state: &NetState, root: SwitchId) -> usize {
    if !state.switch_up(root) {
        return 0;
    }
    let mut seen = vec![false; topo.num_switches()];
    let mut queue = VecDeque::from([root]);
    seen[root.index()] = true;
    let mut count = 1;
    while let Some(u) = queue.pop_front() {
        for &(c, far) in topo.neighbors(u) {
            if !seen[far.index()] && state.circuit_usable(topo, c) {
                seen[far.index()] = true;
                count += 1;
                queue.push_back(far);
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_topology::{
        graph::{SwitchSpec, TopologyBuilder},
        DcId, Generation, SwitchRole,
    };

    fn line3() -> (Topology, [SwitchId; 3]) {
        let mut b = TopologyBuilder::new("l");
        let spec = |r| SwitchSpec::new(r, Generation::V1, DcId(0), 8);
        let a = b.add_switch(spec(SwitchRole::Rsw));
        let m = b.add_switch(spec(SwitchRole::Fsw));
        let z = b.add_switch(spec(SwitchRole::Ssw));
        b.add_circuit(a, m, 100.0).unwrap();
        b.add_circuit(m, z, 100.0).unwrap();
        (b.build(), [a, m, z])
    }

    #[test]
    fn reachable_through_chain() {
        let (t, sw) = line3();
        let state = NetState::all_up(&t);
        assert!(is_reachable(&t, &state, sw[0], sw[2]));
        assert!(is_reachable(&t, &state, sw[2], sw[0]));
        assert!(is_reachable(&t, &state, sw[1], sw[1]));
    }

    #[test]
    fn cut_vertex_disconnects() {
        let (t, sw) = line3();
        let mut state = NetState::all_up(&t);
        state.drain_switch(&t, sw[1]);
        assert!(!is_reachable(&t, &state, sw[0], sw[2]));
        assert_eq!(component_size(&t, &state, sw[0]), 1);
    }

    #[test]
    fn down_endpoints_unreachable() {
        let (t, sw) = line3();
        let mut state = NetState::all_up(&t);
        state.set_switch(sw[0], false);
        assert!(!is_reachable(&t, &state, sw[0], sw[2]));
        assert!(!is_reachable(&t, &state, sw[2], sw[0]));
        assert_eq!(component_size(&t, &state, sw[0]), 0);
    }

    #[test]
    fn component_counts_everything_when_up() {
        let (t, sw) = line3();
        let state = NetState::all_up(&t);
        assert_eq!(component_size(&t, &state, sw[1]), 3);
    }
}
