//! Traffic-funneling stress model.
//!
//! §2.2 of the paper: circuits of one migration step cannot be drained at
//! the exact same instant. While `k−1` of `k` sibling circuits are already
//! down, the survivor transiently carries the whole group's traffic —
//! upstream funneling when the drain is below, downstream funneling when it
//! is above. §7.2 records the production mitigation: "Klotski increases the
//! utilization of related circuits while planning."
//!
//! [`FunnelingModel`] implements that mitigation: when a state is checked
//! right after a *drain* action, the circuits related to the drained block —
//! the still-usable circuits incident to the drained elements' neighbor
//! switches — have their planned load inflated by a headroom factor before
//! the θ comparison.

use crate::loads::LoadMap;
use klotski_topology::{CircuitId, NetState, SwitchId, Topology};

/// Headroom model for asynchronous drains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FunnelingModel {
    /// Multiplier applied to related circuits' loads (≥ 1.0).
    /// 1.0 disables the model.
    pub headroom_factor: f64,
}

impl Default for FunnelingModel {
    fn default() -> Self {
        // Sized for "one sibling of four still settling": 4/3 of planned load.
        Self {
            headroom_factor: 4.0 / 3.0,
        }
    }
}

impl FunnelingModel {
    /// A disabled model (factor 1.0).
    pub fn disabled() -> Self {
        Self {
            headroom_factor: 1.0,
        }
    }

    /// True if the model does anything.
    pub fn is_enabled(&self) -> bool {
        self.headroom_factor > 1.0
    }

    /// Circuits related to a drain of `drained_switches`: every still-usable
    /// circuit incident to a neighbor of a drained switch. These are the
    /// circuits that transiently absorb the drained block's traffic.
    pub fn related_circuits(
        &self,
        topo: &Topology,
        state: &NetState,
        drained_switches: &[SwitchId],
    ) -> Vec<CircuitId> {
        let mut seen = vec![false; topo.num_circuits()];
        let mut out = Vec::new();
        for &d in drained_switches {
            for &(_, neighbor) in topo.neighbors(d) {
                for &(c, _) in topo.neighbors(neighbor) {
                    if !seen[c.index()] && state.circuit_usable(topo, c) {
                        seen[c.index()] = true;
                        out.push(c);
                    }
                }
            }
        }
        out
    }

    /// Inflates the loads of the circuits related to the drained switches.
    /// Call between routing and the θ comparison.
    pub fn apply(
        &self,
        topo: &Topology,
        state: &NetState,
        drained_switches: &[SwitchId],
        loads: &mut LoadMap,
    ) {
        assert!(
            self.headroom_factor >= 1.0,
            "headroom factor must be >= 1.0"
        );
        if !self.is_enabled() || drained_switches.is_empty() {
            return;
        }
        for c in self.related_circuits(topo, state, drained_switches) {
            loads.scale_circuit(c, self.headroom_factor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_topology::{
        graph::{SwitchSpec, TopologyBuilder},
        DcId, Generation, SwitchRole,
    };

    /// Two FADUs under one SSW; draining fadu1 stresses ssw-fadu0.
    fn fan() -> (Topology, [SwitchId; 3], [CircuitId; 2]) {
        let mut b = TopologyBuilder::new("fan");
        let spec = |r| SwitchSpec::new(r, Generation::V1, DcId(0), 16);
        let ssw = b.add_switch(spec(SwitchRole::Ssw));
        let f0 = b.add_switch(spec(SwitchRole::Fadu));
        let f1 = b.add_switch(spec(SwitchRole::Fadu));
        let c0 = b.add_circuit(ssw, f0, 100.0).unwrap();
        let c1 = b.add_circuit(ssw, f1, 100.0).unwrap();
        (b.build(), [ssw, f0, f1], [c0, c1])
    }

    #[test]
    fn related_circuits_are_neighbors_siblings() {
        let (t, sw, ck) = fan();
        let mut state = NetState::all_up(&t);
        state.drain_switch(&t, sw[2]);
        let model = FunnelingModel::default();
        let related = model.related_circuits(&t, &state, &[sw[2]]);
        // The drained FADU's neighbor is the SSW; its surviving circuit is c0.
        assert_eq!(related, vec![ck[0]]);
    }

    #[test]
    fn apply_inflates_only_related_circuits() {
        let (t, sw, ck) = fan();
        let mut state = NetState::all_up(&t);
        let mut loads = LoadMap::new(&t);
        loads.add_directed(&t, ck[0], sw[0], 60.0);
        state.drain_switch(&t, sw[2]);
        FunnelingModel {
            headroom_factor: 1.5,
        }
        .apply(&t, &state, &[sw[2]], &mut loads);
        assert!((loads.max_direction(ck[0]) - 90.0).abs() < 1e-9);
        assert_eq!(loads.max_direction(ck[1]), 0.0);
    }

    #[test]
    fn disabled_model_is_a_noop() {
        let (t, sw, ck) = fan();
        let mut state = NetState::all_up(&t);
        state.drain_switch(&t, sw[2]);
        let mut loads = LoadMap::new(&t);
        loads.add_directed(&t, ck[0], sw[0], 60.0);
        FunnelingModel::disabled().apply(&t, &state, &[sw[2]], &mut loads);
        assert!((loads.max_direction(ck[0]) - 60.0).abs() < 1e-9);
        assert!(!FunnelingModel::disabled().is_enabled());
    }

    #[test]
    fn empty_drain_set_is_a_noop() {
        let (t, sw, ck) = fan();
        let state = NetState::all_up(&t);
        let mut loads = LoadMap::new(&t);
        loads.add_directed(&t, ck[0], sw[0], 10.0);
        FunnelingModel::default().apply(&t, &state, &[], &mut loads);
        assert!((loads.max_direction(ck[0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = ">= 1.0")]
    fn sub_unit_factor_rejected() {
        let (t, sw, _) = fan();
        let mut state = NetState::all_up(&t);
        state.drain_switch(&t, sw[2]);
        let mut loads = LoadMap::new(&t);
        FunnelingModel {
            headroom_factor: 0.5,
        }
        .apply(&t, &state, &[sw[2]], &mut loads);
    }
}
