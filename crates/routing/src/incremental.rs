//! Delta-aware ECMP re-routing across nearby network states.
//!
//! A planner child state differs from its parent by exactly one
//! drained/undrained operation block, yet a from-scratch satisfiability
//! check re-runs BFS + flow sweep for *every* demand destination over the
//! *whole* topology. [`IncrementalRouter`] makes the cost proportional to
//! the delta instead: it caches, per destination group,
//!
//! - the BFS distance labels and canonical visit order,
//! - the shortest-path DAG (each switch's downhill circuits with split
//!   weights, in neighbor-scan order),
//! - the *relevant circuit footprint* — circuits incident to switches
//!   reached by that destination's BFS, and
//! - the ordered flow edit list `(slot, gbps)` plus routed/unreachable
//!   outcome the sweep produced.
//!
//! Given the set of circuits whose usability *toggled* between the cached
//! base state and a new state, each destination classifies every toggle
//! against its cached labels:
//!
//! - toggles outside the footprint cannot affect the destination (an
//!   unusable→usable circuit between two unreached switches connects
//!   nothing to the reached region; anything incident to a reached switch
//!   is in the footprint by construction) — the destination is *clean* and
//!   replays its cached edit list verbatim;
//! - a removed DAG edge marks its uphill endpoint for a downhill-list
//!   rebuild; a switch left with no usable circuit at all becomes
//!   unreachable (every edge that previously supported it is itself a
//!   toggle, so no stale support can survive unmarked);
//! - a new usable circuit into the unreached region seeds a bounded
//!   Dijkstra that extends distance labels without touching the (much
//!   larger) already-reached region;
//! - anything that would *shorten* an existing label — or a marked switch
//!   whose rebuilt downhill list comes out empty (its shortest path got
//!   longer, not just narrower) — falls back to a full per-destination
//!   rebuild. Fallbacks are exact, just slower; classification only ever
//!   errs toward them.
//!
//! Determinism: the sweep adds f64 shares in canonical `(distance, switch
//! index)` order with downhill lists kept in neighbor-scan order, and the
//! final `LoadMap`/`RouteOutcome` are rebuilt by replaying per-destination
//! lists in fixed ascending-destination order. That is the exact addition
//! sequence a from-scratch sequential evaluation produces (see
//! [`crate::ecmp::canonical_order`]), so verdicts and loads are
//! bit-identical to full evaluation at any thread count.

use crate::ecmp::{canonical_order, RouteOutcome, SplitPolicy, UNREACHED};
use crate::loads::LoadMap;
use crate::mask::UsableMask;
use klotski_parallel::{chunk_ranges, WorkerPool};
use klotski_telemetry::{registry, Counter, Gauge};
use klotski_topology::{BitSet, CircuitId, CsrGraph, NetState, SwitchId, Topology};
use klotski_traffic::{Demand, DemandMatrix};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::Arc;

/// Chunks per lane for the lane-partitioned destination advance — matching
/// the parallel router's oversubscription so fast lanes steal the tail.
const CHUNKS_PER_LANE: usize = 4;

/// Running totals of incremental-evaluation effort.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Completed [`evaluate`](IncrementalRouter::evaluate) calls.
    pub evaluations: u64,
    /// Structure-only [`rebase`](IncrementalRouter::rebase) calls.
    pub rebases: u64,
    /// Destinations that replayed their cached edit list unchanged.
    pub clean_destinations: u64,
    /// Destinations that re-ran patching and/or the flow sweep.
    pub dirty_destinations: u64,
    /// Destinations that fell back to a full BFS + DAG rebuild.
    pub full_rebuilds: u64,
    /// Total toggled circuits across all delta evaluations.
    pub toggled_circuits: u64,
    /// Completed [`replay_extra`](IncrementalRouter::replay_extra) calls
    /// (one per non-base ensemble matrix actually checked).
    pub extra_replays: u64,
    /// Destinations whose per-extra-matrix edit list was stale and had to be
    /// re-swept from the cached structure during an extra replay.
    pub extra_resweeps: u64,
}

impl IncrementalStats {
    /// Fraction of destination evaluations served by cached replay.
    pub fn clean_rate(&self) -> f64 {
        let total = self.clean_destinations + self.dirty_destinations;
        if total == 0 {
            0.0
        } else {
            self.clean_destinations as f64 / total as f64
        }
    }
}

/// `klotski_routing_incremental_*` registry handles, resolved once.
#[derive(Debug)]
struct IncrMetrics {
    evaluations: Arc<Counter>,
    clean: Arc<Counter>,
    dirty: Arc<Counter>,
    full: Arc<Counter>,
    toggled: Arc<Counter>,
    footprint_bytes: Arc<Gauge>,
}

impl IncrMetrics {
    fn new() -> Self {
        let reg = registry();
        reg.set_help(
            "klotski_routing_incremental_evaluations_total",
            "Delta-aware routing evaluations",
        );
        reg.set_help(
            "klotski_routing_incremental_clean_total",
            "Destinations replayed from the incremental cache",
        );
        reg.set_help(
            "klotski_routing_incremental_dirty_total",
            "Destinations re-routed because a toggle touched their footprint",
        );
        reg.set_help(
            "klotski_routing_incremental_full_rebuilds_total",
            "Destinations that fell back to a full BFS rebuild",
        );
        reg.set_help(
            "klotski_routing_incremental_toggled_total",
            "Toggled circuits summed over delta evaluations (divide by evaluations for the mean toggle-set size)",
        );
        reg.set_help(
            "klotski_routing_footprint_bytes",
            "Resident bytes of per-destination circuit footprints after interning",
        );
        Self {
            evaluations: reg.counter("klotski_routing_incremental_evaluations_total"),
            clean: reg.counter("klotski_routing_incremental_clean_total"),
            dirty: reg.counter("klotski_routing_incremental_dirty_total"),
            full: reg.counter("klotski_routing_incremental_full_rebuilds_total"),
            toggled: reg.counter("klotski_routing_incremental_toggled_total"),
            footprint_bytes: reg.gauge("klotski_routing_footprint_bytes"),
        }
    }
}

/// Cached routing structure and outcome of one destination group.
#[derive(Debug)]
struct DestEntry {
    dst: SwitchId,
    /// Demands of this group, in matrix order.
    demands: Vec<Demand>,
    /// Hop distance to `dst` for every switch, exact for the engine's base
    /// state (`UNREACHED` when no usable path exists).
    dist: Vec<u32>,
    /// Reached switches in canonical `(dist, index)` order.
    order: Vec<u32>,
    /// Per-switch downhill list `(directional slot, far index, weight)` in
    /// neighbor-scan order — the shortest-path DAG the sweep splits over.
    dag: Vec<Vec<(u32, u32, f64)>>,
    /// Circuits incident to reached switches; a conservative superset
    /// (bits are added when the reached region grows, recomputed exactly on
    /// full rebuilds). Shared storage: destinations that reach the same
    /// region — the common case, since an all-reachable state gives every
    /// destination the same incident-circuit set — are interned onto one
    /// allocation after each advance, and copy-on-write (`Arc::make_mut`)
    /// keeps incremental growth sound.
    footprint: Arc<BitSet>,
    /// Ordered `(slot, gbps)` flow additions of the last sweep.
    edits: Vec<(u32, f64)>,
    /// Routed-demand rate terms, in demand order (kept as terms so replay
    /// preserves the summation order of `RouteOutcome::routed_gbps`).
    routed_terms: Vec<f64>,
    /// Unreachable `(src, dst)` pairs, in demand order. Ensemble variants
    /// share the base's exact endpoints, so this list is matrix-independent
    /// and extra replays reuse it verbatim.
    unreachable: Vec<(SwitchId, SwitchId)>,
    /// Per non-base ensemble matrix: rates aligned with `demands` order
    /// (endpoints are shared, only the gbps differ per matrix).
    extra_rates: Vec<Vec<f64>>,
    /// Per non-base ensemble matrix: cached `(slot, gbps)` edit list.
    extra_edits: Vec<Vec<(u32, f64)>>,
    /// Per non-base ensemble matrix: routed-demand rate terms.
    extra_terms: Vec<Vec<f64>>,
    /// Whether `extra_edits[k]`/`extra_terms[k]` match the base state.
    /// Invalidated whenever the base sweep re-runs (the matrices share
    /// structure, so a base re-sweep means the structure or state moved);
    /// re-validated lazily by [`replay_extra`](IncrementalRouter::replay_extra)
    /// — a short-circuited matrix simply stays stale until next replayed.
    extra_valid: Vec<bool>,
    /// Whether `edits`/`routed_terms`/`unreachable` match the base state
    /// (false after a structure-only rebase touched this destination).
    edits_valid: bool,
    /// Introspection: last evaluation replayed the cache unchanged.
    last_clean: bool,
    /// Introspection: last evaluation fell back to a full rebuild.
    last_full: bool,
}

/// Replay buffer of one contiguous destination chunk: the concatenated
/// edit lists of its entries, gathered on the owning lane. [`evaluate`]
/// replays chunks in fixed ascending order, so the merged f64 addition
/// sequence is identical to a per-entry replay — and to a sequential full
/// evaluation — at every thread count. A chunk whose entries all replayed
/// clean keeps its buffer from the previous evaluation, making the serial
/// merge a flat `memcpy`-style pass with no per-entry pointer chasing.
///
/// [`evaluate`]: IncrementalRouter::evaluate
#[derive(Debug, Default)]
struct ChunkReplay {
    /// Concatenated `(slot, gbps)` additions of the chunk's entries.
    edits: Vec<(u32, f64)>,
    /// Concatenated routed-demand terms.
    routed_terms: Vec<f64>,
    /// Concatenated unreachable pairs.
    unreachable: Vec<(SwitchId, SwitchId)>,
    /// Entry range `[start, end)` this buffer was gathered from.
    start: usize,
    end: usize,
    /// False until gathered; invalidated by rebases and chunk-boundary
    /// changes.
    valid: bool,
}

impl ChunkReplay {
    /// Regathers the buffer from `entries` (the chunk's slice) covering
    /// entry indices `[start, end)`.
    fn gather(&mut self, entries: &[DestEntry], start: usize, end: usize) {
        self.edits.clear();
        self.routed_terms.clear();
        self.unreachable.clear();
        for e in entries {
            self.edits.extend_from_slice(&e.edits);
            self.routed_terms.extend_from_slice(&e.routed_terms);
            self.unreachable.extend_from_slice(&e.unreachable);
        }
        self.start = start;
        self.end = end;
        self.valid = true;
    }
}

/// Per-lane scratch shared by every destination a lane processes.
#[derive(Debug, Default)]
struct LaneScratch {
    /// Sparse inflow accumulator for the sweep.
    inflow: Vec<f64>,
    touched: Vec<u32>,
    /// Epoch stamps: `marked` membership, new-region membership, and
    /// settled-in-partial-BFS membership.
    mark_stamp: Vec<u32>,
    new_stamp: Vec<u32>,
    settle_stamp: Vec<u32>,
    epoch: u32,
    /// Base-reached switches whose downhill list must be rebuilt.
    marked: Vec<u32>,
    /// `(dist, switch)` entry points into the unreached region.
    seeds: Vec<(u32, u32)>,
    /// Switches newly reached by the partial BFS.
    settled: Vec<u32>,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    /// Dial buckets for full per-destination rebuilds.
    buckets: [Vec<u32>; 3],
    order_buf: Vec<u32>,
}

impl LaneScratch {
    fn sized(n: usize) -> Self {
        Self {
            inflow: vec![0.0; n],
            mark_stamp: vec![0; n],
            new_stamp: vec![0; n],
            settle_stamp: vec![0; n],
            ..Self::default()
        }
    }

    fn bump_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.epoch = 0;
            self.mark_stamp.fill(0);
            self.new_stamp.fill(0);
            self.settle_stamp.fill(0);
        }
        self.epoch += 1;
        self.epoch
    }
}

/// Delta-aware routing engine over one `(Topology, DemandMatrix)` pair.
///
/// The engine tracks a *base* state: the state of the most recent
/// [`evaluate`](Self::evaluate) or [`rebase`](Self::rebase) call. The next
/// call must pass the exact set of circuits whose usability differs between
/// that base and the new state (`toggles`), or `None` to force a full
/// rebuild (also the only option for the first, priming call).
#[derive(Debug)]
pub struct IncrementalRouter {
    policy: SplitPolicy,
    /// Flattened adjacency shared read-only by every lane.
    csr: Arc<CsrGraph>,
    mask: UsableMask,
    entries: Vec<DestEntry>,
    scratch: Vec<LaneScratch>,
    /// Per-chunk replay buffers; `replay_chunks` of them are live.
    replays: Vec<ChunkReplay>,
    replay_chunks: usize,
    /// Word-level masks of the current toggle set, `(word index, bits)` —
    /// a destination whose footprint misses every word is clean without
    /// walking the toggle list.
    toggle_words: Vec<(u32, u64)>,
    /// Footprint intern table: content hash → shared allocations. Buckets
    /// hold strong refs; dead ones (refcount 1) are purged on touch.
    intern: HashMap<u64, Vec<Arc<BitSet>>>,
    /// Non-base ensemble matrices tracked (length of every entry's
    /// `extra_*` vectors).
    num_extras: usize,
    primed: bool,
    stats: IncrementalStats,
    metrics: IncrMetrics,
}

impl IncrementalRouter {
    /// An engine for `lanes` pool lanes routing `matrix` over `topo`.
    pub fn new(topo: &Topology, matrix: &DemandMatrix, lanes: usize, policy: SplitPolicy) -> Self {
        Self::with_csr(Arc::new(CsrGraph::build(topo)), matrix, lanes, policy)
    }

    /// An engine over an already-flattened graph (shared with the other
    /// routing engines of a checker). `lanes` is a capacity hint only —
    /// per-lane scratch is allocated lazily on the first pooled advance.
    pub fn with_csr(
        csr: Arc<CsrGraph>,
        matrix: &DemandMatrix,
        lanes: usize,
        policy: SplitPolicy,
    ) -> Self {
        Self::with_csr_ensemble(csr, matrix, &[], lanes, policy)
    }

    /// An engine that additionally tracks `extras` — the non-base matrices
    /// of a traffic ensemble. Every extra must share `matrix`'s exact
    /// `(src, dst, class)` sequence (only rates may differ); the routing
    /// structure is then matrix-independent, and
    /// [`replay_extra`](Self::replay_extra) re-runs only the load sweep per
    /// matrix against the structure the base advance computed.
    ///
    /// # Panics
    /// Panics when an extra's demand endpoints diverge from the base.
    pub fn with_csr_ensemble(
        csr: Arc<CsrGraph>,
        matrix: &DemandMatrix,
        extras: &[DemandMatrix],
        lanes: usize,
        policy: SplitPolicy,
    ) -> Self {
        let _ = lanes;
        let n = csr.num_switches();
        // All entries start on one shared empty footprint; the priming
        // rebuild copy-on-writes each entry its own before interning merges
        // the equal ones back together.
        let empty_footprint = Arc::new(BitSet::new(csr.num_circuits()));
        let extra_groups: Vec<BTreeMap<SwitchId, Vec<&Demand>>> =
            extras.iter().map(|m| m.by_destination()).collect();
        let entries = matrix
            .by_destination()
            .into_iter()
            .map(|(dst, group)| {
                let extra_rates: Vec<Vec<f64>> = extra_groups
                    .iter()
                    .map(|g| {
                        let eg: &[&Demand] = g.get(&dst).map(|v| v.as_slice()).unwrap_or(&[]);
                        assert_eq!(
                            eg.len(),
                            group.len(),
                            "ensemble matrices must share the base demand endpoints"
                        );
                        eg.iter()
                            .zip(&group)
                            .map(|(e, b)| {
                                assert_eq!(
                                    (e.src, e.class),
                                    (b.src, b.class),
                                    "ensemble matrices must share the base demand endpoints"
                                );
                                e.gbps
                            })
                            .collect()
                    })
                    .collect();
                DestEntry {
                    dst,
                    demands: group.into_iter().cloned().collect(),
                    dist: vec![UNREACHED; n],
                    order: Vec::new(),
                    dag: vec![Vec::new(); n],
                    footprint: empty_footprint.clone(),
                    edits: Vec::new(),
                    routed_terms: Vec::new(),
                    unreachable: Vec::new(),
                    extra_rates,
                    extra_edits: vec![Vec::new(); extras.len()],
                    extra_terms: vec![Vec::new(); extras.len()],
                    extra_valid: vec![false; extras.len()],
                    edits_valid: false,
                    last_clean: false,
                    last_full: false,
                }
            })
            .collect();
        Self {
            policy,
            csr,
            mask: UsableMask::new(),
            entries,
            scratch: vec![LaneScratch::sized(n)],
            replays: Vec::new(),
            replay_chunks: 0,
            toggle_words: Vec::new(),
            intern: HashMap::new(),
            num_extras: extras.len(),
            primed: false,
            stats: IncrementalStats::default(),
            metrics: IncrMetrics::new(),
        }
    }

    /// Number of non-base ensemble matrices this engine tracks.
    pub fn num_extras(&self) -> usize {
        self.num_extras
    }

    /// Number of per-lane scratch slots currently allocated (grows to the
    /// pool's lane count on first pooled advance).
    pub fn lanes(&self) -> usize {
        self.scratch.len()
    }

    /// Number of destination groups tracked.
    pub fn num_destinations(&self) -> usize {
        self.entries.len()
    }

    /// True once a priming evaluation/rebase has populated the cache.
    pub fn is_primed(&self) -> bool {
        self.primed
    }

    /// Effort totals since construction.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Estimated resident bytes of the per-destination caches.
    pub fn approx_bytes(&self) -> u64 {
        let mut bytes = 0usize;
        for e in &self.entries {
            bytes += e.dist.capacity() * 4 + e.order.capacity() * 4;
            bytes += e.dag.iter().map(|l| l.capacity() * 16 + 24).sum::<usize>();
            bytes += e.edits.capacity() * 16 + e.routed_terms.capacity() * 8;
            bytes += e.unreachable.capacity() * 8;
            bytes += e
                .extra_rates
                .iter()
                .map(|r| r.capacity() * 8)
                .sum::<usize>();
            bytes += e
                .extra_edits
                .iter()
                .map(|l| l.capacity() * 16)
                .sum::<usize>();
            bytes += e
                .extra_terms
                .iter()
                .map(|t| t.capacity() * 8)
                .sum::<usize>();
        }
        bytes as u64 + self.footprint_bytes()
    }

    /// Resident bytes of the per-destination circuit footprints, counting
    /// each interned (shared) allocation once.
    pub fn footprint_bytes(&self) -> u64 {
        let mut seen = std::collections::HashSet::with_capacity(self.entries.len());
        let mut bytes = 0u64;
        for e in &self.entries {
            if seen.insert(Arc::as_ptr(&e.footprint)) {
                bytes += (e.footprint.words().len() * 8) as u64;
            }
        }
        bytes
    }

    /// Routes every demand over `state`, accumulating into `loads` (NOT
    /// cleared, matching [`crate::EcmpRouter::route`]) and writing the
    /// outcome into the caller-held buffer.
    ///
    /// `toggles` must be exactly the circuits whose usability differs
    /// between the engine's base state and `state`; pass `None` when that
    /// set is unknown (first call, or a delta too large to be worth it) to
    /// rebuild everything. Either way the result is bit-identical to a
    /// from-scratch sequential evaluation, and `state` becomes the new base.
    pub fn evaluate(
        &mut self,
        pool: &WorkerPool,
        topo: &Topology,
        state: &NetState,
        toggles: Option<&[CircuitId]>,
        loads: &mut LoadMap,
        outcome: &mut RouteOutcome,
    ) {
        self.advance(pool, topo, state, toggles, true);
        self.stats.evaluations += 1;
        self.metrics.evaluations.inc();
        outcome.clear();
        // Fixed replay order — chunks ascending, which concatenate to the
        // ascending-destination entry order — reproduces the exact f64
        // addition sequence of a sequential full evaluation.
        debug_assert!(self.replays[..self.replay_chunks].iter().all(|r| r.valid));
        for r in &self.replays[..self.replay_chunks] {
            for &(slot, gbps) in &r.edits {
                loads.add_slot(slot, gbps);
            }
            for &term in &r.routed_terms {
                outcome.routed_gbps += term;
            }
            outcome.unreachable.extend_from_slice(&r.unreachable);
        }
    }

    /// Replays ensemble matrix `k + 1` (the k-th non-base extra) over the
    /// structures of the engine's base state, accumulating into `loads`
    /// (NOT cleared) and writing the outcome buffer.
    ///
    /// Must be called after an [`evaluate`](Self::evaluate) of the same
    /// `state`: the distance labels, DAGs, canonical orders, and
    /// unreachable lists are exactly the base advance's, and only the load
    /// sweep differs per matrix (ensemble variants share the base's demand
    /// endpoints, so reachability is matrix-independent). Destinations
    /// whose cached per-matrix edit list is still valid replay it verbatim;
    /// stale ones re-sweep from the cached structure — no BFS, no DAG work.
    /// The pass is sequential in ascending destination order, so results
    /// are bit-identical to a from-scratch sequential evaluation of that
    /// matrix at any thread count.
    pub fn replay_extra(
        &mut self,
        k: usize,
        state: &NetState,
        loads: &mut LoadMap,
        outcome: &mut RouteOutcome,
    ) {
        debug_assert!(self.primed, "replay_extra needs a primed engine");
        outcome.clear();
        let Self {
            ref mut entries,
            ref mut scratch,
            ..
        } = *self;
        let lane = &mut scratch[0];
        let mut reswept = 0u64;
        for entry in entries.iter_mut() {
            if !entry.extra_valid[k] {
                sweep_extra(entry, lane, state, k);
                reswept += 1;
            }
            for &(slot, gbps) in &entry.extra_edits[k] {
                loads.add_slot(slot, gbps);
            }
            for &term in &entry.extra_terms[k] {
                outcome.routed_gbps += term;
            }
            outcome.unreachable.extend_from_slice(&entry.unreachable);
        }
        self.stats.extra_replays += 1;
        self.stats.extra_resweeps += reswept;
    }

    /// Moves the base to `state` updating routing *structures* only, without
    /// sweeping flows. Destinations whose structure changed have their edit
    /// lists marked stale and re-swept on the next [`evaluate`]. Planners
    /// call this with a parent state so each child evaluation diffs against
    /// its parent (one applied block) rather than an arbitrary cousin.
    ///
    /// [`evaluate`]: Self::evaluate
    pub fn rebase(
        &mut self,
        pool: &WorkerPool,
        topo: &Topology,
        state: &NetState,
        toggles: Option<&[CircuitId]>,
    ) {
        self.advance(pool, topo, state, toggles, false);
        self.stats.rebases += 1;
    }

    /// Shared delta engine: updates the usable mask and every destination's
    /// cached structures for `state`; sweeps flows when `sweep` is set.
    fn advance(
        &mut self,
        pool: &WorkerPool,
        topo: &Topology,
        state: &NetState,
        toggles: Option<&[CircuitId]>,
        sweep: bool,
    ) {
        let full_all = !self.primed || toggles.is_none();
        if full_all {
            self.mask.compute(topo, state);
        } else {
            // Flip exactly the changed bits — no full-topology rescan.
            for &c in toggles.unwrap() {
                self.mask.set(c, state.circuit_usable(topo, c));
            }
        }
        let toggle_set: &[CircuitId] = if full_all { &[] } else { toggles.unwrap() };

        // Word-level masks over the toggle set for the footprint prefilter:
        // most destinations reject the whole delta with a handful of
        // bitwise ANDs instead of a per-toggle bit probe.
        self.toggle_words.clear();
        for &c in toggle_set {
            let wi = (c.index() / 64) as u32;
            let bit = 1u64 << (c.index() % 64);
            match self.toggle_words.iter_mut().find(|(w, _)| *w == wi) {
                Some((_, m)) => *m |= bit,
                None => self.toggle_words.push((wi, bit)),
            }
        }

        // Lane-partitioned advance: contiguous destination chunks (same
        // oversubscription as the parallel router) instead of one task per
        // destination — fewer claim round-trips, and each chunk owns a
        // replay buffer its lane can refresh in place.
        let lanes = pool.lanes();
        // Fan out only when the machine can actually run lanes
        // concurrently: on a single-core host (or a 1-lane pool) waking
        // workers is pure context-switch overhead, so the same chunk tasks
        // run inline on the caller. Chunks are disjoint and merged in
        // fixed order, so execution mode is unobservable in the results.
        let use_pool = lanes > 1 && klotski_parallel::default_lanes() > 1;
        if use_pool && self.scratch.len() < lanes {
            // Per-lane scratch is allocated on first pooled dispatch, so a
            // checker that never fans out (1-core host) carries exactly one
            // lane's worth of scratch regardless of its configured width.
            let n = self.csr.num_switches();
            self.scratch.resize_with(lanes, || LaneScratch::sized(n));
        }
        // Inline execution needs no load balancing across lanes, so it
        // keeps the chunk count at the floor; the chunk count is stable
        // for a given engine (both gate inputs are fixed), so replay
        // buffers stay valid across advances either way.
        let fan = if use_pool { lanes } else { 1 };
        let ranges = chunk_ranges(self.entries.len(), fan * CHUNKS_PER_LANE);
        if self.replays.len() < ranges.len() {
            self.replays.resize_with(ranges.len(), ChunkReplay::default);
        }
        self.replay_chunks = ranges.len();
        let Self {
            ref mut entries,
            ref mut scratch,
            ref mut replays,
            ref mask,
            ref csr,
            ref toggle_words,
            policy,
            ..
        } = *self;
        // Split the entries into per-chunk mutable slices, paired with each
        // chunk's replay buffer. Tasks write only their own pair, so results
        // cannot depend on lane assignment.
        let mut tasks: Vec<(&mut [DestEntry], &mut ChunkReplay)> = Vec::with_capacity(ranges.len());
        {
            let mut rest: &mut [DestEntry] = entries;
            let mut replay_rest: &mut [ChunkReplay] = &mut replays[..ranges.len()];
            for r in &ranges {
                let (chunk, tail) = rest.split_at_mut(r.len());
                let (rep, rep_tail) = replay_rest.split_at_mut(1);
                tasks.push((chunk, &mut rep[0]));
                rest = tail;
                replay_rest = rep_tail;
            }
        }
        let work = |lane: &mut LaneScratch,
                    task: usize,
                    out: &mut (&mut [DestEntry], &mut ChunkReplay)| {
            let chunk: &mut [DestEntry] = out.0;
            let replay: &mut ChunkReplay = out.1;
            let range = &ranges[task];
            let mut all_clean = true;
            for entry in chunk.iter_mut() {
                advance_entry(
                    entry,
                    lane,
                    csr,
                    state,
                    mask,
                    toggle_set,
                    toggle_words,
                    full_all,
                    policy,
                    sweep,
                );
                all_clean &= entry.last_clean;
            }
            if sweep {
                // Keep the previous buffer only if it covers exactly this
                // entry range and every entry replayed clean; otherwise
                // regather from the (fresh) per-entry lists.
                let reusable = replay.valid
                    && replay.start == range.start
                    && replay.end == range.end
                    && all_clean;
                if !reusable {
                    replay.gather(chunk, range.start, range.end);
                }
            } else {
                // Structure-only rebase: edit lists may be stale.
                replay.valid = false;
            }
        };
        if use_pool {
            pool.run_scratch_tasks_into(scratch, &mut tasks, work);
        } else {
            for (task, out) in tasks.iter_mut().enumerate() {
                work(&mut scratch[0], task, out);
            }
        }
        self.primed = true;

        let (mut clean, mut dirty, mut full) = (0u64, 0u64, 0u64);
        for e in &self.entries {
            if e.last_clean {
                clean += 1;
            } else {
                dirty += 1;
            }
            if e.last_full {
                full += 1;
            }
        }
        self.stats.clean_destinations += clean;
        self.stats.dirty_destinations += dirty;
        self.stats.full_rebuilds += full;
        self.stats.toggled_circuits += toggle_set.len() as u64;
        self.metrics.clean.add(clean);
        self.metrics.dirty.add(dirty);
        self.metrics.full.add(full);
        self.metrics.toggled.add(toggle_set.len() as u64);
        if full > 0 {
            // Full rebuilds recompute footprints from scratch on private
            // allocations; merge equal ones back onto shared storage.
            self.intern_footprints();
        }
        if full > 0 || dirty > 0 {
            self.metrics
                .footprint_bytes
                .set(self.footprint_bytes() as f64);
        }
    }

    /// Re-interns the footprints of entries that just did a full rebuild:
    /// equal contents collapse onto one shared allocation. Buckets are
    /// keyed by content hash; allocations no longer referenced by any entry
    /// (refcount 1 = the bucket's own ref) are purged as they are touched.
    fn intern_footprints(&mut self) {
        for e in self.entries.iter_mut().filter(|e| e.last_full) {
            let bucket = self.intern.entry(hash_words(&e.footprint)).or_default();
            bucket.retain(|fp| Arc::strong_count(fp) > 1 || Arc::ptr_eq(fp, &e.footprint));
            if bucket.iter().any(|fp| Arc::ptr_eq(fp, &e.footprint)) {
                continue; // already the shared allocation
            }
            if let Some(shared) = bucket.iter().find(|fp| ***fp == *e.footprint) {
                e.footprint = Arc::clone(shared);
            } else {
                bucket.push(Arc::clone(&e.footprint));
            }
        }
    }
}

/// Content hash of a bit set's words (FNV-1a over the backing u64s).
fn hash_words(bits: &BitSet) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &w in bits.words() {
        h = (h ^ w).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Split weight of one circuit under `policy` (must match
/// `EcmpRouter::route_group` exactly).
#[inline]
fn split_weight(csr: &CsrGraph, c: u32, policy: SplitPolicy) -> f64 {
    match policy {
        SplitPolicy::Ecmp => 1.0,
        SplitPolicy::Wcmp => csr.wcmp_weight(c),
    }
}

/// Updates one destination's cached structures for the child state and
/// (when `sweep`) refreshes its edit list. See the module docs for the
/// classification rules and why each shortcut is sound.
#[allow(clippy::too_many_arguments)]
fn advance_entry(
    entry: &mut DestEntry,
    scratch: &mut LaneScratch,
    csr: &CsrGraph,
    state: &NetState,
    mask: &UsableMask,
    toggles: &[CircuitId],
    toggle_words: &[(u32, u64)],
    full_all: bool,
    policy: SplitPolicy,
    sweep: bool,
) {
    let epoch = scratch.bump_epoch();
    scratch.marked.clear();
    scratch.seeds.clear();
    scratch.settled.clear();

    let dst_i = entry.dst.index();
    // The cached BFS roots at the destination: dist[dst] == 0 iff the
    // destination switch was up in the base state.
    let mut full = full_all || ((entry.dist[dst_i] == 0) != state.switch_up(entry.dst));

    // Word-level prefilter: if the footprint intersects no toggle word, no
    // toggle can be in the footprint — the whole classification loop is
    // skipped. This is the common case (most destinations are far from a
    // one-block delta), so the per-destination delta cost collapses to a
    // few ANDs over shared footprint words.
    let delta_touches = !full && {
        let fp = entry.footprint.words();
        toggle_words.iter().any(|&(w, m)| fp[w as usize] & m != 0)
    };

    if !full && delta_touches {
        for &c in toggles {
            // Footprint rule: a toggle not incident to any reached switch
            // cannot change this destination's routing.
            if !entry.footprint.get(c.index()) {
                continue;
            }
            let ci = c.index() as u32;
            let (a32, b32) = csr.ends(ci);
            let (ai, bi) = (a32 as usize, b32 as usize);
            let (da, db) = (entry.dist[ai], entry.dist[bi]);
            let w = csr.hop(ci);
            if mask.usable(c) {
                // Toggled ON.
                match (da != UNREACHED, db != UNREACHED) {
                    (true, true) => {
                        if da.saturating_add(w) < db || db.saturating_add(w) < da {
                            full = true; // shortcut: labels would shrink
                            break;
                        } else if da + w == db {
                            mark(scratch, epoch, bi); // b gains a DAG edge
                        } else if db + w == da {
                            mark(scratch, epoch, ai);
                        }
                        // |da - db| < w (or da == db): not a DAG edge.
                    }
                    (true, false) => scratch.seeds.push((da + w, bi as u32)),
                    (false, true) => scratch.seeds.push((db + w, ai as u32)),
                    // Both unreached: connects nothing to the reached
                    // region by itself; if a chain of new circuits does,
                    // some circuit of the chain has a reached endpoint and
                    // seeds the partial BFS that walks the rest.
                    (false, false) => {}
                }
            } else {
                // Toggled OFF. A base-usable circuit with one endpoint
                // reached always has both reached, so only the both-reached
                // case can carry a DAG edge.
                if da != UNREACHED && db != UNREACHED {
                    if db + w == da {
                        mark(scratch, epoch, ai); // a loses a DAG edge
                    } else if da + w == db {
                        mark(scratch, epoch, bi);
                    }
                }
            }
        }
    }

    // Fast victim pass: a marked switch with no usable circuit left is
    // unreachable (the common case for a freshly drained switch). Partial
    // loss of support is caught below when a rebuilt downhill list comes
    // out empty.
    if !full {
        for i in 0..scratch.marked.len() {
            let ui = scratch.marked[i] as usize;
            if csr
                .neighbors(ui as u32)
                .iter()
                .all(|e| !mask.usable_idx(e.circuit as usize))
            {
                entry.dist[ui] = UNREACHED;
                entry.dag[ui].clear();
            }
        }
    }

    // Partial BFS: bounded Dijkstra from the seed entry points over the
    // previously-unreached region only. Seeds span an arbitrary distance
    // range, so this uses a heap rather than Dial buckets.
    if !full && !scratch.seeds.is_empty() {
        scratch.heap.clear();
        for &(d, x) in &scratch.seeds {
            let xi = x as usize;
            // Seed endpoints were unreached in the base; victims cannot
            // appear here (all their circuits are unusable, while a seed's
            // toggled-on circuit is usable and incident).
            if d < entry.dist[xi] {
                entry.dist[xi] = d;
                scratch.new_stamp[xi] = epoch;
                scratch.heap.push(Reverse((d, x)));
            }
        }
        'dijkstra: while let Some(Reverse((d, x))) = scratch.heap.pop() {
            let xi = x as usize;
            if d > entry.dist[xi] || scratch.settle_stamp[xi] == epoch {
                continue; // stale or already settled
            }
            scratch.settle_stamp[xi] = epoch;
            scratch.settled.push(x);
            for e in csr.neighbors(x) {
                if !mask.usable_idx(e.circuit as usize) {
                    continue;
                }
                let nd = d + e.hop;
                let fi = e.far as usize;
                if scratch.new_stamp[fi] == epoch || entry.dist[fi] == UNREACHED {
                    // Still inside the new region.
                    if nd < entry.dist[fi] {
                        entry.dist[fi] = nd;
                        scratch.new_stamp[fi] = epoch;
                        scratch.heap.push(Reverse((nd, e.far)));
                    }
                } else if nd < entry.dist[fi] {
                    // The new region shortcuts into the old one: labels
                    // there would shrink — rebuild from scratch.
                    full = true;
                    break 'dijkstra;
                } else if nd == entry.dist[fi] {
                    // A base-reached switch gains a DAG edge through the
                    // new region.
                    mark(scratch, epoch, fi);
                }
            }
        }
        // Newly reached switches need downhill lists, order slots, and
        // footprint coverage. Footprint growth copy-on-writes when the
        // allocation is shared (interned), keeping other destinations'
        // footprints intact.
        if !full && !scratch.settled.is_empty() {
            let fp = Arc::make_mut(&mut entry.footprint);
            for i in 0..scratch.settled.len() {
                let x = scratch.settled[i];
                mark(scratch, epoch, x as usize);
                for e in csr.neighbors(x) {
                    fp.set(e.circuit as usize, true);
                }
            }
        }
    }

    // Rebuild downhill lists for every marked survivor by rescanning its
    // neighbors — the list must stay in neighbor-scan order for the sweep's
    // f64 additions to stay bit-identical, so no in-place splicing.
    if !full {
        for i in 0..scratch.marked.len() {
            let ui = scratch.marked[i] as usize;
            let du = entry.dist[ui];
            if du == UNREACHED || du == 0 {
                continue; // victim, or the destination itself
            }
            let dist = &entry.dist;
            let list = &mut entry.dag[ui];
            list.clear();
            for e in csr.neighbors(ui as u32) {
                if mask.usable_idx(e.circuit as usize)
                    && dist[e.far as usize].saturating_add(e.hop) == du
                {
                    list.push((e.slot, e.far, split_weight(csr, e.circuit, policy)));
                }
            }
            if list.is_empty() {
                // Lost its last shortest path: its true label grew, and
                // labels downstream of it may be stale too.
                full = true;
                break;
            }
        }
    }

    let structure_changed = !scratch.marked.is_empty();
    entry.last_full = full;
    if full {
        rebuild_full(entry, scratch, csr, state, mask, policy);
    } else if structure_changed {
        // Patch the canonical order: drop victims (removing elements keeps
        // it sorted) and merge the newly settled switches.
        if scratch.settled.is_empty() {
            entry.order.retain(|&u| entry.dist[u as usize] != UNREACHED);
        } else {
            let dist = &entry.dist;
            scratch
                .settled
                .sort_unstable_by_key(|&u| (dist[u as usize], u));
            scratch.order_buf.clear();
            let mut next = 0usize;
            for &u in &entry.order {
                let du = dist[u as usize];
                if du == UNREACHED {
                    continue;
                }
                while next < scratch.settled.len() {
                    let x = scratch.settled[next];
                    if (dist[x as usize], x) < (du, u) {
                        scratch.order_buf.push(x);
                        next += 1;
                    } else {
                        break;
                    }
                }
                scratch.order_buf.push(u);
            }
            scratch
                .order_buf
                .extend_from_slice(&scratch.settled[next..]);
            std::mem::swap(&mut entry.order, &mut scratch.order_buf);
        }
    }

    let clean = !full && !structure_changed;
    entry.last_clean = clean && entry.edits_valid;
    if sweep {
        if !clean || !entry.edits_valid {
            sweep_entry(entry, scratch, state);
            // The base sweep re-ran, so the structure or state moved:
            // every cached per-extra-matrix edit list is now stale. They
            // re-validate lazily on their next replay — a matrix the
            // checker short-circuits past simply stays stale.
            entry.extra_valid.fill(false);
        }
    } else if !clean {
        entry.edits_valid = false;
        entry.extra_valid.fill(false);
    }
}

/// Adds `ui` to the marked set once per epoch.
#[inline]
fn mark(scratch: &mut LaneScratch, epoch: u32, ui: usize) {
    if scratch.mark_stamp[ui] != epoch {
        scratch.mark_stamp[ui] = epoch;
        scratch.marked.push(ui as u32);
    }
}

/// From-scratch BFS + DAG + footprint rebuild for one destination —
/// Dial's algorithm exactly as `EcmpRouter::bfs_from`, plus the cached
/// structures the incremental paths patch.
fn rebuild_full(
    entry: &mut DestEntry,
    scratch: &mut LaneScratch,
    csr: &CsrGraph,
    state: &NetState,
    mask: &UsableMask,
    policy: SplitPolicy,
) {
    const MAX_W: usize = 2;
    for d in &mut entry.dist {
        *d = UNREACHED;
    }
    entry.order.clear();
    if state.switch_up(entry.dst) {
        for b in &mut scratch.buckets {
            b.clear();
        }
        entry.dist[entry.dst.index()] = 0;
        scratch.buckets[0].push(entry.dst.0);
        let mut current = 0u32;
        let mut remaining = 1usize;
        while remaining > 0 {
            let slot = (current as usize) % (MAX_W + 1);
            while let Some(u) = scratch.buckets[slot].pop() {
                remaining -= 1;
                let ui = u as usize;
                if entry.dist[ui] != current {
                    continue;
                }
                entry.order.push(u);
                for e in csr.neighbors(u) {
                    if !mask.usable_idx(e.circuit as usize) {
                        continue;
                    }
                    let nd = current + e.hop;
                    let fi = e.far as usize;
                    if nd < entry.dist[fi] {
                        entry.dist[fi] = nd;
                        scratch.buckets[(nd as usize) % (MAX_W + 1)].push(e.far);
                        remaining += 1;
                    }
                }
            }
            current += 1;
        }
        canonical_order(&mut entry.order, &entry.dist);
    }
    // Copy-on-write the footprint: a shared (interned) allocation is left
    // for its other referents and this entry gets a private one, re-merged
    // by the post-advance interning pass when it matches another's.
    let fp = Arc::make_mut(&mut entry.footprint);
    fp.clear_all();
    for &u in &entry.order {
        let ui = u as usize;
        let du = entry.dist[ui];
        let dist = &entry.dist;
        let list = &mut entry.dag[ui];
        list.clear();
        for e in csr.neighbors(u) {
            fp.set(e.circuit as usize, true);
            if du > 0
                && mask.usable_idx(e.circuit as usize)
                && dist[e.far as usize].saturating_add(e.hop) == du
            {
                list.push((e.slot, e.far, split_weight(csr, e.circuit, policy)));
            }
        }
    }
}

/// Re-runs injection + reverse sweep from the cached structures, recording
/// the ordered edit list. Mirrors `EcmpRouter::route_group` operation for
/// operation so the recorded f64 additions are bit-identical to it.
fn sweep_entry(entry: &mut DestEntry, scratch: &mut LaneScratch, state: &NetState) {
    entry.edits.clear();
    entry.routed_terms.clear();
    entry.unreachable.clear();
    for d in &entry.demands {
        let src = d.src.index();
        if entry.dist[src] == UNREACHED || !state.switch_up(d.src) {
            entry.unreachable.push((d.src, d.dst));
            continue;
        }
        if scratch.inflow[src] == 0.0 {
            scratch.touched.push(src as u32);
        }
        scratch.inflow[src] += d.gbps;
        entry.routed_terms.push(d.gbps);
    }
    for i in (0..entry.order.len()).rev() {
        let u = entry.order[i] as usize;
        let flow = scratch.inflow[u];
        if flow == 0.0 {
            continue;
        }
        if entry.dist[u] == 0 {
            continue; // the destination absorbs its inflow
        }
        let list = &entry.dag[u];
        let mut total_weight = 0.0_f64;
        for &(_, _, weight) in list {
            total_weight += weight;
        }
        debug_assert!(
            total_weight > 0.0,
            "a reachable non-destination switch must have a downhill circuit"
        );
        for &(slot, far, weight) in list {
            let share = flow * weight / total_weight;
            entry.edits.push((slot, share));
            let fi = far as usize;
            if scratch.inflow[fi] == 0.0 {
                scratch.touched.push(far);
            }
            scratch.inflow[fi] += share;
        }
    }
    for &u in &scratch.touched {
        scratch.inflow[u as usize] = 0.0;
    }
    scratch.touched.clear();
    entry.edits_valid = true;
}

/// [`sweep_entry`] for the k-th non-base ensemble matrix: identical
/// injection + reverse-sweep sequence over the same cached structures, but
/// reading rates from `extra_rates[k]` and recording into the per-matrix
/// edit list. Unreachable pairs are not re-derived — the endpoints match
/// the base's, so the base's `unreachable` list applies verbatim.
fn sweep_extra(entry: &mut DestEntry, scratch: &mut LaneScratch, state: &NetState, k: usize) {
    entry.extra_edits[k].clear();
    entry.extra_terms[k].clear();
    for (i, d) in entry.demands.iter().enumerate() {
        let src = d.src.index();
        if entry.dist[src] == UNREACHED || !state.switch_up(d.src) {
            continue; // recorded in the base's shared unreachable list
        }
        let gbps = entry.extra_rates[k][i];
        if scratch.inflow[src] == 0.0 {
            scratch.touched.push(src as u32);
        }
        scratch.inflow[src] += gbps;
        entry.extra_terms[k].push(gbps);
    }
    for i in (0..entry.order.len()).rev() {
        let u = entry.order[i] as usize;
        let flow = scratch.inflow[u];
        if flow == 0.0 {
            continue;
        }
        if entry.dist[u] == 0 {
            continue; // the destination absorbs its inflow
        }
        let list = &entry.dag[u];
        let mut total_weight = 0.0_f64;
        for &(_, _, weight) in list {
            total_weight += weight;
        }
        debug_assert!(
            total_weight > 0.0,
            "a reachable non-destination switch must have a downhill circuit"
        );
        for &(slot, far, weight) in list {
            let share = flow * weight / total_weight;
            entry.extra_edits[k].push((slot, share));
            let fi = far as usize;
            if scratch.inflow[fi] == 0.0 {
                scratch.touched.push(far);
            }
            scratch.inflow[fi] += share;
        }
    }
    for &u in &scratch.touched {
        scratch.inflow[u as usize] = 0.0;
    }
    scratch.touched.clear();
    entry.extra_valid[k] = true;
}

/// Convenience for tests and callers without an external toggle source:
/// diffs two states' usability over the whole topology.
pub fn usability_toggles(topo: &Topology, a: &NetState, b: &NetState) -> Vec<CircuitId> {
    (0..topo.num_circuits())
        .map(CircuitId::from_index)
        .filter(|&c| a.circuit_usable(topo, c) != b.circuit_usable(topo, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecmp::EcmpRouter;
    use klotski_topology::presets::{self, PresetId};
    use klotski_traffic::{generate, DemandGenConfig};

    fn preset_world() -> (Topology, NetState, DemandMatrix) {
        let p = presets::build(PresetId::A);
        let t = p.topology;
        let mut state = NetState::all_up(&t);
        for s in p.handles.hgrid_v2_switches() {
            state.drain_switch(&t, s);
        }
        let demands = generate(&t, &DemandGenConfig::default());
        (t, state, demands)
    }

    fn full_reference(
        topo: &Topology,
        state: &NetState,
        demands: &DemandMatrix,
        policy: SplitPolicy,
    ) -> (LoadMap, RouteOutcome) {
        let mut loads = LoadMap::new(topo);
        let out = EcmpRouter::with_policy(topo, policy).route(topo, state, demands, &mut loads);
        (loads, out)
    }

    fn assert_bit_identical(a: &LoadMap, b: &LoadMap, topo: &Topology, what: &str) {
        for i in 0..topo.num_circuits() {
            let c = CircuitId::from_index(i);
            assert_eq!(
                a.forward(c).to_bits(),
                b.forward(c).to_bits(),
                "{what}: forward {c}"
            );
            assert_eq!(
                a.reverse(c).to_bits(),
                b.reverse(c).to_bits(),
                "{what}: reverse {c}"
            );
        }
    }

    /// Deterministic xorshift for reproducible knockout sequences.
    fn splitmix(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    #[test]
    fn primed_evaluation_matches_full() {
        let (t, state, demands) = preset_world();
        let pool = WorkerPool::new(2);
        let mut engine = IncrementalRouter::new(&t, &demands, pool.lanes(), SplitPolicy::Ecmp);
        let mut loads = LoadMap::new(&t);
        let mut out = RouteOutcome::new();
        engine.evaluate(&pool, &t, &state, None, &mut loads, &mut out);
        let (ref_loads, ref_out) = full_reference(&t, &state, &demands, SplitPolicy::Ecmp);
        assert_eq!(out, ref_out);
        assert_eq!(out.routed_gbps.to_bits(), ref_out.routed_gbps.to_bits());
        assert_bit_identical(&loads, &ref_loads, &t, "priming");
    }

    #[test]
    fn random_toggle_walk_stays_bit_identical_to_full() {
        let (t, state, demands) = preset_world();
        for (threads, policy) in [
            (1, SplitPolicy::Ecmp),
            (3, SplitPolicy::Ecmp),
            (2, SplitPolicy::Wcmp),
        ] {
            let pool = WorkerPool::new(threads);
            let mut engine = IncrementalRouter::new(&t, &demands, pool.lanes(), policy);
            let mut prev = state.clone();
            let mut loads = LoadMap::new(&t);
            let mut out = RouteOutcome::new();
            engine.evaluate(&pool, &t, &prev, None, &mut loads, &mut out);
            let mut seed = 0x5eed ^ threads as u64;
            for step in 0..12 {
                // Random knockouts and restorations of switches/circuits.
                let mut next = prev.clone();
                for _ in 0..(1 + splitmix(&mut seed) % 3) {
                    if splitmix(&mut seed).is_multiple_of(2) {
                        let c = CircuitId::from_index(
                            (splitmix(&mut seed) % t.num_circuits() as u64) as usize,
                        );
                        let up = next.circuit_up(c);
                        next.set_circuit(c, !up);
                    } else {
                        let s = SwitchId::from_index(
                            (splitmix(&mut seed) % t.num_switches() as u64) as usize,
                        );
                        if next.switch_up(s) {
                            next.drain_switch(&t, s);
                        } else {
                            next.undrain_switch(&t, s);
                        }
                    }
                }
                let toggles = usability_toggles(&t, &prev, &next);
                loads.clear();
                engine.evaluate(&pool, &t, &next, Some(&toggles), &mut loads, &mut out);
                let (ref_loads, ref_out) = full_reference(&t, &next, &demands, policy);
                assert_eq!(out, ref_out, "step {step} ({threads} threads)");
                assert_eq!(
                    out.routed_gbps.to_bits(),
                    ref_out.routed_gbps.to_bits(),
                    "step {step}"
                );
                assert_bit_identical(&loads, &ref_loads, &t, &format!("step {step}"));
                prev = next;
            }
            let s = engine.stats();
            assert_eq!(s.evaluations, 13);
            assert_eq!(
                s.clean_destinations + s.dirty_destinations,
                13 * engine.num_destinations() as u64
            );
        }
    }

    #[test]
    fn footprints_intern_onto_shared_storage() {
        let (t, state, demands) = preset_world();
        let pool = WorkerPool::new(2);
        let mut engine = IncrementalRouter::new(&t, &demands, pool.lanes(), SplitPolicy::Ecmp);
        let mut loads = LoadMap::new(&t);
        let mut out = RouteOutcome::new();
        engine.evaluate(&pool, &t, &state, None, &mut loads, &mut out);
        // In a connected usable subgraph every destination reaches the same
        // region, so footprints dedup onto far fewer allocations than one
        // per destination.
        let per_set = (t.num_circuits().div_ceil(64) * 8) as u64;
        assert!(engine.num_destinations() > 1);
        assert!(engine.footprint_bytes() >= per_set);
        assert!(
            engine.footprint_bytes() < engine.num_destinations() as u64 * per_set,
            "no sharing happened: {} bytes across {} destinations",
            engine.footprint_bytes(),
            engine.num_destinations()
        );
        // Interning must not affect results: a delta evaluation after a
        // knockout still matches the from-scratch reference.
        let mut next = state.clone();
        next.drain_switch(&t, SwitchId::from_index(3));
        let toggles = usability_toggles(&t, &state, &next);
        loads.clear();
        engine.evaluate(&pool, &t, &next, Some(&toggles), &mut loads, &mut out);
        let (ref_loads, ref_out) = full_reference(&t, &next, &demands, SplitPolicy::Ecmp);
        assert_eq!(out, ref_out);
        assert_bit_identical(&loads, &ref_loads, &t, "post-intern delta");
    }

    #[test]
    fn rebase_then_evaluate_matches_direct_evaluation() {
        let (t, state, demands) = preset_world();
        let pool = WorkerPool::new(2);
        let mut engine = IncrementalRouter::new(&t, &demands, pool.lanes(), SplitPolicy::Ecmp);
        let mut loads = LoadMap::new(&t);
        let mut out = RouteOutcome::new();
        engine.evaluate(&pool, &t, &state, None, &mut loads, &mut out);

        // Drain one switch, rebase (structure only), then evaluate a child
        // that drains another switch on top.
        let mut parent = state.clone();
        parent.drain_switch(&t, SwitchId::from_index(0));
        let toggles = usability_toggles(&t, &state, &parent);
        engine.rebase(&pool, &t, &parent, Some(&toggles));
        assert_eq!(engine.stats().rebases, 1);

        let mut child = parent.clone();
        child.drain_switch(&t, SwitchId::from_index(5));
        let toggles = usability_toggles(&t, &parent, &child);
        loads.clear();
        engine.evaluate(&pool, &t, &child, Some(&toggles), &mut loads, &mut out);
        let (ref_loads, ref_out) = full_reference(&t, &child, &demands, SplitPolicy::Ecmp);
        assert_eq!(out, ref_out);
        assert_bit_identical(&loads, &ref_loads, &t, "child after rebase");
    }

    #[test]
    fn extra_matrices_replay_bit_identical_to_from_scratch() {
        let (t, state, demands) = preset_world();
        // Ensemble variants: same endpoints, scaled rates (globally and per
        // class, like the realized EWMA/surge variants).
        let surged: DemandMatrix = demands
            .iter()
            .cloned()
            .map(|mut d| {
                if d.class == klotski_traffic::DemandClass::RswToRsw {
                    d.gbps *= 1.45;
                }
                d
            })
            .collect();
        let extras = vec![demands.scaled(1.25), surged, demands.scaled(0.5)];
        for threads in [1usize, 3] {
            let pool = WorkerPool::new(threads);
            let mut engine = IncrementalRouter::with_csr_ensemble(
                Arc::new(CsrGraph::build(&t)),
                &demands,
                &extras,
                pool.lanes(),
                SplitPolicy::Ecmp,
            );
            assert_eq!(engine.num_extras(), 3);
            let mut prev = state.clone();
            let mut loads = LoadMap::new(&t);
            let mut out = RouteOutcome::new();
            engine.evaluate(&pool, &t, &prev, None, &mut loads, &mut out);
            let mut seed = 0xab5eed ^ threads as u64;
            for step in 0..10 {
                let mut next = prev.clone();
                for _ in 0..(1 + splitmix(&mut seed) % 3) {
                    if splitmix(&mut seed).is_multiple_of(2) {
                        let c = CircuitId::from_index(
                            (splitmix(&mut seed) % t.num_circuits() as u64) as usize,
                        );
                        let up = next.circuit_up(c);
                        next.set_circuit(c, !up);
                    } else {
                        let s = SwitchId::from_index(
                            (splitmix(&mut seed) % t.num_switches() as u64) as usize,
                        );
                        if next.switch_up(s) {
                            next.drain_switch(&t, s);
                        } else {
                            next.undrain_switch(&t, s);
                        }
                    }
                }
                let toggles = usability_toggles(&t, &prev, &next);
                loads.clear();
                engine.evaluate(&pool, &t, &next, Some(&toggles), &mut loads, &mut out);
                for k in 0..extras.len() {
                    // Skip some replays to exercise short-circuit staleness:
                    // a skipped matrix must still replay correctly later.
                    if (step + k) % 3 == 2 {
                        continue;
                    }
                    loads.clear();
                    engine.replay_extra(k, &next, &mut loads, &mut out);
                    let (ref_loads, ref_out) =
                        full_reference(&t, &next, &extras[k], SplitPolicy::Ecmp);
                    assert_eq!(out, ref_out, "step {step} extra {k} ({threads} threads)");
                    assert_eq!(
                        out.routed_gbps.to_bits(),
                        ref_out.routed_gbps.to_bits(),
                        "step {step} extra {k}"
                    );
                    assert_bit_identical(&loads, &ref_loads, &t, &format!("step {step} extra {k}"));
                }
                prev = next;
            }
            let s = engine.stats();
            assert!(s.extra_replays > 0);
            assert!(s.extra_resweeps > 0, "staleness path must be exercised");
        }
    }

    #[test]
    fn clean_destinations_replay_without_resweep() {
        let (t, state, demands) = preset_world();
        let pool = WorkerPool::new(1);
        let mut engine = IncrementalRouter::new(&t, &demands, pool.lanes(), SplitPolicy::Ecmp);
        let mut loads = LoadMap::new(&t);
        let mut out = RouteOutcome::new();
        engine.evaluate(&pool, &t, &state, None, &mut loads, &mut out);
        let before = engine.stats();
        // Empty delta: every destination must replay from cache.
        loads.clear();
        engine.evaluate(&pool, &t, &state, Some(&[]), &mut loads, &mut out);
        let after = engine.stats();
        assert_eq!(
            after.clean_destinations - before.clean_destinations,
            engine.num_destinations() as u64
        );
        assert_eq!(after.dirty_destinations, before.dirty_destinations);
        let (ref_loads, _) = full_reference(&t, &state, &demands, SplitPolicy::Ecmp);
        assert_bit_identical(&loads, &ref_loads, &t, "replay");
        assert!(engine.approx_bytes() > 0);
    }
}
