//! Hop-count ECMP routing with fractional flow splitting.
//!
//! Klotski uses the equal-cost multi-path routing policy (§5): a demand's
//! flow splits equally at each hop across all shortest-path next hops. This
//! module evaluates ECMP loads exactly (as real-valued flow fractions)
//! rather than by path enumeration: demands sharing a destination are routed
//! in one pass —
//!
//! 1. run a BFS from the destination over *usable* circuits to label every
//!    switch with its hop distance;
//! 2. inject each demand's rate at its source;
//! 3. sweep switches in decreasing-distance order, splitting each switch's
//!    accumulated inflow equally over its downhill circuits.
//!
//! This is Θ(|S|+|C|) per distinct destination, which is what makes a full
//! satisfiability check affordable on an O(100,000)-circuit topology.

use crate::loads::LoadMap;
use crate::mask::UsableMask;
use klotski_topology::{CsrGraph, NetState, SwitchId, Topology};
use klotski_traffic::{Demand, DemandMatrix};
use std::sync::Arc;

/// Distance label for unreachable switches.
pub(crate) const UNREACHED: u32 = u32::MAX;

/// Sorts a BFS visit order into the canonical `(distance, switch index)`
/// order. Every routing path — sequential, parallel lanes, and the
/// incremental engine's patched orders — must produce exactly this order,
/// because the reverse sweep adds f64 shares in it and f64 addition is not
/// associative. Equal-distance switches never exchange flow (hop weights are
/// ≥ 1), so any permutation of ties is *correct*; pinning one makes every
/// evaluation path bit-identical.
pub(crate) fn canonical_order(order: &mut [u32], dist: &[u32]) {
    order.sort_unstable_by_key(|&u| (dist[u as usize], u));
}

/// How flow splits across a switch's shortest-path next hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitPolicy {
    /// Equal-cost multi-path: equal share per downhill circuit (§5).
    #[default]
    Ecmp,
    /// Weighted-cost multi-path: share proportional to circuit capacity.
    /// Models the "temporary routing configurations [created] to balance
    /// the traffic" between coexisting generations (§7.1) — without it, a
    /// sparsely-deployed new layer attracts traffic by path count rather
    /// than by installed capacity.
    Wcmp,
}

/// Result of routing one demand matrix over one network state.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOutcome {
    /// Demands with no live path from source to destination
    /// (violations of Eq. 4), as (src, dst) pairs.
    pub unreachable: Vec<(SwitchId, SwitchId)>,
    /// Total rate successfully routed, Gbps.
    pub routed_gbps: f64,
}

impl RouteOutcome {
    /// An empty outcome (no demands seen yet).
    pub fn new() -> Self {
        Self {
            unreachable: Vec::new(),
            routed_gbps: 0.0,
        }
    }

    /// True if every demand found a path.
    pub fn all_reachable(&self) -> bool {
        self.unreachable.is_empty()
    }

    /// Resets to the empty outcome, keeping the `unreachable` allocation so
    /// a caller-held buffer can be reused across evaluations.
    pub fn clear(&mut self) {
        self.unreachable.clear();
        self.routed_gbps = 0.0;
    }
}

impl Default for RouteOutcome {
    fn default() -> Self {
        Self::new()
    }
}

/// Receiver of routing events. The sequential path writes straight into a
/// [`LoadMap`]; parallel lanes record an ordered edit list instead, replayed
/// later in a fixed chunk order so the merged result is bit-identical to a
/// sequential run (f64 addition is not associative, so *order*, not just
/// membership, must be preserved).
pub trait RouteSink {
    /// `gbps` of flow lands on directional slot `slot`
    /// (see [`LoadMap::directed_slot`]).
    fn add_flow(&mut self, slot: u32, gbps: f64);
    /// One demand of `gbps` found a live path.
    fn demand_routed(&mut self, gbps: f64);
    /// One demand had no live path (Eq. 4 violation).
    fn demand_unreachable(&mut self, src: SwitchId, dst: SwitchId);
}

/// Sequential sink: applies events directly. Shared with the parallel
/// router's below-break-even sequential fallback.
pub(crate) struct DirectSink<'a> {
    pub(crate) loads: &'a mut LoadMap,
    pub(crate) outcome: &'a mut RouteOutcome,
}

impl RouteSink for DirectSink<'_> {
    #[inline]
    fn add_flow(&mut self, slot: u32, gbps: f64) {
        self.loads.add_slot(slot, gbps);
    }

    #[inline]
    fn demand_routed(&mut self, gbps: f64) {
        self.outcome.routed_gbps += gbps;
    }

    fn demand_unreachable(&mut self, src: SwitchId, dst: SwitchId) {
        self.outcome.unreachable.push((src, dst));
    }
}

/// Reusable ECMP routing engine over a flattened [`CsrGraph`]. Holds
/// scratch buffers sized to one topology so repeated satisfiability checks
/// do not allocate.
#[derive(Debug, Clone)]
pub struct EcmpRouter {
    /// Flattened adjacency shared (read-only) by every engine and lane
    /// built over the same topology.
    csr: Arc<CsrGraph>,
    dist: Vec<u32>,
    /// BFS visit order (ascending distance); swept in reverse to propagate.
    order: Vec<u32>,
    inflow: Vec<f64>,
    /// Switches whose inflow was touched this pass (sparse reset).
    touched: Vec<u32>,
    /// Downhill circuits of the switch being swept, as
    /// `(directional load slot, far switch index, split weight)` — collected
    /// once per switch so the weight normalization and the share emission
    /// share a single scan.
    downhill: Vec<(u32, u32, f64)>,
    /// Dial buckets for the BFS, persistent so per-destination BFS runs do
    /// not allocate (a full check runs one BFS per distinct destination).
    buckets: [Vec<u32>; 3],
    /// Usable-circuit mask storage for [`route`](Self::route); taken out
    /// and restored around each call so the borrow does not alias `self`.
    mask: UsableMask,
    /// Flow-split policy.
    pub policy: SplitPolicy,
}

impl EcmpRouter {
    /// Creates a router sized for `topo`.
    pub fn new(topo: &Topology) -> Self {
        Self::from_csr(Arc::new(CsrGraph::build(topo)), SplitPolicy::Ecmp)
    }

    /// Creates a router with an explicit split policy.
    pub fn with_policy(topo: &Topology, policy: SplitPolicy) -> Self {
        Self::from_csr(Arc::new(CsrGraph::build(topo)), policy)
    }

    /// Creates a router over an already-flattened graph. Checkers that hold
    /// several engines (parallel lanes, the incremental engine) build the
    /// CSR view once and share it here.
    pub fn from_csr(csr: Arc<CsrGraph>, policy: SplitPolicy) -> Self {
        let n = csr.num_switches();
        Self {
            csr,
            dist: vec![UNREACHED; n],
            order: Vec::with_capacity(n),
            inflow: vec![0.0; n],
            touched: Vec::new(),
            downhill: Vec::new(),
            buckets: [Vec::new(), Vec::new(), Vec::new()],
            mask: UsableMask::new(),
            policy,
        }
    }

    /// The shared flattened graph this router routes over.
    pub fn csr(&self) -> &Arc<CsrGraph> {
        &self.csr
    }

    /// Routes every demand of `matrix` over the usable subgraph of
    /// (`topo`, `state`), accumulating directional loads into `loads`.
    ///
    /// `loads` is NOT cleared first, so callers can accumulate several
    /// matrices; clear it explicitly for a fresh evaluation.
    pub fn route(
        &mut self,
        topo: &Topology,
        state: &NetState,
        matrix: &DemandMatrix,
        loads: &mut LoadMap,
    ) -> RouteOutcome {
        let mut mask = std::mem::take(&mut self.mask);
        mask.compute(topo, state);
        let outcome = self.route_with_mask(topo, state, &mask, matrix, loads);
        self.mask = mask;
        outcome
    }

    /// Like [`route`](Self::route) with a precomputed usable-circuit mask
    /// (which must match `state`). Callers that evaluate one state several
    /// times — or across several parallel lanes — compute the mask once and
    /// share it read-only.
    pub fn route_with_mask(
        &mut self,
        topo: &Topology,
        state: &NetState,
        mask: &UsableMask,
        matrix: &DemandMatrix,
        loads: &mut LoadMap,
    ) -> RouteOutcome {
        let mut outcome = RouteOutcome::new();
        self.route_with_mask_into(topo, state, mask, matrix, loads, &mut outcome);
        outcome
    }

    /// Like [`route_with_mask`](Self::route_with_mask), but writes into a
    /// caller-held `outcome` buffer (cleared first) so repeated evaluations
    /// do not reallocate the unreachable list.
    pub fn route_with_mask_into(
        &mut self,
        topo: &Topology,
        state: &NetState,
        mask: &UsableMask,
        matrix: &DemandMatrix,
        loads: &mut LoadMap,
        outcome: &mut RouteOutcome,
    ) {
        debug_assert_eq!(self.csr.num_switches(), topo.num_switches());
        outcome.clear();
        let mut sink = DirectSink { loads, outcome };
        for (dst, group) in matrix.by_destination() {
            self.route_group(state, mask, dst, &group, &mut sink);
        }
    }

    /// Routes the demands of one destination group into `sink`.
    pub(crate) fn route_group<S: RouteSink>(
        &mut self,
        state: &NetState,
        mask: &UsableMask,
        dst: SwitchId,
        group: &[&Demand],
        sink: &mut S,
    ) {
        self.bfs_from(state, mask, dst);
        let Self {
            ref csr,
            ref dist,
            ref order,
            ref mut inflow,
            ref mut touched,
            ref mut downhill,
            policy,
            ..
        } = *self;

        // Inject demand rates at their sources; remember touched switches so
        // the inflow reset stays sparse.
        for d in group {
            let src = d.src.index();
            if dist[src] == UNREACHED || !state.switch_up(d.src) {
                sink.demand_unreachable(d.src, d.dst);
                continue;
            }
            if inflow[src] == 0.0 {
                touched.push(src as u32);
            }
            inflow[src] += d.gbps;
            sink.demand_routed(d.gbps);
        }

        // Sweep in decreasing-distance order: every switch forwards its
        // accumulated inflow equally over its downhill usable circuits.
        // BFS order is ascending in distance, so iterate it reversed.
        for i in (0..order.len()).rev() {
            let u = order[i] as usize;
            let flow = inflow[u];
            if flow == 0.0 {
                continue;
            }
            let du = dist[u];
            if du == 0 {
                continue; // the destination absorbs its inflow
            }
            // One scan collects the downhill circuits (shortest-path DAG
            // edges) with their split weights — circuit count for ECMP,
            // capacity for WCMP — normalized by the weight total below.
            downhill.clear();
            let mut total_weight = 0.0_f64;
            for e in csr.neighbors(u as u32) {
                if mask.usable_idx(e.circuit as usize)
                    && dist[e.far as usize].saturating_add(e.hop) == du
                {
                    let weight = match policy {
                        SplitPolicy::Ecmp => 1.0,
                        SplitPolicy::Wcmp => csr.wcmp_weight(e.circuit),
                    };
                    total_weight += weight;
                    downhill.push((e.slot, e.far, weight));
                }
            }
            debug_assert!(
                total_weight > 0.0,
                "a reachable non-destination switch must have a downhill circuit"
            );
            for &(slot, far, weight) in downhill.iter() {
                let fi = far as usize;
                let share = flow * weight / total_weight;
                sink.add_flow(slot, share);
                if inflow[fi] == 0.0 {
                    touched.push(far);
                }
                inflow[fi] += share;
            }
        }

        // Sparse reset for the next group.
        for &u in touched.iter() {
            inflow[u as usize] = 0.0;
        }
        touched.clear();
    }

    /// Weighted shortest-path labeling over usable circuits from `root`,
    /// filling `dist` and `order` (ascending distance).
    ///
    /// Circuits carry small integer hop weights (ordinary hop = 2,
    /// transparent relay = 1, see `Circuit::hop_weight`), so this is Dial's
    /// algorithm over the flattened adjacency with a tiny circular bucket
    /// array — still Θ(|S|+|C|).
    fn bfs_from(&mut self, state: &NetState, mask: &UsableMask, root: SwitchId) {
        const MAX_W: usize = 2;
        let Self {
            ref csr,
            ref mut dist,
            ref mut order,
            ref mut buckets,
            ..
        } = *self;
        for d in dist.iter_mut() {
            *d = UNREACHED;
        }
        order.clear();
        if !state.switch_up(root) {
            return;
        }
        // Circular buckets indexed by distance mod (MAX_W + 1).
        for b in buckets.iter_mut() {
            b.clear();
        }
        dist[root.index()] = 0;
        buckets[0].push(root.0);
        let mut current = 0u32;
        let mut remaining = 1usize;
        while remaining > 0 {
            let slot = (current as usize) % (MAX_W + 1);
            while let Some(u) = buckets[slot].pop() {
                remaining -= 1;
                let ui = u as usize;
                if dist[ui] != current {
                    continue; // stale entry, settled at a smaller distance
                }
                order.push(u);
                for e in csr.neighbors(u) {
                    if !mask.usable_idx(e.circuit as usize) {
                        continue;
                    }
                    let nd = current + e.hop;
                    let fi = e.far as usize;
                    if nd < dist[fi] {
                        dist[fi] = nd;
                        buckets[(nd as usize) % (MAX_W + 1)].push(e.far);
                        remaining += 1;
                    }
                }
            }
            current += 1;
        }
        // Bucket pops are LIFO, so the raw visit order of equal-distance
        // switches depends on relaxation history (and hence on the usable
        // mask). Canonicalize so every evaluation path sweeps — and sums
        // f64 shares — in the same order.
        canonical_order(order, dist);
    }

    /// Hop distance from `s` to the destination of the most recent
    /// `route_group` BFS (test/diagnostic hook).
    #[cfg(test)]
    fn last_dist(&self, s: SwitchId) -> Option<u32> {
        let d = self.dist[s.index()];
        (d != UNREACHED).then_some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_topology::{
        graph::{SwitchSpec, TopologyBuilder},
        CircuitId, DcId, Generation, SwitchRole,
    };
    use klotski_traffic::DemandClass;

    fn spec(role: SwitchRole) -> SwitchSpec {
        SwitchSpec::new(role, Generation::V1, DcId(0), 64)
    }

    /// Diamond: src -> {m1, m2} -> dst, all capacities 100.
    fn diamond() -> (Topology, [SwitchId; 4], [CircuitId; 4]) {
        let mut b = TopologyBuilder::new("diamond");
        let s = b.add_switch(spec(SwitchRole::Rsw));
        let m1 = b.add_switch(spec(SwitchRole::Fsw));
        let m2 = b.add_switch(spec(SwitchRole::Fsw));
        let d = b.add_switch(spec(SwitchRole::Ebb));
        let c0 = b.add_circuit(s, m1, 100.0).unwrap();
        let c1 = b.add_circuit(s, m2, 100.0).unwrap();
        let c2 = b.add_circuit(m1, d, 100.0).unwrap();
        let c3 = b.add_circuit(m2, d, 100.0).unwrap();
        (b.build(), [s, m1, m2, d], [c0, c1, c2, c3])
    }

    fn one_demand(src: SwitchId, dst: SwitchId, gbps: f64) -> DemandMatrix {
        [Demand {
            src,
            dst,
            gbps,
            class: DemandClass::RswToEbb,
        }]
        .into_iter()
        .collect()
    }

    #[test]
    fn ecmp_splits_equally_across_diamond() {
        let (t, sw, ck) = diamond();
        let state = NetState::all_up(&t);
        let mut router = EcmpRouter::new(&t);
        let mut loads = LoadMap::new(&t);
        let out = router.route(&t, &state, &one_demand(sw[0], sw[3], 80.0), &mut loads);
        assert!(out.all_reachable());
        assert!((out.routed_gbps - 80.0).abs() < 1e-9);
        for c in ck {
            assert!((loads.max_direction(c) - 40.0).abs() < 1e-9, "{c}");
        }
    }

    #[test]
    fn flow_funnels_onto_surviving_path() {
        let (t, sw, ck) = diamond();
        let mut state = NetState::all_up(&t);
        state.set_circuit(ck[1], false); // drop src->m2
        let mut router = EcmpRouter::new(&t);
        let mut loads = LoadMap::new(&t);
        let out = router.route(&t, &state, &one_demand(sw[0], sw[3], 80.0), &mut loads);
        assert!(out.all_reachable());
        assert!((loads.max_direction(ck[0]) - 80.0).abs() < 1e-9);
        assert!((loads.max_direction(ck[2]) - 80.0).abs() < 1e-9);
        assert_eq!(loads.max_direction(ck[3]), 0.0);
    }

    #[test]
    fn unreachable_demand_is_reported() {
        let (t, sw, _) = diamond();
        let mut state = NetState::all_up(&t);
        state.drain_switch(&t, sw[1]);
        state.drain_switch(&t, sw[2]);
        let mut router = EcmpRouter::new(&t);
        let mut loads = LoadMap::new(&t);
        let out = router.route(&t, &state, &one_demand(sw[0], sw[3], 80.0), &mut loads);
        assert_eq!(out.unreachable, vec![(sw[0], sw[3])]);
        assert_eq!(out.routed_gbps, 0.0);
        assert_eq!(loads.total_flow(), 0.0);
    }

    #[test]
    fn down_source_is_unreachable() {
        let (t, sw, _) = diamond();
        let mut state = NetState::all_up(&t);
        state.set_switch(sw[0], false);
        let mut router = EcmpRouter::new(&t);
        let mut loads = LoadMap::new(&t);
        let out = router.route(&t, &state, &one_demand(sw[0], sw[3], 10.0), &mut loads);
        assert!(!out.all_reachable());
    }

    #[test]
    fn flow_is_conserved_per_hop() {
        // Flow crosses exactly dist(src) hops; with a 2-hop path, total
        // per-direction flow = 2 x rate.
        let (t, sw, _) = diamond();
        let state = NetState::all_up(&t);
        let mut router = EcmpRouter::new(&t);
        let mut loads = LoadMap::new(&t);
        router.route(&t, &state, &one_demand(sw[0], sw[3], 60.0), &mut loads);
        assert!((loads.total_flow() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_demands_same_destination_accumulate() {
        let (t, sw, ck) = diamond();
        let state = NetState::all_up(&t);
        let m: DemandMatrix = [
            Demand {
                src: sw[0],
                dst: sw[3],
                gbps: 40.0,
                class: DemandClass::RswToEbb,
            },
            Demand {
                src: sw[1],
                dst: sw[3],
                gbps: 10.0,
                class: DemandClass::RswToEbb,
            },
        ]
        .into_iter()
        .collect();
        let mut router = EcmpRouter::new(&t);
        let mut loads = LoadMap::new(&t);
        let out = router.route(&t, &state, &m, &mut loads);
        assert!(out.all_reachable());
        // sw0's 40 splits 20/20; sw1 sends its own 10 directly: c2 = 20+10.
        assert!((loads.max_direction(ck[2]) - 30.0).abs() < 1e-9);
        assert!((loads.max_direction(ck[3]) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn scratch_state_resets_between_routes() {
        let (t, sw, ck) = diamond();
        let state = NetState::all_up(&t);
        let mut router = EcmpRouter::new(&t);
        let mut loads = LoadMap::new(&t);
        router.route(&t, &state, &one_demand(sw[0], sw[3], 80.0), &mut loads);
        loads.clear();
        router.route(&t, &state, &one_demand(sw[0], sw[3], 80.0), &mut loads);
        // Identical result the second time: no stale inflow.
        for c in ck {
            assert!((loads.max_direction(c) - 40.0).abs() < 1e-9);
        }
    }

    #[test]
    fn bfs_distances_are_hop_counts() {
        let (t, sw, _) = diamond();
        let state = NetState::all_up(&t);
        let mut router = EcmpRouter::new(&t);
        let mask = UsableMask::for_state(&t, &state);
        router.bfs_from(&state, &mask, sw[3]);
        assert_eq!(router.last_dist(sw[3]), Some(0));
        assert_eq!(
            router.last_dist(sw[1]),
            Some(2),
            "one ordinary hop weighs 2"
        );
        assert_eq!(router.last_dist(sw[0]), Some(4));
    }

    #[test]
    fn preset_routing_sanity() {
        use klotski_topology::presets::{self, PresetId};
        use klotski_traffic::{generate, DemandGenConfig};
        let p = presets::build(PresetId::A);
        let t = &p.topology;
        // Drain the not-yet-installed v2 generation to get the initial world.
        let mut state = NetState::all_up(t);
        for s in p.handles.hgrid_v2_switches() {
            state.drain_switch(t, s);
        }
        let demands = generate(t, &DemandGenConfig::default());
        let mut router = EcmpRouter::new(t);
        let mut loads = LoadMap::new(t);
        let out = router.route(t, &state, &demands, &mut loads);
        assert!(
            out.all_reachable(),
            "initial world must route all demands: {:?}",
            out.unreachable
        );
        assert!(out.routed_gbps > 0.0);
    }
}
