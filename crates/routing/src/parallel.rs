//! Deterministic parallel ECMP routing.
//!
//! A demand matrix routes one destination group at a time, and groups are
//! independent: each runs its own BFS + sweep and only *accumulates* into
//! the shared [`LoadMap`]. That makes them embarrassingly parallel — except
//! that f64 addition is not associative, so naively summing per-thread
//! partial load maps would drift from the sequential result by rounding,
//! and the planner's verdicts (and its ESC cache) must not depend on the
//! thread count.
//!
//! [`ParallelRouter`] therefore keeps the *arithmetic* sequential while
//! parallelizing the *work*: destination groups are split into contiguous
//! chunks; each chunk is routed by some lane into a private edit list (the
//! exact ordered sequence of `(slot, gbps)` additions, routed-demand terms,
//! and unreachable pairs it would have produced sequentially); then the
//! chunks are replayed into the shared `LoadMap` in chunk order on the
//! calling thread. The replayed operation sequence is identical to a
//! sequential run's, so the result is bit-identical for every thread count
//! and every lane-to-chunk assignment. Replay cost is O(path slots), a tiny
//! fraction of the BFS + sweep work that actually parallelizes.

use crate::ecmp::{DirectSink, EcmpRouter, RouteOutcome, RouteSink, SplitPolicy};
use crate::loads::LoadMap;
use crate::mask::UsableMask;
use klotski_parallel::{chunk_ranges, WorkerPool};
use klotski_telemetry::{registry, Counter, Histogram};
use klotski_topology::{CsrGraph, NetState, SwitchId, Topology};
use klotski_traffic::DemandMatrix;
use std::sync::Arc;
use std::time::Instant;

/// Chunks per lane: a little oversubscription lets fast lanes steal the
/// tail from slow ones without shrinking chunks so far that per-chunk
/// overhead dominates.
const CHUNKS_PER_LANE: usize = 4;

/// Below this many destination groups the parallel path routes sequentially
/// on the calling thread. Dispatching to the pool costs a condvar wake-up
/// plus a chunk replay on top of the per-group work; a destination group is
/// one full BFS + sweep (tens of microseconds upward), so the break-even
/// sits at a handful of groups — below it, paying pool overhead only made
/// routes *slower* (the sub-1.0× preset rows in earlier
/// `BENCH_parallel.json` runs).
const SEQ_BREAK_EVEN_GROUPS: usize = 8;

/// Minimum destination groups per chunk. A big matrix used to be split into
/// the maximum `lanes × CHUNKS_PER_LANE` chunks unconditionally; capping
/// chunk count at `groups / MIN_GROUPS_PER_CHUNK` keeps each chunk
/// substantial enough that claim traffic and buffer bookkeeping stay
/// negligible at middling sizes, while still leaving every lane work.
const MIN_GROUPS_PER_CHUNK: usize = 8;

/// The ordered routing events of one chunk of destination groups.
#[derive(Debug, Default, Clone)]
struct ChunkBuf {
    /// `(directional slot, gbps)` additions, in emission order.
    edits: Vec<(u32, f64)>,
    /// Rates of demands that found a path, one term per demand in order
    /// (kept as terms, not a partial sum, to preserve the sequential
    /// summation order of `RouteOutcome::routed_gbps`).
    routed_terms: Vec<f64>,
    /// Demands with no live path, in order.
    unreachable: Vec<(SwitchId, SwitchId)>,
}

impl ChunkBuf {
    fn clear(&mut self) {
        self.edits.clear();
        self.routed_terms.clear();
        self.unreachable.clear();
    }
}

impl RouteSink for ChunkBuf {
    #[inline]
    fn add_flow(&mut self, slot: u32, gbps: f64) {
        self.edits.push((slot, gbps));
    }

    #[inline]
    fn demand_routed(&mut self, gbps: f64) {
        self.routed_terms.push(gbps);
    }

    fn demand_unreachable(&mut self, src: SwitchId, dst: SwitchId) {
        self.unreachable.push((src, dst));
    }
}

/// Registry handles for routing introspection, resolved once per router so
/// the per-route cost is three atomic adds and a histogram record.
#[derive(Debug)]
struct RouteMetrics {
    routes: Arc<Counter>,
    demands: Arc<Counter>,
    route_seconds: Arc<Histogram>,
}

impl RouteMetrics {
    fn new() -> Self {
        let reg = registry();
        reg.set_help(
            "klotski_routing_routes_total",
            "Full demand-matrix routing passes",
        );
        reg.set_help(
            "klotski_routing_demands_total",
            "Individual demands routed across all passes",
        );
        reg.set_help(
            "klotski_routing_route_seconds",
            "Wall time of one routing pass",
        );
        Self {
            routes: reg.counter("klotski_routing_routes_total"),
            demands: reg.counter("klotski_routing_demands_total"),
            route_seconds: reg.histogram("klotski_routing_route_seconds"),
        }
    }
}

/// Parallel routing engine: one [`EcmpRouter`] per pool lane plus reusable
/// chunk buffers, producing results bit-identical to the sequential path.
#[derive(Debug)]
pub struct ParallelRouter {
    /// Per-lane scratch engines (lane 0 is the calling thread). Starts
    /// with one engine and grows to the pool's lane count on the first
    /// pooled dispatch — a router that only ever takes the sequential
    /// fallback (or serves an incremental checker) never pays the
    /// per-lane allocations.
    engines: Vec<EcmpRouter>,
    /// Flow-split policy new per-lane engines are created with.
    policy: SplitPolicy,
    /// Per-chunk edit lists, reused across routes.
    chunks: Vec<ChunkBuf>,
    /// Mask storage for [`route`](Self::route).
    mask: UsableMask,
    /// Introspection counters shared through the global registry.
    metrics: RouteMetrics,
}

impl ParallelRouter {
    /// An engine for `lanes` pool lanes over `topo`.
    pub fn new(topo: &Topology, lanes: usize, policy: SplitPolicy) -> Self {
        Self::with_csr(Arc::new(CsrGraph::build(topo)), lanes, policy)
    }

    /// An engine over an already-flattened graph: all lanes share the one
    /// read-only CSR view instead of flattening per lane. `lanes` is a
    /// capacity hint only — per-lane engines are allocated lazily on the
    /// first pooled dispatch.
    pub fn with_csr(csr: Arc<CsrGraph>, lanes: usize, policy: SplitPolicy) -> Self {
        let _ = lanes;
        Self {
            engines: vec![EcmpRouter::from_csr(csr, policy)],
            policy,
            chunks: Vec::new(),
            mask: UsableMask::new(),
            metrics: RouteMetrics::new(),
        }
    }

    /// Number of per-lane engines currently allocated (grows to the pool's
    /// lane count on first pooled dispatch).
    pub fn lanes(&self) -> usize {
        self.engines.len()
    }

    /// Routes `matrix` like [`EcmpRouter::route`], distributing destination
    /// groups over `pool`'s lanes. `loads` accumulates (it is not cleared),
    /// and the result is bit-identical to the sequential router's for any
    /// pool size. Panics if `pool` has more lanes than this router.
    pub fn route(
        &mut self,
        pool: &WorkerPool,
        topo: &Topology,
        state: &NetState,
        matrix: &DemandMatrix,
        loads: &mut LoadMap,
    ) -> RouteOutcome {
        let mut mask = std::mem::take(&mut self.mask);
        mask.compute(topo, state);
        let outcome = self.route_with_mask(pool, topo, state, &mask, matrix, loads);
        self.mask = mask;
        outcome
    }

    /// [`route`](Self::route) with a precomputed usable-circuit mask
    /// (which must match `state`).
    pub fn route_with_mask(
        &mut self,
        pool: &WorkerPool,
        topo: &Topology,
        state: &NetState,
        mask: &UsableMask,
        matrix: &DemandMatrix,
        loads: &mut LoadMap,
    ) -> RouteOutcome {
        let mut outcome = RouteOutcome::new();
        self.route_with_mask_into(pool, topo, state, mask, matrix, loads, &mut outcome);
        outcome
    }

    /// [`route_with_mask`](Self::route_with_mask) writing into a caller-held
    /// `outcome` buffer (cleared first), so long-lived checkers reuse one
    /// unreachable-list allocation across evaluations.
    #[allow(clippy::too_many_arguments)]
    pub fn route_with_mask_into(
        &mut self,
        pool: &WorkerPool,
        topo: &Topology,
        state: &NetState,
        mask: &UsableMask,
        matrix: &DemandMatrix,
        loads: &mut LoadMap,
        outcome: &mut RouteOutcome,
    ) {
        let started = Instant::now();
        self.metrics.routes.inc();
        self.metrics.demands.add(matrix.len() as u64);
        debug_assert_eq!(self.engines[0].csr().num_switches(), topo.num_switches());
        let groups: Vec<_> = matrix.by_destination().into_iter().collect();
        // One lane, a single-core machine, or too few groups to amortize
        // pool dispatch: route sequentially on the calling thread, skipping
        // the edit-list indirection entirely. Identical arithmetic either
        // way.
        if pool.lanes() == 1
            || klotski_parallel::default_lanes() == 1
            || groups.len() < SEQ_BREAK_EVEN_GROUPS
        {
            outcome.clear();
            let mut sink = DirectSink { loads, outcome };
            for (dst, group) in &groups {
                self.engines[0].route_group(state, mask, *dst, group, &mut sink);
            }
            self.metrics.route_seconds.record(started.elapsed());
            return;
        }

        // Adaptive chunk count: full `lanes × CHUNKS_PER_LANE`
        // oversubscription only when every chunk still gets at least
        // MIN_GROUPS_PER_CHUNK groups; otherwise fewer, larger chunks
        // (never fewer than one per lane).
        let max_chunks = pool.lanes() * CHUNKS_PER_LANE;
        let target = (groups.len() / MIN_GROUPS_PER_CHUNK).clamp(pool.lanes(), max_chunks);
        let ranges = chunk_ranges(groups.len(), target);
        if self.engines.len() < pool.lanes() {
            let csr = self.engines[0].csr().clone();
            let policy = self.policy;
            self.engines
                .resize_with(pool.lanes(), || EcmpRouter::from_csr(csr.clone(), policy));
        }
        if self.chunks.len() < ranges.len() {
            self.chunks.resize_with(ranges.len(), ChunkBuf::default);
        }
        let chunks = &mut self.chunks[..ranges.len()];
        for c in chunks.iter_mut() {
            c.clear();
        }

        pool.run_scratch_tasks_into(&mut self.engines, chunks, |engine, task, buf| {
            for (dst, group) in &groups[ranges[task].clone()] {
                engine.route_group(state, mask, *dst, group, buf);
            }
        });

        // Replay in chunk order: this is the exact operation sequence a
        // sequential run would have applied.
        outcome.clear();
        for buf in chunks.iter() {
            for &(slot, gbps) in &buf.edits {
                loads.add_slot(slot, gbps);
            }
            for &term in &buf.routed_terms {
                outcome.routed_gbps += term;
            }
            outcome.unreachable.extend_from_slice(&buf.unreachable);
        }
        self.metrics.route_seconds.record(started.elapsed());
    }
}

/// Convenience: route `matrix` with a fresh pool of `threads` lanes.
/// `threads == 1` is exactly the sequential [`EcmpRouter::route`] path.
pub fn route_parallel(
    topo: &Topology,
    state: &NetState,
    matrix: &DemandMatrix,
    loads: &mut LoadMap,
    policy: SplitPolicy,
    threads: usize,
) -> RouteOutcome {
    let pool = WorkerPool::new(threads);
    let mut router = ParallelRouter::new(topo, pool.lanes(), policy);
    router.route(&pool, topo, state, matrix, loads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_topology::presets::{self, PresetId};
    use klotski_traffic::{generate, DemandGenConfig};

    fn preset_world() -> (Topology, NetState, DemandMatrix) {
        let p = presets::build(PresetId::A);
        let t = p.topology;
        let mut state = NetState::all_up(&t);
        for s in p.handles.hgrid_v2_switches() {
            state.drain_switch(&t, s);
        }
        let demands = generate(&t, &DemandGenConfig::default());
        (t, state, demands)
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let (t, state, demands) = preset_world();
        let mut seq_loads = LoadMap::new(&t);
        let mut router = EcmpRouter::new(&t);
        let seq = router.route(&t, &state, &demands, &mut seq_loads);
        for threads in [1, 2, 4] {
            let mut loads = LoadMap::new(&t);
            let out = route_parallel(&t, &state, &demands, &mut loads, SplitPolicy::Ecmp, threads);
            assert_eq!(out, seq, "outcome with {threads} threads");
            assert_eq!(loads, seq_loads, "loads with {threads} threads");
            assert_eq!(
                out.routed_gbps.to_bits(),
                seq.routed_gbps.to_bits(),
                "routed_gbps bits with {threads} threads"
            );
        }
    }

    #[test]
    fn wcmp_parallel_matches_sequential() {
        let (t, state, demands) = preset_world();
        let mut seq_loads = LoadMap::new(&t);
        let mut router = EcmpRouter::with_policy(&t, SplitPolicy::Wcmp);
        let seq = router.route(&t, &state, &demands, &mut seq_loads);
        let mut loads = LoadMap::new(&t);
        let out = route_parallel(&t, &state, &demands, &mut loads, SplitPolicy::Wcmp, 3);
        assert_eq!(out, seq);
        assert_eq!(loads, seq_loads);
    }

    #[test]
    fn router_is_reusable_across_states() {
        let (t, state, demands) = preset_world();
        let pool = WorkerPool::new(2);
        let mut pr = ParallelRouter::new(&t, pool.lanes(), SplitPolicy::Ecmp);
        let mut a = LoadMap::new(&t);
        let first = pr.route(&pool, &t, &state, &demands, &mut a);
        let mut b = LoadMap::new(&t);
        let second = pr.route(&pool, &t, &state, &demands, &mut b);
        assert_eq!(first, second, "no scratch leakage between routes");
        assert_eq!(a, b);
    }

    #[test]
    fn below_break_even_fallback_is_bit_identical() {
        // A matrix with fewer destination groups than SEQ_BREAK_EVEN_GROUPS
        // takes the sequential fallback even on a multi-lane pool; results
        // must still match the sequential router bit for bit.
        let (t, state, demands) = preset_world();
        let few: DemandMatrix = {
            let dsts: Vec<_> = demands.by_destination().into_keys().take(3).collect();
            demands
                .iter()
                .filter(|d| dsts.contains(&d.dst))
                .cloned()
                .collect()
        };
        assert!(few.num_destinations() < SEQ_BREAK_EVEN_GROUPS);
        let mut seq_loads = LoadMap::new(&t);
        let seq = EcmpRouter::new(&t).route(&t, &state, &few, &mut seq_loads);
        let mut loads = LoadMap::new(&t);
        let out = route_parallel(&t, &state, &few, &mut loads, SplitPolicy::Ecmp, 4);
        assert_eq!(out, seq);
        assert_eq!(loads, seq_loads);
        assert_eq!(out.routed_gbps.to_bits(), seq.routed_gbps.to_bits());
    }

    #[test]
    fn unreachable_demands_survive_the_merge() {
        let (t, mut state, demands) = preset_world();
        // Knock out every circuit: everything becomes unreachable.
        for i in 0..t.num_circuits() {
            state.set_circuit(klotski_topology::CircuitId::from_index(i), false);
        }
        let mut seq_loads = LoadMap::new(&t);
        let seq = EcmpRouter::new(&t).route(&t, &state, &demands, &mut seq_loads);
        let mut loads = LoadMap::new(&t);
        let out = route_parallel(&t, &state, &demands, &mut loads, SplitPolicy::Ecmp, 4);
        assert_eq!(out.unreachable, seq.unreachable, "same pairs, same order");
        assert_eq!(out.routed_gbps, 0.0);
    }
}
