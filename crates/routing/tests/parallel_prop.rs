//! Property tests for the parallel routing path: for any demand matrix,
//! any degraded network state, and any thread count, `route_parallel`
//! must produce *exactly* the sequential result — same unreachable pairs
//! in the same order, bit-identical routed volume, and float-for-float
//! equal circuit loads (the merge replays the sequential operation order,
//! so there is no tolerance to hide behind).

use klotski_routing::{route_parallel, EcmpRouter, LoadMap, SplitPolicy};
use klotski_topology::presets::{self, PresetId};
use klotski_topology::{CircuitId, NetState, Topology};
use klotski_traffic::{generate, DemandGenConfig, DemandMatrix};
use proptest::prelude::*;

/// Builds preset A with `down` circuits knocked out pseudo-randomly and a
/// demand matrix drawn from `seed`.
fn world(seed: u64, down: usize, drain_v2: bool) -> (Topology, NetState, DemandMatrix) {
    let p = presets::build(PresetId::A);
    let t = p.topology;
    let mut state = NetState::all_up(&t);
    if drain_v2 {
        for s in p.handles.hgrid_v2_switches() {
            state.drain_switch(&t, s);
        }
    }
    // Deterministic circuit knockout derived from the seed (splitmix-style
    // mixing; the property must hold for arbitrary degradation patterns).
    let mut x = seed | 1;
    for _ in 0..down {
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31);
        let idx = (x % t.num_circuits() as u64) as usize;
        state.set_circuit(CircuitId::from_index(idx), false);
    }
    let cfg = DemandGenConfig {
        seed,
        ..DemandGenConfig::default()
    };
    let demands = generate(&t, &cfg);
    (t, state, demands)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ECMP: parallel loads equal sequential loads exactly, at 1, 2, and 4
    /// threads.
    #[test]
    fn prop_parallel_ecmp_loads_are_exact(
        seed in 0u64..1_000_000,
        down in 0usize..40,
        drain_v2 in proptest::bool::ANY,
    ) {
        let (t, state, demands) = world(seed, down, drain_v2);
        let mut seq_loads = LoadMap::new(&t);
        let seq = EcmpRouter::new(&t).route(&t, &state, &demands, &mut seq_loads);
        for threads in [1usize, 2, 4] {
            let mut loads = LoadMap::new(&t);
            let out = route_parallel(&t, &state, &demands, &mut loads, SplitPolicy::Ecmp, threads);
            prop_assert_eq!(&out, &seq, "outcome with {} threads", threads);
            prop_assert_eq!(
                out.routed_gbps.to_bits(),
                seq.routed_gbps.to_bits(),
                "routed bits with {} threads", threads
            );
            prop_assert_eq!(&loads, &seq_loads, "loads with {} threads", threads);
        }
    }

    /// WCMP: same exactness property under weighted splitting.
    #[test]
    fn prop_parallel_wcmp_loads_are_exact(
        seed in 0u64..1_000_000,
        down in 0usize..40,
    ) {
        let (t, state, demands) = world(seed, down, true);
        let mut seq_loads = LoadMap::new(&t);
        let seq = EcmpRouter::with_policy(&t, SplitPolicy::Wcmp)
            .route(&t, &state, &demands, &mut seq_loads);
        for threads in [2usize, 4] {
            let mut loads = LoadMap::new(&t);
            let out = route_parallel(&t, &state, &demands, &mut loads, SplitPolicy::Wcmp, threads);
            prop_assert_eq!(&out, &seq, "outcome with {} threads", threads);
            prop_assert_eq!(&loads, &seq_loads, "loads with {} threads", threads);
        }
    }
}
