//! Request/response schema types for the `klotski-service` planning daemon.
//!
//! The service speaks NPD on the wire: a `POST /v1/plan` body *is* an
//! [`Npd`] document (the same JSON `klotski export` writes), and the plan
//! response *is* the plan-attached NPD document (the same bytes
//! `klotski plan -o` writes). This module adds the envelope types around
//! that exchange — per-request options, job status for async polling, the
//! audit response — plus the content digest that keys the service's shared
//! plan cache.
//!
//! Digests are FNV-1a over the *canonical* (compact, field-ordered) JSON
//! encoding, so two structurally identical documents share a cache entry no
//! matter how their JSON was formatted on the wire.

use crate::schema::Npd;
use klotski_core::report::PlanAudit;
use klotski_core::{EnsembleMatrixStat, EnsembleSpec};
use serde::{Deserialize, Serialize};

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Content digest of an NPD document: FNV-1a over its canonical JSON.
/// Attached phases are part of the digest, so a plan-carrying document and
/// its bare topology hash differently (replanning a shipped document is a
/// distinct cache entry).
pub fn npd_digest(npd: &Npd) -> u64 {
    let canonical = serde_json::to_string(npd).expect("NPD serializes");
    fnv1a(canonical.as_bytes())
}

/// Renders a digest the way the service prints it (16 hex digits).
pub fn digest_hex(digest: u64) -> String {
    format!("{digest:016x}")
}

/// Per-request planning options. Every field is optional; an absent field
/// means "the CLI default", which is what keeps a default service request
/// byte-identical to `klotski plan`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PlanRequestOptions {
    /// Utilization bound θ override (Eq. 5; default 0.75).
    #[serde(default)]
    pub theta: Option<f64>,
    /// Cost-model α override (Eq. 9; default 0).
    #[serde(default)]
    pub alpha: Option<f64>,
    /// Planner selection: `"astar"` (default) or `"dp"`.
    #[serde(default)]
    pub planner: Option<String>,
    /// Per-request deadline in milliseconds; the search is cooperatively
    /// cancelled once it expires. Defaults to the service-wide deadline.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Delta-aware incremental satisfiability toggle (default on). Results
    /// are bit-identical either way; this only trades evaluation speed.
    #[serde(default)]
    pub incremental: Option<bool>,
    /// Entry cap for the evaluated-state cache (FIFO eviction beyond it).
    #[serde(default)]
    pub esc_cache_cap: Option<usize>,
    /// Traffic-ensemble specification: plan so every checked state is safe
    /// under all K realized matrices (base forecast + EWMA/surge variants).
    /// Absent means single-matrix planning, exactly as before.
    #[serde(default)]
    pub ensemble: Option<EnsembleSpec>,
}

impl PlanRequestOptions {
    /// Digest of the *plan-affecting* options. `deadline_ms` is excluded:
    /// it bounds how long the service may search, never which plan a
    /// finished search returns, so requests differing only in deadline
    /// share a cache entry. `incremental` and `esc_cache_cap` are excluded
    /// for the same reason: both are evaluation-speed knobs whose verdicts
    /// (and hence plans) are bit-identical across settings.
    pub fn digest(&self) -> u64 {
        let mut canonical = format!(
            "theta={:?};alpha={:?};planner={:?}",
            self.theta, self.alpha, self.planner
        );
        // Appended only when present, so pre-ensemble requests keep their
        // historical digests (and cache entries) unchanged.
        if let Some(ens) = &self.ensemble {
            canonical.push_str(&format!(
                ";ensemble=k{}@{};alphas={:?};surge={:?}",
                ens.k, ens.seed, ens.ewma_alphas, ens.surge_factor
            ));
        }
        fnv1a(canonical.as_bytes())
    }
}

/// Summary of one completed planning job, returned by job polling and in
/// the `X-Klotski-*` response headers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSummary {
    /// Migration instance name (topology + migration type).
    pub name: String,
    /// Hex content digest of the input NPD.
    pub npd_digest: String,
    /// Hex digest of the plan-affecting options.
    pub options_digest: String,
    /// Planner that produced the plan ("klotski-a*" / "klotski-dp").
    pub planner: String,
    /// Plan cost under the configured cost model.
    pub cost: f64,
    /// Number of phases in the plan.
    pub phases: usize,
    /// Number of block-level steps.
    pub steps: usize,
    /// Search states visited.
    pub states_visited: u64,
    /// Successor states generated.
    #[serde(default)]
    pub states_generated: u64,
    /// Candidates rejected by the satisfiability check.
    #[serde(default)]
    pub states_pruned: u64,
    /// Candidates dropped as stale or non-improving duplicates.
    #[serde(default)]
    pub states_deduped: u64,
    /// Satisfiability queries issued.
    pub sat_checks: u64,
    /// Queries served from the ESC cache.
    #[serde(default)]
    pub cache_hits: u64,
    /// Queries that ran the full evaluation.
    #[serde(default)]
    pub full_evaluations: u64,
    /// Destinations replayed from the incremental routing cache.
    #[serde(default)]
    pub incremental_clean: u64,
    /// Destinations re-routed because a circuit toggle touched them.
    #[serde(default)]
    pub incremental_dirty: u64,
    /// Entries resident in the ESC cache when the search finished.
    #[serde(default)]
    pub esc_entries: u64,
    /// Estimated ESC cache footprint in bytes when the search finished.
    #[serde(default)]
    pub esc_bytes: u64,
    /// Wall-clock spent inside satisfiability checks, milliseconds.
    #[serde(default)]
    pub satcheck_ms: u64,
    /// Planning wall-clock, milliseconds.
    pub planning_ms: u64,
    /// Traffic-ensemble size K (0 when the request had no ensemble).
    #[serde(default)]
    pub ensemble_matrices: u64,
    /// Total per-matrix evaluations across all full evaluations.
    #[serde(default)]
    pub ensemble_matrix_checks: u64,
    /// Full evaluations short-circuited by a failing ensemble matrix.
    #[serde(default)]
    pub ensemble_short_circuits: u64,
    /// Per-matrix ensemble detail (label, checks, kills, wall time), in
    /// matrix index order; empty for single-matrix requests.
    #[serde(default)]
    pub ensemble: Vec<EnsembleMatrixStat>,
    /// True when the response was served from the shared plan cache.
    #[serde(default)]
    pub cached: bool,
}

/// Lifecycle state of an asynchronous planning job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Accepted, waiting in the bounded queue.
    Queued,
    /// A worker is planning it.
    Running,
    /// Finished; the result is available at `/v1/jobs/{id}/result`.
    Done,
    /// Planning failed (infeasible, invalid, or budget-exceeded).
    Failed,
}

/// `GET /v1/jobs/{id}` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatusResponse {
    /// Job identifier (decimal).
    pub id: String,
    /// Request kind: `"plan"` or `"audit"`.
    pub kind: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Failure message, present when `state == Failed`.
    #[serde(default)]
    pub error: Option<String>,
    /// Result summary, present when `state == Done`.
    #[serde(default)]
    pub summary: Option<PlanSummary>,
}

/// `202 Accepted` body for `?wait=0` submissions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceptedResponse {
    /// Poll `GET /v1/jobs/{job}` for progress.
    pub job: String,
}

/// Error envelope for every non-2xx JSON response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Human-readable cause.
    pub error: String,
}

impl ErrorResponse {
    /// Builds an error envelope.
    pub fn new(error: impl Into<String>) -> Self {
        Self {
            error: error.into(),
        }
    }
}

/// `POST /v1/audit` response body: the plan summary plus the per-phase
/// safety audit the CLI prints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditResponse {
    /// Plan summary.
    pub summary: PlanSummary,
    /// Per-phase safety timeline.
    pub audit: PlanAudit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::region_to_npd;
    use klotski_topology::presets::{self, PresetId};

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn npd_digest_is_format_insensitive() {
        let npd = region_to_npd(&presets::config(PresetId::A));
        let pretty = npd.to_json_pretty().unwrap();
        let reparsed = Npd::from_json(&pretty).unwrap();
        assert_eq!(npd_digest(&npd), npd_digest(&reparsed));
    }

    #[test]
    fn npd_digest_distinguishes_documents() {
        let a = region_to_npd(&presets::config(PresetId::A));
        let b = region_to_npd(&presets::config(PresetId::B));
        assert_ne!(npd_digest(&a), npd_digest(&b));
        let mut renamed = a.clone();
        renamed.name.push('!');
        assert_ne!(npd_digest(&a), npd_digest(&renamed));
    }

    #[test]
    fn options_digest_ignores_deadline_only() {
        let base = PlanRequestOptions::default();
        let with_deadline = PlanRequestOptions {
            deadline_ms: Some(5_000),
            ..base.clone()
        };
        assert_eq!(base.digest(), with_deadline.digest());
        let with_speed_knobs = PlanRequestOptions {
            incremental: Some(false),
            esc_cache_cap: Some(64),
            ..base.clone()
        };
        assert_eq!(
            base.digest(),
            with_speed_knobs.digest(),
            "speed knobs never change the plan, so they share a cache entry"
        );
        let with_theta = PlanRequestOptions {
            theta: Some(0.8),
            ..base.clone()
        };
        assert_ne!(base.digest(), with_theta.digest());
        let with_planner = PlanRequestOptions {
            planner: Some("dp".into()),
            ..base
        };
        assert_ne!(
            PlanRequestOptions::default().digest(),
            with_planner.digest()
        );
    }

    #[test]
    fn options_digest_distinguishes_ensembles() {
        let base = PlanRequestOptions::default();
        let k4 = PlanRequestOptions {
            ensemble: Some(EnsembleSpec::with_k(4, 7)),
            ..base.clone()
        };
        assert_ne!(base.digest(), k4.digest());
        let k4_other_seed = PlanRequestOptions {
            ensemble: Some(EnsembleSpec::with_k(4, 8)),
            ..base
        };
        assert_ne!(
            k4.digest(),
            k4_other_seed.digest(),
            "the seed changes the realized matrices, so it must key the cache"
        );
    }

    #[test]
    fn job_status_roundtrips_through_json() {
        let status = JobStatusResponse {
            id: "17".into(),
            kind: "plan".into(),
            state: JobState::Done,
            error: None,
            summary: Some(PlanSummary {
                name: "preset-a/hgrid-v1v2".into(),
                npd_digest: digest_hex(0xdead_beef),
                options_digest: digest_hex(7),
                planner: "klotski-a*".into(),
                cost: 4.0,
                phases: 4,
                steps: 12,
                states_visited: 99,
                states_generated: 150,
                states_pruned: 30,
                states_deduped: 21,
                sat_checks: 200,
                cache_hits: 120,
                full_evaluations: 80,
                incremental_clean: 60,
                incremental_dirty: 20,
                esc_entries: 80,
                esc_bytes: 2_048,
                satcheck_ms: 6,
                planning_ms: 12,
                ensemble_matrices: 2,
                ensemble_matrix_checks: 130,
                ensemble_short_circuits: 25,
                ensemble: vec![EnsembleMatrixStat {
                    label: "base".into(),
                    checks: 80,
                    kills: 20,
                    wall_ns: 5_000,
                }],
                cached: false,
            }),
        };
        let json = serde_json::to_string(&status).unwrap();
        let back: JobStatusResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, status);
    }

    #[test]
    fn error_and_accepted_envelopes_serialize() {
        let err = serde_json::to_string(&ErrorResponse::new("queue full")).unwrap();
        assert!(err.contains("queue full"));
        let acc = serde_json::to_string(&AcceptedResponse { job: "3".into() }).unwrap();
        assert!(acc.contains("\"job\""));
    }
}
