//! # klotski-npd
//!
//! The Network Product Definition (NPD) interchange format (§5 of the
//! paper): "NPD is a generic data structure used at Meta to define
//! high-level properties of network topologies. NPD divides DCNs into six
//! parts and describes them separately for scalability. These six parts are
//! Fabric, HGRID, MA, EB, DR, and BB. In each part, it records the switches
//! based on their roles and positions, and the way these switches are
//! interconnected. Besides, NPD also contains information about migration
//! phases and hardware."
//!
//! This crate provides the serde data model ([`schema::Npd`]), JSON
//! (de)serialization, and the conversion in both directions between NPD
//! documents and buildable region topologies — the interface through which
//! an EDP-Lite-style pipeline would drive the planner.
//!
//! ```
//! use klotski_npd::{schema::Npd, convert};
//! use klotski_topology::presets::{self, PresetId};
//!
//! // Export a preset region to NPD, round-trip through JSON, rebuild.
//! let preset = presets::build(PresetId::A);
//! let npd = convert::region_to_npd(&preset.config);
//! let json = npd.to_json_pretty().unwrap();
//! let back = Npd::from_json(&json).unwrap();
//! let (topo, _) = convert::npd_to_topology(&back).unwrap();
//! assert_eq!(topo.num_switches(), preset.topology.num_switches());
//! ```

pub mod api;
pub mod convert;
pub mod error;
pub mod schema;

pub use api::{npd_digest, PlanRequestOptions, PlanSummary};
pub use convert::{npd_to_topology, region_to_npd};
pub use error::NpdError;
pub use schema::Npd;
