//! NPD conversion errors.

use std::fmt;

/// Errors converting an NPD document into a buildable topology.
#[derive(Debug, Clone, PartialEq)]
pub enum NpdError {
    /// Unsupported format version.
    Version { found: u32, supported: u32 },
    /// The document has no fabric buildings.
    NoBuildings,
    /// The HGRID part has no layers.
    NoHgridLayers,
    /// An unknown meshing-pattern label.
    UnknownMesh(String),
    /// More than one layer claims the same generation.
    DuplicateGeneration(u8),
    /// A part references a hardware key missing from the catalog.
    UnknownHardware(String),
}

impl fmt::Display for NpdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NpdError::Version { found, supported } => {
                write!(
                    f,
                    "unsupported NPD version {found} (supported: {supported})"
                )
            }
            NpdError::NoBuildings => write!(f, "NPD fabric part has no buildings"),
            NpdError::NoHgridLayers => write!(f, "NPD hgrid part has no layers"),
            NpdError::UnknownMesh(m) => write!(f, "unknown mesh pattern {m:?}"),
            NpdError::DuplicateGeneration(g) => {
                write!(f, "duplicate HGRID generation v{g}")
            }
            NpdError::UnknownHardware(k) => write!(f, "unknown hardware key {k:?}"),
        }
    }
}

impl std::error::Error for NpdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(NpdError::UnknownMesh("star".into())
            .to_string()
            .contains("star"));
        assert!(NpdError::Version {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains('9'));
    }
}
