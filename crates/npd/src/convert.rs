//! Conversion between NPD documents and buildable region topologies.
//!
//! The EDP-Lite pipeline "takes NPD-format original/target topologies and
//! demand information as inputs ... converts them into topologies and
//! passes the topologies to Klotski" (§5). [`npd_to_topology`] is that
//! conversion; [`region_to_npd`] is the reverse export, and
//! [`attach_plan`] writes a computed plan back into the document as ordered
//! migration phases.

use crate::error::NpdError;
use crate::schema::{
    BbPart, DrPart, EbPart, FabricBuilding, FabricPart, HardwareSpec, HgridLayer, HgridPart,
    MaPart, MigrationPhase, Npd,
};
use klotski_core::{MigrationPlan, MigrationSpec};
use klotski_topology::{
    fabric::FabricConfig,
    hgrid::{HgridConfig, MeshPattern},
    ma::{BackboneConfig, MaConfig},
    region::{build_region, RegionConfig, RegionHandles},
    Generation, Topology,
};

/// Default hardware catalog used by exports.
fn default_catalog() -> Vec<HardwareSpec> {
    [
        ("rsw-std", "Wedge-100S", 64u16),
        ("fsw-std", "Minipack-F", 128),
        ("ssw-std", "Minipack-S", 256),
        ("fa-unit", "Grid-Unit", 512),
        ("ma-unit", "DMAG-Unit", 512),
        ("eb-std", "Border-8", 512),
        ("dr-std", "DR-Core", 512),
        ("ebb-std", "EBB-Core", 512),
    ]
    .into_iter()
    .map(|(key, model, ports)| HardwareSpec {
        key: key.into(),
        model: model.into(),
        ports,
    })
    .collect()
}

fn mesh_label(mesh: MeshPattern) -> &'static str {
    match mesh {
        MeshPattern::PlaneAligned => "plane-aligned",
        MeshPattern::Spread => "spread",
    }
}

fn parse_mesh(label: &str) -> Result<MeshPattern, NpdError> {
    match label {
        "plane-aligned" => Ok(MeshPattern::PlaneAligned),
        "spread" => Ok(MeshPattern::Spread),
        other => Err(NpdError::UnknownMesh(other.to_string())),
    }
}

/// Exports a region configuration as an NPD document.
pub fn region_to_npd(cfg: &RegionConfig) -> Npd {
    let buildings = cfg
        .dcs
        .iter()
        .enumerate()
        .map(|(i, fc)| FabricBuilding {
            building: i as u16,
            pods: fc.pods,
            rsws_per_pod: fc.rsws_per_pod,
            planes: fc.planes,
            ssws_per_plane: fc.ssws_per_plane,
            rsw_fsw_gbps: fc.rsw_fsw_gbps,
            fsw_ssw_gbps: fc.fsw_ssw_gbps,
            rsw_hardware: "rsw-std".into(),
            fsw_hardware: "fsw-std".into(),
            ssw_hardware: "ssw-std".into(),
        })
        .collect();

    let layer = |hc: &HgridConfig| HgridLayer {
        generation: hc.generation.0,
        grids: hc.grids,
        fadus_per_grid: hc.fadus_per_grid,
        fauus_per_grid: hc.fauus_per_grid,
        mesh: mesh_label(hc.mesh).to_string(),
        ssw_fadu_gbps: hc.ssw_fadu_gbps,
        fadu_fauu_gbps: hc.fadu_fauu_gbps,
        uplinks_per_ssw: hc.uplinks_per_ssw,
        hardware: "fa-unit".into(),
    };
    let mut layers = vec![layer(&cfg.hgrid_v1)];
    if let Some(v2) = &cfg.hgrid_v2 {
        layers.push(layer(v2));
    }

    let ma = match &cfg.dmag {
        Some(mc) => MaPart {
            mas: mc.mas,
            ebs_per_ma: mc.ebs_per_ma,
            fauu_ma_gbps: mc.fauu_ma_gbps,
            ma_eb_gbps: mc.ma_eb_gbps,
            hardware: "ma-unit".into(),
        },
        None => MaPart::default(),
    };

    Npd {
        version: Npd::VERSION,
        name: cfg.name.clone(),
        fabric: FabricPart { buildings },
        hgrid: HgridPart { layers },
        ma,
        eb: EbPart {
            ebs: cfg.backbone.ebs,
            fauu_eb_gbps: cfg.backbone.fauu_eb_gbps,
            hardware: "eb-std".into(),
        },
        dr: DrPart {
            drs: cfg.backbone.drs,
            eb_dr_gbps: cfg.backbone.eb_dr_gbps,
            hardware: "dr-std".into(),
        },
        bb: BbPart {
            ebbs: cfg.backbone.ebbs,
            dr_ebb_gbps: cfg.backbone.dr_ebb_gbps,
            hardware: "ebb-std".into(),
        },
        hardware: default_catalog(),
        phases: Vec::new(),
    }
}

/// Converts an NPD document back into a region configuration.
pub fn npd_to_region(npd: &Npd) -> Result<RegionConfig, NpdError> {
    if npd.version != Npd::VERSION {
        return Err(NpdError::Version {
            found: npd.version,
            supported: Npd::VERSION,
        });
    }
    if npd.fabric.buildings.is_empty() {
        return Err(NpdError::NoBuildings);
    }
    if npd.hgrid.layers.is_empty() {
        return Err(NpdError::NoHgridLayers);
    }
    // Hardware references must resolve.
    let catalog: std::collections::HashSet<&str> =
        npd.hardware.iter().map(|h| h.key.as_str()).collect();
    let check_hw = |key: &str| -> Result<(), NpdError> {
        if catalog.contains(key) {
            Ok(())
        } else {
            Err(NpdError::UnknownHardware(key.to_string()))
        }
    };
    for b in &npd.fabric.buildings {
        check_hw(&b.rsw_hardware)?;
        check_hw(&b.fsw_hardware)?;
        check_hw(&b.ssw_hardware)?;
    }

    let hw_ports = |key: &str, fallback: u16| -> u16 {
        npd.hardware
            .iter()
            .find(|h| h.key == key)
            .map(|h| h.ports)
            .unwrap_or(fallback)
    };

    let dcs = npd
        .fabric
        .buildings
        .iter()
        .map(|b| FabricConfig {
            pods: b.pods,
            rsws_per_pod: b.rsws_per_pod,
            planes: b.planes,
            ssws_per_plane: b.ssws_per_plane,
            rsw_fsw_gbps: b.rsw_fsw_gbps,
            fsw_ssw_gbps: b.fsw_ssw_gbps,
            rsw_ports: hw_ports(&b.rsw_hardware, 64),
            fsw_ports: hw_ports(&b.fsw_hardware, 128),
            ssw_ports: hw_ports(&b.ssw_hardware, 256),
            ssw_generation: Generation::V1,
        })
        .collect();

    let mut hgrid_v1 = None;
    let mut hgrid_v2 = None;
    for layer in &npd.hgrid.layers {
        let cfg = HgridConfig {
            grids: layer.grids,
            fadus_per_grid: layer.fadus_per_grid,
            fauus_per_grid: layer.fauus_per_grid,
            generation: Generation(layer.generation),
            mesh: parse_mesh(&layer.mesh)?,
            ssw_fadu_gbps: layer.ssw_fadu_gbps,
            fadu_fauu_gbps: layer.fadu_fauu_gbps,
            uplinks_per_ssw: layer.uplinks_per_ssw,
            fadu_ports: hw_ports(&layer.hardware, 512),
            fauu_ports: hw_ports(&layer.hardware, 512),
        };
        let slot = if layer.generation == 1 {
            &mut hgrid_v1
        } else {
            &mut hgrid_v2
        };
        if slot.is_some() {
            return Err(NpdError::DuplicateGeneration(layer.generation));
        }
        *slot = Some(cfg);
    }
    let hgrid_v1 = hgrid_v1.ok_or(NpdError::NoHgridLayers)?;

    let dmag = (npd.ma.mas > 0).then(|| MaConfig {
        mas: npd.ma.mas,
        ebs_per_ma: npd.ma.ebs_per_ma,
        fauu_ma_gbps: npd.ma.fauu_ma_gbps,
        ma_eb_gbps: npd.ma.ma_eb_gbps,
        ma_ports: hw_ports(&npd.ma.hardware, 512),
    });

    Ok(RegionConfig {
        name: npd.name.clone(),
        dcs,
        hgrid_v1,
        hgrid_v2,
        backbone: BackboneConfig {
            ebs: npd.eb.ebs,
            drs: npd.dr.drs,
            ebbs: npd.bb.ebbs,
            fauu_eb_gbps: npd.eb.fauu_eb_gbps,
            eb_dr_gbps: npd.dr.eb_dr_gbps,
            dr_ebb_gbps: npd.bb.dr_ebb_gbps,
            eb_ports: hw_ports(&npd.eb.hardware, 512),
            dr_ports: hw_ports(&npd.dr.hardware, 512),
            ebb_ports: hw_ports(&npd.bb.hardware, 512),
        },
        dmag,
        ssw_forklift_dcs: vec![],
    })
}

/// Builds a topology from an NPD document.
pub fn npd_to_topology(npd: &Npd) -> Result<(Topology, RegionHandles), NpdError> {
    let cfg = npd_to_region(npd)?;
    Ok(build_region(&cfg))
}

/// Writes a computed migration plan into the document as ordered phases
/// ("Klotski returns an ordered list of topology phases", §5).
pub fn attach_plan(npd: &mut Npd, spec: &MigrationSpec, plan: &MigrationPlan) {
    npd.phases = plan
        .phases()
        .iter()
        .enumerate()
        .map(|(i, phase)| MigrationPhase {
            index: i + 1,
            action: spec.actions.kind(phase.kind).to_string(),
            blocks: phase
                .blocks
                .iter()
                .map(|&b| spec.blocks[b.index()].label.clone())
                .collect(),
            switch_ops: phase
                .blocks
                .iter()
                .map(|&b| spec.blocks[b.index()].action_weight())
                .sum(),
        })
        .collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_core::migration::{MigrationBuilder, MigrationOptions};
    use klotski_core::planner::{AStarPlanner, Planner};
    use klotski_topology::presets::{self, PresetId};

    #[test]
    fn region_roundtrips_through_npd() {
        for id in [PresetId::A, PresetId::B] {
            let cfg = presets::config(id);
            let npd = region_to_npd(&cfg);
            let back = npd_to_region(&npd).unwrap();
            assert_eq!(back.dcs, cfg.dcs, "{id}");
            assert_eq!(back.hgrid_v1.grids, cfg.hgrid_v1.grids);
            assert_eq!(
                back.hgrid_v2.as_ref().map(|h| h.fadus_per_grid),
                cfg.hgrid_v2.as_ref().map(|h| h.fadus_per_grid)
            );
            assert_eq!(back.backbone.ebs, cfg.backbone.ebs);
        }
    }

    #[test]
    fn rebuilt_topology_matches_preset_size() {
        let preset = presets::build(PresetId::A);
        let npd = region_to_npd(&preset.config);
        let (topo, handles) = npd_to_topology(&npd).unwrap();
        assert_eq!(topo.num_switches(), preset.topology.num_switches());
        assert_eq!(topo.num_circuits(), preset.topology.num_circuits());
        assert_eq!(
            handles.hgrid_v2_switches().len(),
            preset.handles.hgrid_v2_switches().len()
        );
    }

    #[test]
    fn dmag_region_roundtrips() {
        let cfg = presets::config(PresetId::EDmag);
        let npd = region_to_npd(&cfg);
        assert!(npd.ma.mas > 0);
        let back = npd_to_region(&npd).unwrap();
        assert_eq!(
            back.dmag.as_ref().map(|m| m.mas),
            cfg.dmag.as_ref().map(|m| m.mas)
        );
    }

    #[test]
    fn bad_version_rejected() {
        let mut npd = region_to_npd(&presets::config(PresetId::A));
        npd.version = 99;
        assert!(matches!(
            npd_to_region(&npd),
            Err(NpdError::Version { found: 99, .. })
        ));
    }

    #[test]
    fn unknown_mesh_rejected() {
        let mut npd = region_to_npd(&presets::config(PresetId::A));
        npd.hgrid.layers[0].mesh = "star".into();
        assert!(matches!(npd_to_region(&npd), Err(NpdError::UnknownMesh(_))));
    }

    #[test]
    fn unknown_hardware_rejected() {
        let mut npd = region_to_npd(&presets::config(PresetId::A));
        npd.fabric.buildings[0].rsw_hardware = "ghost".into();
        assert!(matches!(
            npd_to_region(&npd),
            Err(NpdError::UnknownHardware(_))
        ));
    }

    #[test]
    fn duplicate_generation_rejected() {
        let mut npd = region_to_npd(&presets::config(PresetId::A));
        let dup = npd.hgrid.layers[0].clone();
        npd.hgrid.layers.push(dup);
        assert!(matches!(
            npd_to_region(&npd),
            Err(NpdError::DuplicateGeneration(1))
        ));
    }

    #[test]
    fn attach_plan_writes_phases() {
        let preset = presets::build(PresetId::A);
        let spec = MigrationBuilder::hgrid_v1_to_v2(&preset, &MigrationOptions::default()).unwrap();
        let plan = AStarPlanner::default().plan(&spec).unwrap().plan;
        let mut npd = region_to_npd(&preset.config);
        attach_plan(&mut npd, &spec, &plan);
        assert_eq!(npd.phases.len(), plan.num_phases());
        assert_eq!(npd.phases[0].index, 1);
        assert!(npd.phases.iter().all(|p| !p.blocks.is_empty()));
        let total_ops: usize = npd.phases.iter().map(|p| p.switch_ops).sum();
        assert_eq!(total_ops, spec.num_switch_actions());
        // Survives JSON.
        let back = Npd::from_json(&npd.to_json_pretty().unwrap()).unwrap();
        assert_eq!(back.phases, npd.phases);
    }
}
