//! The NPD document schema: six parts plus hardware and phases.

use serde::{Deserialize, Serialize};

/// A complete NPD document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Npd {
    /// Format version of this document.
    pub version: u32,
    /// Region/topology name.
    pub name: String,
    /// Part 1: per-building fabrics.
    pub fabric: FabricPart,
    /// Part 2: the FA layer's HGRID generations.
    pub hgrid: HgridPart,
    /// Part 3: metro aggregation (empty before a DMAG migration).
    pub ma: MaPart,
    /// Part 4: EB border routers.
    pub eb: EbPart,
    /// Part 5: DR datacenter routers.
    pub dr: DrPart,
    /// Part 6: backbone attachment.
    pub bb: BbPart,
    /// Hardware catalog referenced by the parts.
    pub hardware: Vec<HardwareSpec>,
    /// Ordered migration phases (populated when a plan is attached).
    #[serde(default)]
    pub phases: Vec<MigrationPhase>,
}

impl Npd {
    /// Current schema version.
    pub const VERSION: u32 = 1;

    /// Serializes to pretty-printed JSON.
    pub fn to_json_pretty(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// One building's fabric description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricBuilding {
    /// Building index within the region.
    pub building: u16,
    pub pods: usize,
    pub rsws_per_pod: usize,
    pub planes: usize,
    pub ssws_per_plane: usize,
    /// Circuit capacities, Gbps.
    pub rsw_fsw_gbps: f64,
    pub fsw_ssw_gbps: f64,
    /// Hardware catalog references by role.
    pub rsw_hardware: String,
    pub fsw_hardware: String,
    pub ssw_hardware: String,
}

/// Part 1: fabrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricPart {
    pub buildings: Vec<FabricBuilding>,
}

/// One HGRID generation layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HgridLayer {
    /// Hardware generation (1 = v1, 2 = v2).
    pub generation: u8,
    pub grids: usize,
    pub fadus_per_grid: usize,
    pub fauus_per_grid: usize,
    /// Downward meshing: "plane-aligned" or "spread".
    pub mesh: String,
    pub ssw_fadu_gbps: f64,
    pub fadu_fauu_gbps: f64,
    /// Spread-mesh uplink multiplicity per SSW slot.
    pub uplinks_per_ssw: usize,
    pub hardware: String,
}

/// Part 2: the FA layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HgridPart {
    /// Coexisting generations (one entry outside migrations, two during
    /// an HGRID v1→v2 migration).
    pub layers: Vec<HgridLayer>,
}

/// Part 3: metro aggregation.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MaPart {
    /// MA switch count; zero when the layer does not exist (yet).
    pub mas: usize,
    /// EBs each MA wires to.
    pub ebs_per_ma: usize,
    pub fauu_ma_gbps: f64,
    pub ma_eb_gbps: f64,
    pub hardware: String,
}

/// Part 4: EB border routers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EbPart {
    pub ebs: usize,
    pub fauu_eb_gbps: f64,
    pub hardware: String,
}

/// Part 5: DR datacenter routers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrPart {
    pub drs: usize,
    pub eb_dr_gbps: f64,
    pub hardware: String,
}

/// Part 6: backbone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BbPart {
    pub ebbs: usize,
    pub dr_ebb_gbps: f64,
    pub hardware: String,
}

/// A hardware catalog entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// Catalog key referenced by the parts (e.g. "rsw-std").
    pub key: String,
    /// Marketing/system name.
    pub model: String,
    /// Physical port count.
    pub ports: u16,
}

/// One migration phase: an ordered step of the output plan ("Klotski
/// returns an ordered list of topology phases", §5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationPhase {
    /// 1-based phase number.
    pub index: usize,
    /// Action type label, e.g. `drain-fa-grid-v1`.
    pub action: String,
    /// Labels of the operation blocks executed in parallel in this phase.
    pub blocks: Vec<String>,
    /// Switch-level operation count.
    pub switch_ops: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Npd {
        Npd {
            version: Npd::VERSION,
            name: "region-x".into(),
            fabric: FabricPart {
                buildings: vec![FabricBuilding {
                    building: 0,
                    pods: 2,
                    rsws_per_pod: 2,
                    planes: 2,
                    ssws_per_plane: 2,
                    rsw_fsw_gbps: 400.0,
                    fsw_ssw_gbps: 800.0,
                    rsw_hardware: "rsw-std".into(),
                    fsw_hardware: "fsw-std".into(),
                    ssw_hardware: "ssw-std".into(),
                }],
            },
            hgrid: HgridPart {
                layers: vec![HgridLayer {
                    generation: 1,
                    grids: 2,
                    fadus_per_grid: 2,
                    fauus_per_grid: 1,
                    mesh: "plane-aligned".into(),
                    ssw_fadu_gbps: 400.0,
                    fadu_fauu_gbps: 400.0,
                    uplinks_per_ssw: 1,
                    hardware: "fa-v1".into(),
                }],
            },
            ma: MaPart::default(),
            eb: EbPart {
                ebs: 2,
                fauu_eb_gbps: 400.0,
                hardware: "eb-std".into(),
            },
            dr: DrPart {
                drs: 1,
                eb_dr_gbps: 3200.0,
                hardware: "dr-std".into(),
            },
            bb: BbPart {
                ebbs: 1,
                dr_ebb_gbps: 6400.0,
                hardware: "ebb-std".into(),
            },
            hardware: vec![HardwareSpec {
                key: "rsw-std".into(),
                model: "Wedge".into(),
                ports: 64,
            }],
            phases: vec![],
        }
    }

    #[test]
    fn json_roundtrip_preserves_document() {
        let npd = sample();
        let json = npd.to_json_pretty().unwrap();
        let back = Npd::from_json(&json).unwrap();
        assert_eq!(back, npd);
    }

    #[test]
    fn phases_default_to_empty() {
        let mut npd = sample();
        npd.phases.clear();
        let json = npd.to_json_pretty().unwrap();
        // Remove the phases key entirely: serde default must kick in.
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let mut obj = v.as_object().unwrap().clone();
        obj.remove("phases");
        let trimmed = serde_json::to_string(&obj).unwrap();
        let back = Npd::from_json(&trimmed).unwrap();
        assert!(back.phases.is_empty());
    }

    #[test]
    fn six_parts_are_present_in_json() {
        let json = sample().to_json_pretty().unwrap();
        for part in ["fabric", "hgrid", "\"ma\"", "\"eb\"", "\"dr\"", "\"bb\""] {
            assert!(json.contains(part), "missing part {part}");
        }
    }
}
