//! Spans opened inside `WorkerPool` lanes keep consistent parent/child
//! ids across threads, and the emitted JSONL round-trips through the
//! schema validator.

use std::sync::Arc;

use klotski_parallel::WorkerPool;
use klotski_telemetry::{span, validate_trace, Record, RingSink, SpanGuard};

#[test]
fn nested_spans_across_pool_threads_keep_parent_child_ids() {
    let ring = Arc::new(RingSink::new(1 << 16));
    let saved = klotski_telemetry::swap(Some(ring.clone()));

    let pool = WorkerPool::new(4);
    let root_id;
    {
        let root = span!("test.root");
        root_id = root.id();
        pool.run(64, |lane, task| {
            // Lane threads have no span context of their own; attach the
            // task span to the caller's root explicitly.
            let mut guard = SpanGuard::enter_with_parent("test.task", root_id);
            guard.field("lane", lane as u64).field("task", task as u64);
            {
                let _inner = span!("test.inner");
            }
        });
    }

    klotski_telemetry::swap(saved);

    let text = ring.lines().into_iter().collect::<Vec<_>>().join("\n");
    let summary = validate_trace(&text).expect("trace must validate");
    assert_eq!(summary.spans, 1 + 64 + 64, "root + 64 tasks + 64 inners");

    let mut task_ids = std::collections::HashSet::new();
    let mut inners = Vec::new();
    for line in text.lines() {
        match klotski_telemetry::parse_line(line).unwrap() {
            Record::Span {
                name, id, parent, ..
            } if name == "test.task" => {
                assert_eq!(parent, root_id, "every task span hangs off the root");
                task_ids.insert(id);
            }
            Record::Span { name, parent, .. } if name == "test.inner" => {
                inners.push(parent);
            }
            _ => {}
        }
    }
    assert_eq!(task_ids.len(), 64, "task span ids are unique");
    assert_eq!(inners.len(), 64);
    for parent in inners {
        assert!(
            task_ids.contains(&parent),
            "inner span parent {parent} must be a task span"
        );
    }
}
