//! # klotski-parallel
//!
//! A reusable scoped worker pool built directly on `std::thread` /
//! `std::sync` (no external dependencies). Satisfiability checking routes
//! the full demand matrix per planner expansion, and per-destination groups
//! are embarrassingly parallel — this crate provides the substrate: a pool
//! of persistent worker threads draining a chunked work queue, with the
//! calling thread participating as lane 0.
//!
//! Design:
//!
//! - **Persistent threads.** `WorkerPool::new(n)` spawns `n - 1` workers
//!   once; each `run` wakes them through a condvar instead of re-spawning.
//!   `n == 1` spawns nothing and executes inline, byte-identical to a
//!   sequential call.
//! - **Chunked work queue.** Tasks are claimed from an atomic counter, so
//!   fast lanes steal the tail from slow ones. Task *results* must not
//!   depend on which lane ran them — callers that need determinism write
//!   per-task output slots and merge in task order afterwards.
//! - **Scoped jobs.** Closures may borrow the caller's stack: `run` erases
//!   the closure lifetime behind a raw pointer but never returns before
//!   every worker has finished the epoch, so the borrow cannot dangle.
//! - **Panic propagation.** A panicking task poisons the epoch; `run`
//!   re-panics on the calling thread after all lanes have stopped.

use klotski_telemetry::{registry, Counter};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cached handles to the pool's registry counters, resolved once per pool
/// so the run path pays one relaxed atomic add per update. The series
/// aggregate across every pool instance in the process (the planner's
/// private pools and the service workers' shared ones alike) — per-lane
/// labels describe lane *positions*, not specific threads.
#[derive(Debug)]
struct PoolMetrics {
    /// `run` epochs dispatched (inline single-lane runs included).
    epochs: Arc<Counter>,
    /// Tasks executed, per lane.
    tasks: Vec<Arc<Counter>>,
    /// Busy wall-clock per lane, microseconds.
    busy_us: Vec<Arc<Counter>>,
    /// Epochs in which the lane ran at least one task (occupancy).
    occupied: Vec<Arc<Counter>>,
}

impl PoolMetrics {
    fn new(lanes: usize) -> Self {
        let r = registry();
        r.set_help(
            "klotski_pool_epochs_total",
            "Worker-pool run epochs dispatched (all pools).",
        );
        r.set_help(
            "klotski_pool_tasks_total",
            "Worker-pool tasks executed per lane (all pools).",
        );
        r.set_help(
            "klotski_pool_busy_us_total",
            "Worker-pool per-lane busy time, microseconds (all pools).",
        );
        r.set_help(
            "klotski_pool_lane_epochs_total",
            "Epochs in which the lane ran at least one task (all pools).",
        );
        let per_lane = |family: &str| {
            (0..lanes)
                .map(|lane| r.counter(&format!("{family}{{lane=\"{lane}\"}}")))
                .collect()
        };
        Self {
            epochs: r.counter("klotski_pool_epochs_total"),
            tasks: per_lane("klotski_pool_tasks_total"),
            busy_us: per_lane("klotski_pool_busy_us_total"),
            occupied: per_lane("klotski_pool_lane_epochs_total"),
        }
    }

    /// Folds one lane's share of an epoch in. Idle lanes record nothing.
    fn record_lane(&self, lane: usize, busy: Duration, tasks_run: usize) {
        if tasks_run == 0 {
            return;
        }
        self.tasks[lane].add(tasks_run as u64);
        self.busy_us[lane].add(busy.as_micros() as u64);
        self.occupied[lane].inc();
    }
}

/// The erased job a worker runs for one epoch: `f(lane)` where `lane` is in
/// `1..lanes`. The pointee lives on the stack of the `run` caller, which
/// blocks until every worker finishes — see `WorkerPool::run`.
#[derive(Clone, Copy)]
struct RawJob(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` and outlives every access (the caller of
// `run` waits for all workers before the referent leaves scope).
unsafe impl Send for RawJob {}

struct PoolState {
    job: Option<RawJob>,
    /// Bumped per `run`; workers match it to detect fresh work.
    epoch: u64,
    /// Workers still running the current epoch's job.
    active: usize,
    /// Set when any worker's job panicked this epoch.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// A pool of persistent worker threads plus the calling thread.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    metrics: PoolMetrics,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("lanes", &self.lanes())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `lanes` total execution lanes: the calling
    /// thread plus `lanes - 1` persistent workers. `lanes` is clamped to at
    /// least 1; with one lane no threads are spawned and `run` executes
    /// inline.
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                active: 0,
                panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (1..lanes)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("klotski-worker-{lane}"))
                    .spawn(move || worker_loop(&shared, lane))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self {
            shared,
            workers,
            metrics: PoolMetrics::new(lanes),
        }
    }

    /// A pool sized to the machine: `std::thread::available_parallelism()`.
    pub fn with_available_parallelism() -> Self {
        Self::new(default_lanes())
    }

    /// A reference-counted pool with `lanes` lanes, for callers that share
    /// one pool across many jobs (every `run` epoch is independent, so a
    /// pool outliving any single job is safe by construction).
    pub fn shared(lanes: usize) -> std::sync::Arc<Self> {
        std::sync::Arc::new(Self::new(lanes))
    }

    /// Total execution lanes (workers + the calling thread).
    pub fn lanes(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs `tasks` independent tasks across all lanes and returns when
    /// every task has finished. `f(lane, task)` is called exactly once per
    /// `task` in `0..tasks`; `lane` is in `0..lanes()` and identifies which
    /// execution lane ran it (lane 0 is the calling thread). Tasks are
    /// claimed dynamically, so per-lane task sets vary run-to-run — results
    /// must be written to per-task locations, not accumulated per lane, if
    /// determinism matters.
    ///
    /// Panics (on the calling thread) if any task panicked.
    pub fn run<F>(&self, tasks: usize, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if tasks == 0 {
            return;
        }
        if self.workers.is_empty() || tasks == 1 {
            let started = Instant::now();
            for task in 0..tasks {
                f(0, task);
            }
            self.metrics.epochs.inc();
            self.metrics.record_lane(0, started.elapsed(), tasks);
            return;
        }

        let next = AtomicUsize::new(0);
        let job = |lane: usize| {
            let started = Instant::now();
            let mut ran = 0usize;
            loop {
                let task = next.fetch_add(1, Ordering::Relaxed);
                if task >= tasks {
                    break;
                }
                f(lane, task);
                ran += 1;
            }
            self.metrics.record_lane(lane, started.elapsed(), ran);
        };

        // Publish the job. SAFETY: we erase the closure's lifetime, but the
        // wait loop below keeps this stack frame alive until every worker
        // has dropped out of the epoch.
        let job_ref: &(dyn Fn(usize) + Sync) = &job;
        let raw = RawJob(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(job_ref as *const _)
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            st.job = Some(raw);
            st.epoch += 1;
            st.active = self.workers.len();
            st.panicked = false;
        }
        self.metrics.epochs.inc();
        self.shared.work_cv.notify_all();

        // Participate as lane 0. Catch panics so workers are always waited
        // for before unwinding out of this frame.
        let caller = catch_unwind(AssertUnwindSafe(|| job(0)));

        let worker_panicked = {
            let mut st = self.shared.state.lock().unwrap();
            while st.active > 0 {
                st = self.shared.done_cv.wait(st).unwrap();
            }
            st.job = None;
            st.panicked
        };

        match caller {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) if worker_panicked => panic!("worker pool task panicked"),
            Ok(()) => {}
        }
    }

    /// Like [`run`](Self::run), but hands each lane exclusive access to its
    /// own scratch slot: task `t` runs as `f(&mut scratch[lane], t)`.
    /// `scratch` must provide at least [`lanes()`](Self::lanes) slots.
    pub fn run_with_scratch<S, F>(&self, scratch: &mut [S], tasks: usize, f: F)
    where
        S: Send,
        F: Fn(&mut S, usize) + Sync,
    {
        assert!(
            scratch.len() >= self.lanes(),
            "scratch slots ({}) < pool lanes ({})",
            scratch.len(),
            self.lanes()
        );
        let base = SharedPtr(scratch.as_mut_ptr());
        self.run(tasks, |lane, task| {
            // SAFETY: each lane index is owned by exactly one thread for
            // the duration of `run`, so `&mut` slots never alias.
            let slot = unsafe { &mut *base.get().add(lane) };
            f(slot, task);
        });
    }

    /// Like [`run`](Self::run), but also gives each task exclusive `&mut`
    /// access to its own output slot: task `t` runs as
    /// `f(lane, t, &mut out[t])`. `out` must hold at least `tasks` slots.
    /// Writing results by *task* index keeps the output independent of the
    /// lane assignment, which is what makes chunk merges deterministic.
    pub fn run_tasks_into<T, F>(&self, out: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, usize, &mut T) + Sync,
    {
        let tasks = out.len();
        let base = SharedPtr(out.as_mut_ptr());
        self.run(tasks, |lane, task| {
            // SAFETY: the atomic queue hands each task index to exactly one
            // lane, so `&mut` slots never alias.
            let slot = unsafe { &mut *base.get().add(task) };
            f(lane, task, slot);
        });
    }

    /// [`run_with_scratch`](Self::run_with_scratch) and
    /// [`run_tasks_into`](Self::run_tasks_into) combined: task `t` runs as
    /// `f(&mut scratch[lane], t, &mut out[t])`. This is the shape of
    /// deterministic parallel routing — per-lane reusable scratch engines,
    /// per-task output buffers merged in task order afterwards.
    pub fn run_scratch_tasks_into<S, T, F>(&self, scratch: &mut [S], out: &mut [T], f: F)
    where
        S: Send,
        T: Send,
        F: Fn(&mut S, usize, &mut T) + Sync,
    {
        assert!(
            scratch.len() >= self.lanes(),
            "scratch slots ({}) < pool lanes ({})",
            scratch.len(),
            self.lanes()
        );
        let tasks = out.len();
        let sbase = SharedPtr(scratch.as_mut_ptr());
        let obase = SharedPtr(out.as_mut_ptr());
        self.run(tasks, |lane, task| {
            // SAFETY: lane indices are exclusive to one thread at a time and
            // task indices are handed out exactly once, so neither `&mut`
            // aliases.
            let s = unsafe { &mut *sbase.get().add(lane) };
            let o = unsafe { &mut *obase.get().add(task) };
            f(s, task, o);
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, lane: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(RawJob(ptr)) = st.job {
                        seen_epoch = st.epoch;
                        break ptr;
                    }
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        // SAFETY: the publisher of `job` blocks in `run` until this lane
        // decrements `active` below, so the referent is alive.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job)(lane) }));
        let mut st = shared.state.lock().unwrap();
        if result.is_err() {
            st.panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// A raw pointer that asserts cross-thread shareability. Used to hand
/// disjoint `&mut` slots of one slice to different lanes/tasks.
struct SharedPtr<T>(*mut T);

impl<T> SharedPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: callers guarantee disjoint access per lane/task (see call sites).
unsafe impl<T: Send> Send for SharedPtr<T> {}
unsafe impl<T: Send> Sync for SharedPtr<T> {}

/// The machine's available parallelism (≥ 1), memoized: callers gate
/// per-evaluation dispatch decisions on it, and the underlying
/// `available_parallelism` re-reads cgroup quota files on every call.
pub fn default_lanes() -> usize {
    static LANES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *LANES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Splits `0..total` into at most `chunks` contiguous ranges of
/// near-equal size, in order. The split depends only on `total` and
/// `chunks`, never on thread scheduling.
pub fn chunk_ranges(total: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    let chunks = chunks.clamp(1, total.max(1));
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for i in 0..chunks {
        let end = total * (i + 1) / chunks;
        if end > start {
            out.push(start..end);
            start = end;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn single_lane_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.lanes(), 1);
        let mut out = vec![0usize; 17];
        pool.run_tasks_into(&mut out, |lane, task, slot| {
            assert_eq!(lane, 0);
            *slot = task * 2;
        });
        assert_eq!(out, (0..17).map(|t| t * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.lanes(), 4);
        let counts: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.run(1000, |_lane, task| {
            counts[task].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_is_reusable_across_epochs() {
        let pool = WorkerPool::new(3);
        let total = AtomicU64::new(0);
        for round in 1..=10u64 {
            pool.run(64, |_lane, task| {
                total.fetch_add(round * task as u64, Ordering::Relaxed);
            });
        }
        let per_round: u64 = (0..64u64).sum();
        let expect: u64 = (1..=10u64).map(|r| r * per_round).sum();
        assert_eq!(total.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn scratch_lanes_are_exclusive() {
        let pool = WorkerPool::new(4);
        let mut scratch = vec![Vec::<usize>::new(); pool.lanes()];
        pool.run_with_scratch(&mut scratch, 500, |slot, task| {
            slot.push(task);
        });
        let mut all: Vec<usize> = scratch.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn scratch_and_task_slots_compose() {
        let pool = WorkerPool::new(4);
        let mut scratch = vec![0usize; pool.lanes()];
        let mut out = vec![0usize; 300];
        pool.run_scratch_tasks_into(&mut scratch, &mut out, |s, task, o| {
            *s += 1;
            *o = task + 1;
        });
        assert_eq!(scratch.iter().sum::<usize>(), 300, "every task ran once");
        assert!(out.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn borrows_callers_stack() {
        let pool = WorkerPool::new(4);
        let input: Vec<u64> = (0..256).collect();
        let mut out = vec![0u64; 256];
        pool.run_tasks_into(&mut out, |_lane, task, slot| {
            *slot = input[task] * 3;
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    }

    #[test]
    fn panics_propagate_to_caller() {
        let pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(100, |_lane, task| {
                if task == 63 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must stay usable after a panicked epoch.
        let hits = AtomicUsize::new(0);
        pool.run(10, |_lane, _task| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for total in [0usize, 1, 5, 64, 1000] {
            for chunks in [1usize, 2, 3, 7, 64] {
                let ranges = chunk_ranges(total, chunks);
                let mut covered = 0usize;
                let mut expect_start = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, expect_start);
                    assert!(r.end > r.start);
                    covered += r.len();
                    expect_start = r.end;
                }
                assert_eq!(covered, total);
                assert!(ranges.len() <= chunks.max(1));
            }
        }
    }

    #[test]
    fn default_lanes_is_positive() {
        assert!(default_lanes() >= 1);
    }
}
