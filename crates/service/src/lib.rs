//! # klotski-service
//!
//! A concurrent planning/audit daemon over NPD (§5's EDP-Lite pipeline as
//! a long-running service). The paper's planner runs inside a production
//! deployment pipeline where many migrations are planned and re-audited
//! continuously; this crate is that serving layer, built std-only:
//!
//! * **HTTP/1.1 + JSON** on a plain `TcpListener` — `POST /v1/plan` and
//!   `POST /v1/audit` accept NPD documents, `GET /v1/jobs/{id}` polls
//!   asynchronous jobs, `GET /metrics` exposes Prometheus text,
//!   `GET /healthz` is the load-balancer probe.
//! * **Bounded admission**: a fixed-capacity MPMC queue between connection
//!   threads and planner workers. A full queue answers
//!   `503 + Retry-After` — the daemon sheds load instead of growing.
//! * **Long-lived workers**: each worker thread owns a persistent
//!   [`WorkerPool`] reused across jobs, so satisfiability lanes are warmed
//!   once, not per request.
//! * **Shared plan cache** keyed by `(NPD digest, options digest)`:
//!   repeated submissions of the same document return the original bytes.
//! * **Request coalescing**: concurrent submissions with an identical
//!   `(NPD digest, options digest)` key singleflight onto one pipeline
//!   computation — the first becomes the leader, duplicates follow its
//!   job (same id, same event stream) and receive byte-identical bytes.
//! * **Warm persistent state**: with `--state-dir`, a checksummed
//!   write-ahead journal persists admissions and finished artifacts; a
//!   restarted daemon replays it, answering known digests from cache
//!   immediately and re-running jobs that were in flight at the crash.
//! * **Byte-identity**: the service and `klotski plan` call the same
//!   [`pipeline::plan_document`], so a daemon response is byte-for-byte
//!   the file the CLI would have written.
//! * **Graceful shutdown**: SIGTERM/SIGINT stop admission, drain the
//!   queue, and join every worker before exit.

pub mod cache;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod pipeline;
pub mod queue;
pub mod signal;
pub mod state;

use crate::cache::PlanCache;
use crate::http::{read_request, HttpError, Request, Response};
use crate::jobs::{Job, JobKind, JobOutput, JobTable, RunArtifact};
use crate::metrics::{Gauges, Metrics};
use crate::pipeline::{plan_document_keyed, PipelineError, PlanArtifact};
use crate::queue::{BoundedQueue, PushError};
use crate::state::{PendingJob, StateStore};
use klotski_controller::{run_scenario, ControllerError, Scenario};
use klotski_core::planner::SearchBudget;
use klotski_core::PlanError;
use klotski_npd::api::{AcceptedResponse, ErrorResponse, JobStatusResponse, PlanRequestOptions};
use klotski_npd::Npd;
use klotski_parallel::{default_lanes, WorkerPool};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Service tuning knobs. `Default` is a sensible single-host deployment.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address; `"127.0.0.1:0"` picks an ephemeral port.
    pub addr: String,
    /// Planner worker threads. `0` is accepted (admission-only mode, used
    /// by backpressure tests: nothing ever drains the queue).
    pub workers: usize,
    /// Bounded queue capacity; beyond it submissions get 503.
    pub queue_depth: usize,
    /// Satisfiability lanes per worker's persistent [`WorkerPool`].
    pub lanes_per_worker: usize,
    /// Shared plan-cache capacity in artifacts (0 disables).
    pub cache_capacity: usize,
    /// Finished/live jobs remembered for polling.
    pub jobs_capacity: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
    /// How long a synchronous (no `?wait=0`) submission blocks before
    /// degrading to `202 Accepted` + job id.
    pub sync_wait: Duration,
    /// Service-wide planning deadline applied when a request does not set
    /// `deadline_ms`. `None` = unbounded (the search budget still applies).
    pub default_deadline: Option<Duration>,
    /// Concurrent `GET /v1/jobs/{id}/events` subscribers; beyond it new
    /// streams are shed with 503 (each holds a connection thread and a
    /// bounded event queue).
    pub sse_max_subscribers: usize,
    /// Per-subscriber event-queue bound; on overflow the oldest line is
    /// dropped and the lag-drop counters advance — a stalled reader never
    /// blocks a planner.
    pub sse_queue_capacity: usize,
    /// Keep-alive comment interval on idle event streams.
    pub sse_heartbeat: Duration,
    /// Singleflight concurrent identical submissions onto one computation.
    /// Disabled, every duplicate enqueues its own job (the pre-coalescing
    /// behaviour backpressure tests rely on).
    pub coalesce: bool,
    /// Directory for the write-ahead job journal; `None` runs stateless.
    pub state_dir: Option<PathBuf>,
    /// Journal size that triggers compaction (the journal is rewritten as
    /// the live cache plus pending admissions).
    pub journal_compact_bytes: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: default_lanes(),
            queue_depth: 64,
            lanes_per_worker: 1,
            cache_capacity: 128,
            jobs_capacity: 1024,
            max_body_bytes: 8 * 1024 * 1024,
            io_timeout: Duration::from_secs(30),
            sync_wait: Duration::from_secs(300),
            default_deadline: None,
            sse_max_subscribers: 32,
            sse_queue_capacity: 1024,
            sse_heartbeat: Duration::from_secs(1),
            coalesce: true,
            state_dir: None,
            journal_compact_bytes: 8 * 1024 * 1024,
        }
    }
}

/// One admitted unit of work travelling the queue.
struct QueuedJob {
    job: Arc<Job>,
    work: Work,
}

/// The two kinds of payload workers drain from the queue.
enum Work {
    /// Plan or audit an NPD document (cached by content digest). The NPD
    /// is boxed to keep queue slots variant-size balanced.
    Plan {
        npd: Box<Npd>,
        options: PlanRequestOptions,
        key: (u64, u64),
    },
    /// Execute a scripted controller scenario. Runs are executions, not
    /// pure functions of a document, so they bypass the plan cache.
    Run {
        scenario: Scenario,
        deadline_ms: Option<u64>,
    },
}

/// State shared by the acceptor, connection threads, and workers.
struct Shared {
    config: ServiceConfig,
    queue: BoundedQueue<QueuedJob>,
    jobs: JobTable,
    cache: PlanCache<PlanArtifact>,
    metrics: Metrics,
    workers_busy: AtomicUsize,
    /// Open `/events` subscribers (the 503-shedding gauge).
    sse_active: AtomicUsize,
    draining: std::sync::atomic::AtomicBool,
    /// Singleflight table: key → the job currently computing it. Entries
    /// are removed by the worker that settles the key.
    inflight: Mutex<HashMap<(u64, u64), Arc<Job>>>,
    /// Write-ahead journal, when `--state-dir` is set.
    state: Option<StateStore>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || signal::shutdown_requested()
    }

    fn gauges(&self) -> Gauges {
        Gauges {
            queue_depth: self.queue.len(),
            queue_capacity: self.queue.capacity(),
            workers_busy: self.workers_busy.load(Ordering::Relaxed),
            workers: self.config.workers,
            cache_entries: self.cache.len(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_evictions: self.cache.evictions(),
            journal_bytes: self.state.as_ref().map_or(0, |s| s.bytes()),
            journal_records: self.state.as_ref().map_or(0, |s| s.records()),
            journal_compactions: self.state.as_ref().map_or(0, |s| s.compactions()),
        }
    }
}

/// A running daemon. Dropping it without [`shutdown`](Self::shutdown)
/// leaves threads running; call shutdown for a clean exit.
pub struct Service {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Binds, spawns the acceptor and worker threads, and returns. With a
    /// `state_dir`, the journal is replayed first: finished artifacts seed
    /// the plan cache and admitted-but-unfinished jobs are re-enqueued, so
    /// the daemon comes up warm before it accepts its first connection.
    pub fn start(config: ServiceConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let (store, replay) = match &config.state_dir {
            Some(dir) => {
                let (store, replay) = StateStore::open(dir, config.journal_compact_bytes)?;
                (Some(store), replay)
            }
            None => (None, state::Replay::default()),
        };
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_depth),
            jobs: JobTable::new(config.jobs_capacity),
            cache: PlanCache::new(config.cache_capacity),
            metrics: Metrics::new(),
            workers_busy: AtomicUsize::new(0),
            sse_active: AtomicUsize::new(0),
            draining: std::sync::atomic::AtomicBool::new(false),
            inflight: Mutex::new(HashMap::new()),
            state: store,
            config,
        });

        // Seed the cache and re-enqueue interrupted jobs before any worker
        // or connection runs, so replayed state is never raced by traffic.
        for (key, artifact) in replay.artifacts {
            shared.cache.insert(key, artifact);
            shared
                .metrics
                .state_replayed_artifacts
                .fetch_add(1, Ordering::Relaxed);
        }
        for pending in replay.pending {
            replay_pending_job(&shared, pending);
        }

        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("klotski-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("klotski-acceptor".into())
                .spawn(move || accept_loop(listener, &shared))
                .expect("spawn acceptor")
        };

        Ok(Self {
            shared,
            local_addr,
            acceptor,
            workers,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks until a shutdown signal arrives, then drains and exits.
    /// This is the `klotski serve` main loop.
    pub fn run_until_signalled(self) {
        while !signal::shutdown_requested() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.shutdown();
    }

    /// Graceful shutdown: stop admission, drain the queue, join all
    /// threads. In-flight and already-queued jobs finish; new submissions
    /// have been getting 503 since the drain flag flipped.
    pub fn shutdown(self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        // Every queued job has settled; leave a compact, durable journal
        // so the next start replays exactly the live cache.
        if let Some(state) = &self.shared.state {
            state.compact(self.shared.cache.snapshot());
            state.flush();
        }
    }
}

/// Re-admits a journal-replayed job: it gets a fresh job id (the old one
/// died with the old process) and its key re-enters the singleflight table
/// so duplicates arriving during warmup coalesce onto the replay.
fn replay_pending_job(shared: &Arc<Shared>, pending: PendingJob) {
    let kind = if pending.kind == JobKind::Audit.label() {
        JobKind::Audit
    } else {
        JobKind::Plan
    };
    let Ok(npd) = Npd::from_json(&pending.npd) else {
        // An admit that no longer parses (schema drift) can never run.
        if let Some(state) = &shared.state {
            state.settled(pending.key);
        }
        return;
    };
    let job = shared.jobs.create(kind);
    shared
        .inflight
        .lock()
        .unwrap()
        .insert(pending.key, Arc::clone(&job));
    let work = Work::Plan {
        npd: Box::new(npd),
        options: pending.options,
        key: pending.key,
    };
    if push_job(shared, &job, work).is_err() {
        settle_inflight(shared, pending.key, &job);
        if let Some(state) = &shared.state {
            state.settled(pending.key);
        }
        return;
    }
    shared
        .metrics
        .state_replayed_jobs
        .fetch_add(1, Ordering::Relaxed);
}

/// Accept loop: one short-lived thread per connection (`Connection:
/// close`), exiting once the drain flag flips.
fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.draining() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("klotski-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &shared);
            });
    }
}

/// Worker loop: pop, plan, publish. Exits when the queue is closed and
/// drained. Each worker owns one persistent pool reused across jobs.
fn worker_loop(shared: &Arc<Shared>) {
    let pool = WorkerPool::shared(shared.config.lanes_per_worker.max(1));
    while let Some(queued) = shared.queue.pop() {
        shared.workers_busy.fetch_add(1, Ordering::Relaxed);
        run_job(shared, &queued, &pool);
        shared.workers_busy.fetch_sub(1, Ordering::Relaxed);
    }
}

fn run_job(shared: &Arc<Shared>, queued: &QueuedJob, pool: &Arc<WorkerPool>) {
    // Tag this thread with the job's stream id: every trace line the job
    // emits (planner progress, controller phases, the job span itself)
    // reaches exactly this job's `/events` subscribers.
    let _stream_tag = klotski_telemetry::tag_stream(queued.job.stream);
    let mut span = klotski_telemetry::span!(
        "service.job",
        "kind" = queued.job.kind.label(),
        "job" = queued.job.id,
    );
    queued.job.set_running();
    match &queued.work {
        Work::Plan { npd, options, key } => {
            run_plan_job(shared, queued, &mut span, pool, npd, options, *key)
        }
        Work::Run {
            scenario,
            deadline_ms,
        } => run_scenario_job(shared, queued, &mut span, scenario, *deadline_ms),
    }
}

fn run_plan_job(
    shared: &Arc<Shared>,
    queued: &QueuedJob,
    span: &mut klotski_telemetry::SpanGuard,
    pool: &Arc<WorkerPool>,
    npd: &Npd,
    options: &PlanRequestOptions,
    key: (u64, u64),
) {
    // A same-key job may have finished while this one sat queued.
    if let Some(hit) = shared.cache.get(key) {
        if let Some(state) = &shared.state {
            state.settled(key); // the cached artifact is already journaled
        }
        shared
            .metrics
            .jobs_completed
            .fetch_add(1, Ordering::Relaxed);
        shared.metrics.latency.record(queued.job.admitted.elapsed());
        settle_inflight(shared, key, &queued.job);
        queued.job.complete(JobOutput::Plan(hit));
        span.field("outcome", "cached");
        return;
    }
    let mut budget = SearchBudget::default();
    if let Some(d) = job_deadline(shared, options.deadline_ms) {
        // Deadlines bound admission-to-answer, so they start at admission.
        budget = budget.with_deadline(queued.job.admitted + d);
    }
    shared
        .metrics
        .pipeline_executions
        .fetch_add(1, Ordering::Relaxed);
    match plan_document_keyed(npd, options, key, budget, Some(Arc::clone(pool))) {
        Ok(artifact) => {
            let artifact = Arc::new(artifact);
            shared.cache.insert(key, Arc::clone(&artifact));
            if let Some(state) = &shared.state {
                state.artifact(key, &artifact, || shared.cache.snapshot());
            }
            shared
                .metrics
                .jobs_completed
                .fetch_add(1, Ordering::Relaxed);
            shared.metrics.latency.record(queued.job.admitted.elapsed());
            settle_inflight(shared, key, &queued.job);
            queued.job.complete(JobOutput::Plan(artifact));
            span.field("outcome", "done");
        }
        Err(e) => {
            let status = match &e {
                PipelineError::Invalid(_) => 422,
                PipelineError::Plan(_) if e.is_budget_exceeded() => 504,
                PipelineError::Plan(_) => 422,
                PipelineError::Internal(_) => 500,
            };
            // Failures are terminal, not retried: clear the admit so a
            // restart does not re-run a deterministically failing job.
            if let Some(state) = &shared.state {
                state.settled(key);
            }
            settle_inflight(shared, key, &queued.job);
            fail_job(shared, queued, span, status, e.to_string());
        }
    }
}

/// Removes the job's singleflight entry, guarded by pointer identity so a
/// racing replacement leader for the same key is never evicted by the old
/// job's settlement.
fn settle_inflight(shared: &Shared, key: (u64, u64), job: &Arc<Job>) {
    let mut inflight = shared.inflight.lock().unwrap();
    if inflight.get(&key).is_some_and(|j| Arc::ptr_eq(j, job)) {
        inflight.remove(&key);
    }
}

/// Executes a `POST /v1/run` scenario on the worker thread. The controller
/// owns its own pool sized by the scenario's thread override (runs are
/// bit-deterministic per lane count, so the scenario decides, not the
/// worker).
fn run_scenario_job(
    shared: &Arc<Shared>,
    queued: &QueuedJob,
    span: &mut klotski_telemetry::SpanGuard,
    scenario: &Scenario,
    deadline_ms: Option<u64>,
) {
    let deadline = job_deadline(shared, deadline_ms).map(|d| queued.job.admitted + d);
    match run_scenario(scenario, deadline) {
        Ok(report) => {
            let json = serde_json::to_string_pretty(&report)
                .map(String::into_bytes)
                .unwrap_or_else(|_| b"{}".to_vec());
            shared
                .metrics
                .jobs_completed
                .fetch_add(1, Ordering::Relaxed);
            shared.metrics.latency.record(queued.job.admitted.elapsed());
            span.field("completed", report.completed);
            span.field("replans", report.replans.len() as u64);
            let outcome = report.outcome_label();
            shared.metrics.run_outcomes.record(outcome);
            queued
                .job
                .complete(JobOutput::Run(Arc::new(RunArtifact { report, json })));
            span.field("outcome", outcome);
        }
        Err(e) => {
            let status = match &e {
                ControllerError::Scenario(_) => 422,
                ControllerError::InitialPlan(PlanError::BudgetExceeded { .. }) => 504,
                ControllerError::InitialPlan(_) => 422,
            };
            shared.metrics.run_outcomes.record("failed");
            fail_job(shared, queued, span, status, e.to_string());
        }
    }
}

/// The effective deadline: the request's, else the service-wide default.
fn job_deadline(shared: &Arc<Shared>, request_ms: Option<u64>) -> Option<Duration> {
    request_ms
        .map(Duration::from_millis)
        .or(shared.config.default_deadline)
}

fn fail_job(
    shared: &Arc<Shared>,
    queued: &QueuedJob,
    span: &mut klotski_telemetry::SpanGuard,
    status: u16,
    message: String,
) {
    shared.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
    if status == 504 {
        shared
            .metrics
            .jobs_cancelled
            .fetch_add(1, Ordering::Relaxed);
        span.field("outcome", "deadline");
    } else {
        span.field("outcome", "failed");
    }
    queued.job.fail(status, message);
}

/// Reads one request, routes it, writes one response.
fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    http::configure_stream(&stream, shared.config.io_timeout)?;
    let request = match read_request(&mut stream, shared.config.max_body_bytes) {
        Ok(r) => r,
        Err(HttpError::BodyTooLarge(n)) => {
            shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            return Response::json(
                413,
                &ErrorResponse::new(format!("body of {n} bytes too large")),
            )
            .write_to(&mut stream);
        }
        Err(HttpError::Malformed(why)) => {
            shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            return Response::json(400, &ErrorResponse::new(why)).write_to(&mut stream);
        }
        Err(HttpError::Io(e)) => return Err(e),
    };
    shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
    // The events endpoint streams; everything else is one buffered
    // response.
    if request.method == "GET"
        && request.path.starts_with("/v1/jobs/")
        && request.path.ends_with("/events")
    {
        return stream_events(stream, &request, shared);
    }
    let response = route(&request, shared);
    response.write_to(&mut stream)
}

/// `GET /v1/jobs/{id}/events`: a chunked `text/event-stream` of the job's
/// trace lines from the process-global event bus, with heartbeats while
/// idle and a terminal `end` event carrying the job's outcome — for run
/// jobs, the same outcome label and fingerprint the result endpoint's
/// headers carry, byte for byte.
fn stream_events(
    mut stream: TcpStream,
    request: &Request,
    shared: &Arc<Shared>,
) -> std::io::Result<()> {
    let rest = &request.path["/v1/jobs/".len()..];
    let id_str = rest.strip_suffix("/events").unwrap_or(rest);
    let Ok(id) = id_str.parse::<u64>() else {
        shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
        return Response::json(400, &ErrorResponse::new(format!("bad job id {id_str:?}")))
            .write_to(&mut stream);
    };
    let Some(job) = shared.jobs.get(id) else {
        return Response::json(404, &ErrorResponse::new(format!("no job {id}")))
            .write_to(&mut stream);
    };
    // Shed before subscribing: every accepted stream pins a connection
    // thread and a bounded queue until the job finishes.
    if shared.sse_active.fetch_add(1, Ordering::SeqCst) >= shared.config.sse_max_subscribers {
        shared.sse_active.fetch_sub(1, Ordering::SeqCst);
        shared.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
        return Response::json(503, &ErrorResponse::new("too many event subscribers"))
            .with_header("Retry-After", "1")
            .write_to(&mut stream);
    }
    let result = serve_events(&mut stream, &job, shared);
    shared.sse_active.fetch_sub(1, Ordering::SeqCst);
    result
}

fn serve_events(
    stream: &mut TcpStream,
    job: &Arc<Job>,
    shared: &Arc<Shared>,
) -> std::io::Result<()> {
    // Subscribe before the first status check: lines published between a
    // "still running" verdict and a later subscription would be lost.
    let sub = klotski_telemetry::bus().subscribe(job.stream, shared.config.sse_queue_capacity);
    shared.metrics.sse_streams.fetch_add(1, Ordering::Relaxed);
    http::write_chunked_head(
        stream,
        200,
        &[
            ("Content-Type", "text/event-stream"),
            ("Cache-Control", "no-cache"),
        ],
    )?;
    loop {
        let (state, output, error) = job.status();
        let terminal = matches!(
            state,
            klotski_npd::api::JobState::Done | klotski_npd::api::JobState::Failed
        );
        // Flush everything already queued so the end event is truly last.
        while let Some(line) = sub.try_recv() {
            write_event(stream, "trace", &line)?;
        }
        if terminal {
            let dropped = sub.dropped();
            shared
                .metrics
                .sse_lag_dropped
                .fetch_add(dropped, Ordering::Relaxed);
            let end = terminal_event(output.as_ref(), error.as_ref(), dropped);
            write_event(stream, "end", &end)?;
            return http::finish_chunked(stream);
        }
        match sub.recv_timeout(shared.config.sse_heartbeat) {
            Some(line) => write_event(stream, "trace", &line)?,
            None => http::write_chunk(stream, b": heartbeat\n\n")?,
        }
    }
}

fn write_event(stream: &mut TcpStream, name: &str, data: &str) -> std::io::Result<()> {
    http::write_chunk(
        stream,
        format!("event: {name}\ndata: {data}\n\n").as_bytes(),
    )
}

/// The `end` event payload. Run jobs carry `outcome` + `fingerprint`
/// exactly as the result endpoint's `X-Klotski-Run-Outcome` /
/// `X-Klotski-Run-Fingerprint` headers render them; plan/audit jobs carry
/// the NPD digest; failed jobs carry the error.
fn terminal_event(
    output: Option<&JobOutput>,
    error: Option<&jobs::JobError>,
    dropped: u64,
) -> String {
    let mut obj = serde::Map::new();
    match (output, error) {
        (Some(JobOutput::Run(run)), _) => {
            obj.insert(
                "outcome".into(),
                serde::Value::String(run.report.outcome_label().into()),
            );
            obj.insert(
                "fingerprint".into(),
                serde::Value::String(format!("{:016x}", run.report.fingerprint())),
            );
        }
        (Some(JobOutput::Plan(artifact)), _) => {
            obj.insert("outcome".into(), serde::Value::String("done".into()));
            obj.insert(
                "digest".into(),
                serde::Value::String(artifact.summary.npd_digest.clone()),
            );
        }
        (None, Some(e)) => {
            obj.insert("outcome".into(), serde::Value::String("failed".into()));
            obj.insert("status".into(), serde::Value::Number(e.status as f64));
            obj.insert("error".into(), serde::Value::String(e.message.clone()));
        }
        (None, None) => {
            obj.insert("outcome".into(), serde::Value::String("unknown".into()));
        }
    }
    obj.insert("lag_dropped".into(), serde::Value::Number(dropped as f64));
    serde_json::to_string(&serde::Value::Object(obj)).unwrap_or_else(|_| "{}".into())
}

fn route(request: &Request, shared: &Arc<Shared>) -> Response {
    let path = request.path.as_str();
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            if shared.draining() {
                Response::text(503, "draining").with_header("Retry-After", "1")
            } else {
                Response::text(200, "ok")
            }
        }
        ("GET", "/metrics") => {
            // Service-local families first (their layout is pinned by the
            // snapshot test), then the process-wide registry: search,
            // routing, and pool introspection counters.
            let mut text = metrics::render(
                &shared.metrics,
                &shared.gauges(),
                &shared.cache.shard_stats(),
            );
            text.push_str(&klotski_telemetry::registry().render_prometheus());
            Response::text(200, text)
        }
        ("POST", "/v1/plan") => submit(request, shared, JobKind::Plan),
        ("POST", "/v1/audit") => submit(request, shared, JobKind::Audit),
        ("POST", "/v1/run") => submit_run(request, shared),
        ("GET", _) if path.starts_with("/v1/jobs/") => job_endpoint(request, shared),
        (_, "/healthz" | "/metrics" | "/v1/plan" | "/v1/audit" | "/v1/run") => {
            shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            Response::json(405, &ErrorResponse::new("method not allowed"))
        }
        _ => {
            shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            Response::json(404, &ErrorResponse::new(format!("no route for {path}")))
        }
    }
}

/// Parses per-request options out of the query string.
fn options_from_query(request: &Request) -> Result<PlanRequestOptions, String> {
    let mut options = PlanRequestOptions::default();
    for (key, value) in &request.query {
        match key.as_str() {
            "theta" => {
                options.theta = Some(value.parse().map_err(|_| format!("bad theta {value:?}"))?)
            }
            "alpha" => {
                options.alpha = Some(value.parse().map_err(|_| format!("bad alpha {value:?}"))?)
            }
            "planner" => options.planner = Some(value.clone()),
            "deadline_ms" => {
                options.deadline_ms = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad deadline_ms {value:?}"))?,
                )
            }
            "incremental" => {
                options.incremental = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad incremental {value:?}"))?,
                )
            }
            "esc_cache_cap" => {
                // Rejected here, not just in the pipeline: a warm plan cache
                // would otherwise answer before the pipeline ever validates.
                let cap: usize = value
                    .parse()
                    .map_err(|_| format!("bad esc_cache_cap {value:?}"))?;
                if cap == 0 {
                    return Err("esc_cache_cap must be at least 1".into());
                }
                options.esc_cache_cap = Some(cap)
            }
            "ensemble" => {
                // CLI shorthand `K@SEED`; full specs (custom α ladder /
                // surge factor) travel as PlanRequestOptions JSON.
                options.ensemble = Some(
                    klotski_core::EnsembleSpec::parse(value)
                        .map_err(|e| format!("bad ensemble {value:?}: {e}"))?,
                )
            }
            "wait" => {} // handled by the caller
            other => return Err(format!("unknown query parameter {other:?}")),
        }
    }
    Ok(options)
}

/// Shared handler for `POST /v1/plan` and `POST /v1/audit`.
fn submit(request: &Request, shared: &Arc<Shared>, kind: JobKind) -> Response {
    let counter = match kind {
        JobKind::Plan => &shared.metrics.plan_requests,
        // Run submissions are counted by terminal outcome in the worker,
        // not at admission; this handler never sees them.
        JobKind::Audit | JobKind::Run => &shared.metrics.audit_requests,
    };
    counter.fetch_add(1, Ordering::Relaxed);

    if shared.draining() {
        shared.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
        return Response::json(503, &ErrorResponse::new("draining; not accepting work"))
            .with_header("Retry-After", "1");
    }
    let options = match options_from_query(request) {
        Ok(o) => o,
        Err(why) => {
            shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            return Response::json(400, &ErrorResponse::new(why));
        }
    };
    let body = match std::str::from_utf8(&request.body) {
        Ok(b) => b,
        Err(_) => {
            shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            return Response::json(400, &ErrorResponse::new("body is not UTF-8"));
        }
    };
    let npd = match Npd::from_json(body) {
        Ok(n) => n,
        Err(e) => {
            shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            return Response::json(422, &ErrorResponse::new(format!("invalid NPD: {e}")));
        }
    };

    // The one digest computation this request pays: the same key drives
    // the cache, the singleflight table, and the pipeline's summary.
    let key = (klotski_npd::npd_digest(&npd), options.digest());
    if let Some(hit) = shared.cache.get(key) {
        return finished_response(kind, &JobOutput::Plan(hit), true);
    }

    submit_plan_job(request, shared, kind, npd, body, options, key)
}

/// Admits a plan/audit computation, singleflighting identical keys: the
/// first submission for an idle key leads (it enqueues the work); every
/// concurrent duplicate follows the leader's job — same job id, same event
/// stream, byte-identical result — without enqueueing anything.
fn submit_plan_job(
    request: &Request,
    shared: &Arc<Shared>,
    kind: JobKind,
    npd: Npd,
    npd_json: &str,
    options: PlanRequestOptions,
    key: (u64, u64),
) -> Response {
    // Check-and-insert under one lock hold so exactly one concurrent
    // submission per key leads.
    let (job, leader) = {
        let mut inflight = shared.inflight.lock().unwrap();
        match inflight.get(&key) {
            Some(existing) if shared.config.coalesce => (Arc::clone(existing), false),
            _ => {
                let job = shared.jobs.create(kind);
                if shared.config.coalesce {
                    inflight.insert(key, Arc::clone(&job));
                }
                (job, true)
            }
        }
    };
    if !leader {
        shared
            .metrics
            .coalesce_followers
            .fetch_add(1, Ordering::Relaxed);
        return answer_job(request, shared, kind, &job)
            .with_header("X-Klotski-Coalesce", "follower");
    }
    if shared.config.coalesce {
        shared
            .metrics
            .coalesce_leaders
            .fetch_add(1, Ordering::Relaxed);
    }
    // Journal the admission before the push: a crash at any later point
    // re-runs this job on restart instead of losing it.
    if let Some(state) = &shared.state {
        state.admit(key, kind.label(), npd_json, &options);
    }
    let work = Work::Plan {
        npd: Box::new(npd),
        options,
        key,
    };
    if let Err(response) = push_job(shared, &job, work) {
        settle_inflight(shared, key, &job);
        if let Some(state) = &shared.state {
            state.settled(key);
        }
        return response;
    }
    answer_job(request, shared, kind, &job).with_header("X-Klotski-Coalesce", "leader")
}

/// `POST /v1/run`: execute a scripted controller scenario. The body is a
/// scenario document; `?deadline_ms=N` bounds the whole run (initial plan
/// included) and `?wait=0` submits asynchronously like plan/audit.
fn submit_run(request: &Request, shared: &Arc<Shared>) -> Response {
    // Runs are counted by terminal outcome (`klotski_run_requests_total`
    // labels) when the worker resolves them, not at admission.
    if shared.draining() {
        shared.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
        return Response::json(503, &ErrorResponse::new("draining; not accepting work"))
            .with_header("Retry-After", "1");
    }
    let mut deadline_ms = None;
    for (key, value) in &request.query {
        match key.as_str() {
            "deadline_ms" => match value.parse() {
                Ok(ms) => deadline_ms = Some(ms),
                Err(_) => {
                    shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                    return Response::json(
                        400,
                        &ErrorResponse::new(format!("bad deadline_ms {value:?}")),
                    );
                }
            },
            "wait" => {}
            other => {
                shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                return Response::json(
                    400,
                    &ErrorResponse::new(format!("unknown query parameter {other:?}")),
                );
            }
        }
    }
    let body = match std::str::from_utf8(&request.body) {
        Ok(b) => b,
        Err(_) => {
            shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            return Response::json(400, &ErrorResponse::new("body is not UTF-8"));
        }
    };
    let scenario = match Scenario::from_json(body) {
        Ok(s) => s,
        Err(e) => {
            shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            return Response::json(422, &ErrorResponse::new(e.to_string()));
        }
    };

    enqueue_and_answer(
        request,
        shared,
        JobKind::Run,
        Work::Run {
            scenario,
            deadline_ms,
        },
    )
}

/// Admits `work` into the bounded queue and answers: 503 on backpressure,
/// 202 + job id for `?wait=0` (or a sync-wait timeout), otherwise the
/// finished result.
fn enqueue_and_answer(
    request: &Request,
    shared: &Arc<Shared>,
    kind: JobKind,
    work: Work,
) -> Response {
    let job = shared.jobs.create(kind);
    match push_job(shared, &job, work) {
        Ok(()) => answer_job(request, shared, kind, &job),
        Err(response) => response,
    }
}

/// Pushes an admitted job into the bounded queue. On backpressure the job
/// is failed and the 503 response to answer with is returned.
fn push_job(shared: &Arc<Shared>, job: &Arc<Job>, work: Work) -> Result<(), Response> {
    let queued = QueuedJob {
        job: Arc::clone(job),
        work,
    };
    match shared.queue.try_push(queued) {
        Ok(()) => Ok(()),
        Err(PushError::Full(_)) => {
            shared.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
            job.fail(503, "queue full");
            Err(Response::json(
                503,
                &ErrorResponse::new(format!(
                    "queue full ({} jobs queued); retry later",
                    shared.queue.capacity()
                )),
            )
            .with_header("Retry-After", "1"))
        }
        Err(PushError::Closed(_)) => {
            shared.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
            job.fail(503, "draining");
            Err(
                Response::json(503, &ErrorResponse::new("draining; not accepting work"))
                    .with_header("Retry-After", "1"),
            )
        }
    }
}

/// Answers for an already-enqueued job: 202 + job id for `?wait=0` (or a
/// sync-wait timeout), otherwise the finished result.
fn answer_job(request: &Request, shared: &Arc<Shared>, kind: JobKind, job: &Arc<Job>) -> Response {
    if request.query_param("wait") == Some("0") {
        return Response::json(
            202,
            &AcceptedResponse {
                job: job.id.to_string(),
            },
        )
        .with_header("Location", format!("/v1/jobs/{}", job.id));
    }
    match job.wait(shared.config.sync_wait) {
        Some(Ok(output)) => {
            let cached = output.plan().is_some_and(|a| a.summary.cached);
            finished_response(kind, &output, cached)
        }
        Some(Err(e)) => Response::json(e.status, &ErrorResponse::new(e.message)),
        None => Response::json(
            202,
            &AcceptedResponse {
                job: job.id.to_string(),
            },
        )
        .with_header("Location", format!("/v1/jobs/{}", job.id)),
    }
}

/// Renders a finished job for its request kind. Plan responses are the
/// raw plan-attached NPD bytes (byte-identical to the CLI); audit
/// responses are the summary + safety timeline; run responses are the
/// controller's full report.
fn finished_response(kind: JobKind, output: &JobOutput, cached: bool) -> Response {
    let cache_header = if cached { "hit" } else { "miss" };
    match (kind, output) {
        (JobKind::Plan, JobOutput::Plan(artifact)) => {
            Response::raw_json(200, artifact.plan_json.clone())
                .with_header("X-Klotski-Cache", cache_header)
                .with_header("X-Klotski-Digest", artifact.summary.npd_digest.clone())
                .with_header("X-Klotski-Cost", format!("{}", artifact.summary.cost))
        }
        (JobKind::Audit, JobOutput::Plan(artifact)) => {
            // Pre-encoded per (artifact, cached): cache hits skip the JSON
            // serialization entirely and answer with the bytes the first
            // responder rendered.
            Response::raw_json(200, artifact.audit_response_bytes(cached).as_ref().clone())
                .with_header("X-Klotski-Cache", cache_header)
        }
        (_, JobOutput::Run(run)) => Response::raw_json(200, run.json.clone())
            .with_header("X-Klotski-Run-Outcome", run.report.outcome_label())
            .with_header(
                "X-Klotski-Run-Fingerprint",
                format!("{:016x}", run.report.fingerprint()),
            ),
        // A kind/output mismatch cannot happen (workers publish the output
        // matching the job's kind); answer the bytes we do have.
        (JobKind::Run, JobOutput::Plan(artifact)) => {
            Response::raw_json(200, artifact.plan_json.clone())
        }
    }
}

/// `GET /v1/jobs/{id}` and `GET /v1/jobs/{id}/result`.
fn job_endpoint(request: &Request, shared: &Arc<Shared>) -> Response {
    let rest = &request.path["/v1/jobs/".len()..];
    let (id_str, want_result) = match rest.strip_suffix("/result") {
        Some(id) => (id, true),
        None => (rest, false),
    };
    let Ok(id) = id_str.parse::<u64>() else {
        shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
        return Response::json(400, &ErrorResponse::new(format!("bad job id {id_str:?}")));
    };
    let Some(job) = shared.jobs.get(id) else {
        return Response::json(404, &ErrorResponse::new(format!("no job {id}")));
    };
    let (state, output, error) = job.status();
    if want_result {
        return match (output, error) {
            (Some(o), _) => {
                let cached = o.plan().is_some_and(|a| a.summary.cached);
                finished_response(job.kind, &o, cached)
            }
            (None, Some(e)) => Response::json(e.status, &ErrorResponse::new(e.message)),
            (None, None) => Response::json(
                409,
                &ErrorResponse::new(format!("job {id} not finished (state {state:?})")),
            )
            .with_header("Retry-After", "1"),
        };
    }
    Response::json(
        200,
        &JobStatusResponse {
            id: id.to_string(),
            kind: job.kind.label().to_string(),
            state,
            error: error.map(|e| e.message),
            // Run jobs have no plan summary; their result endpoint carries
            // the full controller report instead.
            summary: output.and_then(|o| o.plan().map(|a| a.summary.clone())),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_npd::api::AuditResponse;
    use klotski_npd::convert::region_to_npd;
    use klotski_topology::presets::{self, PresetId};
    use std::io::{Read, Write};
    use std::time::Instant;

    fn small_npd_json() -> String {
        region_to_npd(&presets::config(PresetId::A))
            .to_json_pretty()
            .unwrap()
    }

    fn request(addr: SocketAddr, head: &str, body: &str) -> (u16, Vec<(String, String)>, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let msg = format!("{head}\r\nContent-Length: {}\r\n\r\n{body}", body.len());
        stream.write_all(msg.as_bytes()).unwrap();
        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).unwrap();
        let reply = String::from_utf8(reply).unwrap();
        let (head, body) = reply.split_once("\r\n\r\n").unwrap();
        let mut lines = head.split("\r\n");
        let status: u16 = lines
            .next()
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let headers = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        (status, headers, body.to_string())
    }

    fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    #[test]
    fn plan_audit_cache_and_metrics_end_to_end() {
        let service = Service::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = service.local_addr();
        let npd = small_npd_json();

        let (status, _, body) = request(addr, "GET /healthz HTTP/1.1\r\nHost: t", "");
        assert_eq!((status, body.as_str()), (200, "ok"));

        // First plan: a cache miss that returns the plan-attached document.
        let (status, headers, body) = request(addr, "POST /v1/plan HTTP/1.1\r\nHost: t", &npd);
        assert_eq!(status, 200, "{body}");
        assert_eq!(header(&headers, "x-klotski-cache"), Some("miss"));
        let shipped = Npd::from_json(&body).unwrap();
        assert!(!shipped.phases.is_empty());

        // Second identical plan: served from cache, byte-identical.
        let (status, headers, body2) = request(addr, "POST /v1/plan HTTP/1.1\r\nHost: t", &npd);
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "x-klotski-cache"), Some("hit"));
        assert_eq!(body, body2);

        // Audit of the same document also hits the cache.
        let (status, headers, body) = request(addr, "POST /v1/audit HTTP/1.1\r\nHost: t", &npd);
        assert_eq!(status, 200, "{body}");
        assert_eq!(header(&headers, "x-klotski-cache"), Some("hit"));
        let audit: AuditResponse = serde_json::from_str(&body).unwrap();
        assert!(audit.summary.cached);
        assert_eq!(audit.audit.phases.len(), audit.summary.phases);
        assert!(audit.audit.peak_utilization() <= audit.audit.theta + 1e-9);

        let (status, _, text) = request(addr, "GET /metrics HTTP/1.1\r\nHost: t", "");
        assert_eq!(status, 200);
        assert!(text.contains("klotski_plan_requests_total 2"), "{text}");
        assert!(text.contains("klotski_audit_requests_total 1"));
        assert!(text.contains("klotski_jobs_completed_total 1"));
        assert!(text.contains("klotski_plan_latency_seconds_count 1"));
        // The process-wide registry rides along: the plan above flushed
        // search introspection counters.
        assert!(text.contains("klotski_search_expansions_total"), "{text}");
        assert!(text.contains("klotski_search_esc_hits_total"));
        assert!(text.contains("klotski_pool_tasks_total"));

        service.shutdown();
    }

    #[test]
    fn expired_deadline_cancels_job_and_traces_it() {
        let ring = Arc::new(klotski_telemetry::RingSink::new(1 << 14));
        let saved = klotski_telemetry::swap(Some(ring.clone()));

        let service = Service::start(ServiceConfig {
            workers: 1,
            cache_capacity: 0,
            default_deadline: Some(Duration::ZERO),
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = service.local_addr();
        let npd = small_npd_json();

        let (status, _, body) = request(addr, "POST /v1/plan HTTP/1.1\r\nHost: t", &npd);
        assert_eq!(status, 504, "{body}");
        let err: ErrorResponse = serde_json::from_str(&body).unwrap();
        assert!(err.error.contains("budget"), "{}", err.error);

        let (_, _, text) = request(addr, "GET /metrics HTTP/1.1\r\nHost: t", "");
        assert!(text.contains("klotski_jobs_cancelled_total 1"), "{text}");
        assert!(text.contains("klotski_jobs_failed_total 1"));

        service.shutdown();
        klotski_telemetry::swap(saved);

        // The sink is process-global, so service.job spans from other
        // tests running concurrently in this binary (outcome done/cached)
        // land in the same ring; select ours by its terminal outcome.
        let deadline_span = ring
            .lines()
            .iter()
            .filter_map(|l| klotski_telemetry::parse_line(l).ok())
            .find_map(|r| match r {
                klotski_telemetry::Record::Span { name, fields, .. }
                    if name == "service.job"
                        && fields.get("outcome").and_then(|v| v.as_str()) == Some("deadline") =>
                {
                    Some(fields)
                }
                _ => None,
            });
        assert!(
            deadline_span.is_some(),
            "no service.job span with outcome=\"deadline\" in trace: {:?}",
            ring.lines()
        );
    }

    #[test]
    fn async_submission_polls_to_completion() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            cache_capacity: 0, // force real planning
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = service.local_addr();
        let npd = small_npd_json();

        let (status, headers, body) =
            request(addr, "POST /v1/plan?wait=0 HTTP/1.1\r\nHost: t", &npd);
        assert_eq!(status, 202, "{body}");
        let accepted: AcceptedResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(
            header(&headers, "location"),
            Some(format!("/v1/jobs/{}", accepted.job).as_str())
        );

        // Poll until done.
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (status, _, body) = request(
                addr,
                &format!("GET /v1/jobs/{} HTTP/1.1\r\nHost: t", accepted.job),
                "",
            );
            assert_eq!(status, 200, "{body}");
            let poll: JobStatusResponse = serde_json::from_str(&body).unwrap();
            match poll.state {
                klotski_npd::api::JobState::Done => {
                    let summary = poll.summary.expect("summary on done");
                    assert!(summary.phases > 0);
                    break;
                }
                klotski_npd::api::JobState::Failed => panic!("job failed: {:?}", poll.error),
                _ => std::thread::sleep(Duration::from_millis(25)),
            }
            assert!(Instant::now() < deadline, "job never finished");
        }

        // Fetch the raw result bytes.
        let (status, _, body) = request(
            addr,
            &format!("GET /v1/jobs/{}/result HTTP/1.1\r\nHost: t", accepted.job),
            "",
        );
        assert_eq!(status, 200);
        assert!(Npd::from_json(&body).is_ok());

        service.shutdown();
    }

    #[test]
    fn scenario_run_end_to_end() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = service.local_addr();
        let scenario = serde_json::to_string(&klotski_controller::Scenario::sample()).unwrap();

        // Synchronous run: the full controller report comes back.
        let (status, headers, body) = request(addr, "POST /v1/run HTTP/1.1\r\nHost: t", &scenario);
        assert_eq!(status, 200, "{body}");
        assert_eq!(header(&headers, "x-klotski-run-outcome"), Some("completed"));
        let report: klotski_controller::ControllerReport = serde_json::from_str(&body).unwrap();
        assert!(report.completed);
        assert!(!report.steps.is_empty());
        assert_eq!(
            header(&headers, "x-klotski-run-fingerprint"),
            Some(format!("{:016x}", report.fingerprint()).as_str())
        );

        // Invalid scenarios are rejected before admission.
        let (status, _, body) = request(
            addr,
            "POST /v1/run HTTP/1.1\r\nHost: t",
            r#"{"name": "x", "preset": "nope"}"#,
        );
        assert_eq!(status, 422, "{body}");
        let err: ErrorResponse = serde_json::from_str(&body).unwrap();
        assert!(err.error.contains("unknown preset"), "{}", err.error);

        // Async submission polls to completion; run jobs carry no plan
        // summary, the result endpoint returns the report bytes.
        let (status, _, body) = request(addr, "POST /v1/run?wait=0 HTTP/1.1\r\nHost: t", &scenario);
        assert_eq!(status, 202, "{body}");
        let accepted: AcceptedResponse = serde_json::from_str(&body).unwrap();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (status, _, body) = request(
                addr,
                &format!("GET /v1/jobs/{} HTTP/1.1\r\nHost: t", accepted.job),
                "",
            );
            assert_eq!(status, 200, "{body}");
            let poll: JobStatusResponse = serde_json::from_str(&body).unwrap();
            match poll.state {
                klotski_npd::api::JobState::Done => {
                    assert_eq!(poll.kind, "run");
                    assert!(poll.summary.is_none(), "run jobs have no plan summary");
                    break;
                }
                klotski_npd::api::JobState::Failed => panic!("run failed: {:?}", poll.error),
                _ => std::thread::sleep(Duration::from_millis(25)),
            }
            assert!(Instant::now() < deadline, "run never finished");
        }
        let (status, _, body) = request(
            addr,
            &format!("GET /v1/jobs/{}/result HTTP/1.1\r\nHost: t", accepted.job),
            "",
        );
        assert_eq!(status, 200);
        let polled: klotski_controller::ControllerReport = serde_json::from_str(&body).unwrap();
        assert_eq!(polled.fingerprint(), report.fingerprint());

        // The outcome-labeled run counter and the process-wide controller
        // metrics surface. The invalid scenario was rejected pre-admission,
        // so it lands in bad_requests, not the outcome counters.
        let (_, _, text) = request(addr, "GET /metrics HTTP/1.1\r\nHost: t", "");
        assert!(
            text.contains("klotski_run_requests_total{outcome=\"completed\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("klotski_run_requests_total{outcome=\"failed\"} 0"),
            "{text}"
        );
        assert!(text.contains("klotski_controller_phases_applied_total"));
        assert!(text.contains("klotski_controller_replan_seconds"));

        service.shutdown();
    }

    /// Sends a GET and dechunks a `Transfer-Encoding: chunked` reply,
    /// reading the connection to EOF (the server closes after the terminal
    /// chunk).
    fn stream_request(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let msg = format!("GET {path} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
        stream.write_all(msg.as_bytes()).unwrap();
        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).unwrap();
        let reply = String::from_utf8(reply).unwrap();
        let (head, raw_body) = reply.split_once("\r\n\r\n").unwrap();
        let mut lines = head.split("\r\n");
        let status: u16 = lines
            .next()
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        let chunked = headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && v == "chunked");
        let body = if chunked {
            dechunk(raw_body)
        } else {
            raw_body.to_string()
        };
        (status, headers, body)
    }

    fn dechunk(mut raw: &str) -> String {
        let mut out = String::new();
        loop {
            let (size_line, rest) = raw.split_once("\r\n").expect("chunk size line");
            let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
            if size == 0 {
                return out;
            }
            out.push_str(&rest[..size]);
            raw = &rest[size + 2..]; // skip the payload's trailing CRLF
        }
    }

    #[test]
    fn event_stream_follows_a_run_to_its_terminal_event() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            sse_heartbeat: Duration::from_millis(50),
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = service.local_addr();
        // A tight progress interval so planner progress reaches the stream.
        let mut scenario = klotski_controller::Scenario::sample();
        scenario.progress_every = Some(1);
        let scenario = serde_json::to_string(&scenario).unwrap();

        // Occupy the single worker with one run, then queue the observed
        // run behind it: the subscriber below attaches while job 2 is
        // still queued, so the stream carries its trace from the first
        // event.
        let (status, _, _) = request(addr, "POST /v1/run?wait=0 HTTP/1.1\r\nHost: t", &scenario);
        assert_eq!(status, 202);
        let (status, _, body) = request(addr, "POST /v1/run?wait=0 HTTP/1.1\r\nHost: t", &scenario);
        assert_eq!(status, 202, "{body}");
        let accepted: AcceptedResponse = serde_json::from_str(&body).unwrap();

        let (status, headers, events) =
            stream_request(addr, &format!("/v1/jobs/{}/events", accepted.job));
        assert_eq!(status, 200, "{events}");
        assert_eq!(header(&headers, "content-type"), Some("text/event-stream"));

        // Live trace lines from this run streamed before the terminal
        // event: controller phases and (tight-interval) planner progress.
        assert!(events.contains("event: trace\n"), "{events}");
        assert!(events.contains("controller."), "{events}");
        assert!(events.contains("astar.progress"), "{events}");

        // The terminal event is last and byte-matches the result headers.
        let end_data = events
            .rsplit("event: end\ndata: ")
            .next()
            .expect("end event");
        let end_json = end_data.split('\n').next().unwrap();
        let end: serde::Value = serde_json::from_str(end_json).unwrap();
        let end = end.as_object().expect("end event is an object");
        let (status, result_headers, _) = request(
            addr,
            &format!("GET /v1/jobs/{}/result HTTP/1.1\r\nHost: t", accepted.job),
            "",
        );
        assert_eq!(status, 200);
        assert_eq!(
            end.get("outcome").and_then(|v| v.as_str()),
            header(&result_headers, "x-klotski-run-outcome"),
        );
        assert_eq!(
            end.get("fingerprint").and_then(|v| v.as_str()),
            header(&result_headers, "x-klotski-run-fingerprint"),
        );

        let (_, _, text) = request(addr, "GET /metrics HTTP/1.1\r\nHost: t", "");
        assert!(text.contains("klotski_sse_streams_total 1"), "{text}");

        service.shutdown();
    }

    #[test]
    fn event_stream_sheds_beyond_the_subscriber_cap() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            sse_max_subscribers: 0,
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = service.local_addr();
        let scenario = serde_json::to_string(&klotski_controller::Scenario::sample()).unwrap();
        let (status, _, body) = request(addr, "POST /v1/run?wait=0 HTTP/1.1\r\nHost: t", &scenario);
        assert_eq!(status, 202, "{body}");
        let accepted: AcceptedResponse = serde_json::from_str(&body).unwrap();

        let (status, headers, body) =
            stream_request(addr, &format!("/v1/jobs/{}/events", accepted.job));
        assert_eq!(status, 503, "{body}");
        assert_eq!(header(&headers, "retry-after"), Some("1"));

        // Bad ids and unknown jobs answer without streaming.
        let (status, _, _) = stream_request(addr, "/v1/jobs/nope/events");
        assert_eq!(status, 400);

        service.shutdown();
    }

    #[test]
    fn stalled_subscriber_drops_lines_without_changing_the_run() {
        // A one-line queue that is never drained: every event after the
        // first overflows. The run itself must not notice.
        let sub = klotski_telemetry::bus().subscribe(0, 1);

        let scenario = klotski_controller::Scenario::sample();
        let baseline = klotski_controller::run_scenario(&scenario, None)
            .expect("baseline run")
            .fingerprint();

        let service = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = service.local_addr();
        let body = serde_json::to_string(&scenario).unwrap();
        let (status, headers, reply) = request(addr, "POST /v1/run HTTP/1.1\r\nHost: t", &body);
        assert_eq!(status, 200, "{reply}");
        assert_eq!(
            header(&headers, "x-klotski-run-fingerprint"),
            Some(format!("{baseline:016x}").as_str()),
            "a lagging subscriber must not perturb the run"
        );
        assert!(sub.dropped() > 0, "the stalled queue must have overflowed");

        service.shutdown();
    }

    #[test]
    fn invalid_inputs_get_4xx_envelopes() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = service.local_addr();

        let (status, _, body) = request(addr, "POST /v1/plan HTTP/1.1\r\nHost: t", "{not json");
        assert_eq!(status, 422, "{body}");
        let err: ErrorResponse = serde_json::from_str(&body).unwrap();
        assert!(err.error.contains("invalid NPD"));

        let (status, _, _) = request(addr, "POST /v1/plan?theta=bogus HTTP/1.1\r\nHost: t", "{}");
        assert_eq!(status, 400);

        let (status, _, _) = request(addr, "GET /v1/jobs/999 HTTP/1.1\r\nHost: t", "");
        assert_eq!(status, 404);

        let (status, _, _) = request(addr, "DELETE /v1/plan HTTP/1.1\r\nHost: t", "");
        assert_eq!(status, 405);

        let (status, _, _) = request(addr, "GET /nope HTTP/1.1\r\nHost: t", "");
        assert_eq!(status, 404);

        service.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_503_and_retry_after() {
        // No workers: nothing drains, so the queue fills deterministically.
        // Coalescing off — identical submissions must each take a slot.
        let service = Service::start(ServiceConfig {
            workers: 0,
            queue_depth: 2,
            cache_capacity: 0,
            coalesce: false,
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = service.local_addr();
        let npd = small_npd_json();

        for _ in 0..2 {
            let (status, _, _) = request(addr, "POST /v1/plan?wait=0 HTTP/1.1\r\nHost: t", &npd);
            assert_eq!(status, 202);
        }
        let (status, headers, body) =
            request(addr, "POST /v1/plan?wait=0 HTTP/1.1\r\nHost: t", &npd);
        assert_eq!(status, 503, "{body}");
        assert_eq!(header(&headers, "retry-after"), Some("1"));
        let err: ErrorResponse = serde_json::from_str(&body).unwrap();
        assert!(err.error.contains("queue full"));

        let (_, _, text) = request(addr, "GET /metrics HTTP/1.1\r\nHost: t", "");
        assert!(text.contains("klotski_rejected_busy_total 1"), "{text}");
        assert!(text.contains("klotski_queue_depth 2"));

        service.shutdown();
    }

    #[test]
    fn followers_share_the_leaders_job_without_enqueueing() {
        // No workers: the leader's job sits queued, so follower status is
        // deterministic — duplicates must reuse its job id and take no
        // queue slot.
        let service = Service::start(ServiceConfig {
            workers: 0,
            queue_depth: 8,
            cache_capacity: 0,
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = service.local_addr();
        let npd = small_npd_json();

        let (status, headers, body) =
            request(addr, "POST /v1/plan?wait=0 HTTP/1.1\r\nHost: t", &npd);
        assert_eq!(status, 202, "{body}");
        assert_eq!(header(&headers, "x-klotski-coalesce"), Some("leader"));
        let leader: AcceptedResponse = serde_json::from_str(&body).unwrap();
        for _ in 0..2 {
            let (status, headers, body) =
                request(addr, "POST /v1/plan?wait=0 HTTP/1.1\r\nHost: t", &npd);
            assert_eq!(status, 202, "{body}");
            assert_eq!(header(&headers, "x-klotski-coalesce"), Some("follower"));
            let follower: AcceptedResponse = serde_json::from_str(&body).unwrap();
            assert_eq!(follower.job, leader.job, "followers share the job id");
        }

        let (_, _, text) = request(addr, "GET /metrics HTTP/1.1\r\nHost: t", "");
        assert!(text.contains("klotski_coalesce_leaders_total 1"), "{text}");
        assert!(
            text.contains("klotski_coalesce_followers_total 2"),
            "{text}"
        );
        assert!(
            text.contains("klotski_queue_depth 1"),
            "followers must not enqueue: {text}"
        );

        service.shutdown();
    }

    #[test]
    fn warm_restart_answers_known_digests_without_planning() {
        let dir = std::env::temp_dir().join(format!("klotski-serve-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let config = || ServiceConfig {
            workers: 1,
            state_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        };
        let npd = small_npd_json();

        let service = Service::start(config()).unwrap();
        let (status, headers, cold) = request(
            service.local_addr(),
            "POST /v1/plan HTTP/1.1\r\nHost: t",
            &npd,
        );
        assert_eq!(status, 200, "{cold}");
        assert_eq!(header(&headers, "x-klotski-cache"), Some("miss"));
        service.shutdown();

        // The restarted daemon replays the journal: the digest answers as
        // a cache hit, byte-identical, with zero pipeline executions.
        let service = Service::start(config()).unwrap();
        let addr = service.local_addr();
        let (status, headers, warm) = request(addr, "POST /v1/plan HTTP/1.1\r\nHost: t", &npd);
        assert_eq!(status, 200, "{warm}");
        assert_eq!(header(&headers, "x-klotski-cache"), Some("hit"));
        assert_eq!(cold, warm, "replayed artifact must be byte-identical");

        let (_, _, text) = request(addr, "GET /metrics HTTP/1.1\r\nHost: t", "");
        assert!(
            text.contains("klotski_pipeline_executions_total 0"),
            "{text}"
        );
        assert!(
            text.contains("klotski_state_replayed_artifacts 1"),
            "{text}"
        );

        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            cache_capacity: 0,
            ..ServiceConfig::default()
        })
        .unwrap();
        let addr = service.local_addr();
        let npd = small_npd_json();
        let (status, _, body) = request(addr, "POST /v1/plan?wait=0 HTTP/1.1\r\nHost: t", &npd);
        assert_eq!(status, 202);
        let accepted: AcceptedResponse = serde_json::from_str(&body).unwrap();
        let shared = Arc::clone(&service.shared);

        // Shutdown must block until the admitted job has been planned.
        service.shutdown();
        let job = shared.jobs.get(accepted.job.parse().unwrap()).unwrap();
        let (state, artifact, error) = job.status();
        assert_eq!(state, klotski_npd::api::JobState::Done, "error: {error:?}");
        assert!(artifact.is_some());
    }
}
