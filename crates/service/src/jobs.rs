//! Job lifecycle tracking: every accepted submission becomes a [`Job`]
//! that connection threads can wait on (synchronous requests) or poll
//! (`GET /v1/jobs/{id}` after a `?wait=0` submission).
//!
//! A job's phase is a Mutex+Condvar cell; workers publish exactly one
//! terminal transition (`Done` or `Failed`), waking every waiter. The
//! [`JobTable`] keeps a bounded history of finished jobs so pollers can
//! fetch results after the fact without the table growing forever.

use crate::pipeline::PlanArtifact;
use klotski_controller::ControllerReport;
use klotski_npd::api::JobState;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What kind of work a job carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// `POST /v1/plan`: respond with the plan-attached NPD bytes.
    Plan,
    /// `POST /v1/audit`: respond with the summary + safety audit.
    Audit,
    /// `POST /v1/run`: execute a scripted controller scenario.
    Run,
}

impl JobKind {
    /// Wire label used in job status responses.
    pub fn label(self) -> &'static str {
        match self {
            JobKind::Plan => "plan",
            JobKind::Audit => "audit",
            JobKind::Run => "run",
        }
    }
}

/// A finished controller run: the full report plus its JSON, serialized
/// once at completion so every poller gets the same bytes.
#[derive(Debug)]
pub struct RunArtifact {
    /// The controller's full run trace.
    pub report: ControllerReport,
    /// `report` as pretty JSON, the `POST /v1/run` response body.
    pub json: Vec<u8>,
}

/// What a successfully finished job publishes.
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// Plan/audit pipeline artifact.
    Plan(Arc<PlanArtifact>),
    /// Controller run report.
    Run(Arc<RunArtifact>),
}

impl JobOutput {
    /// The plan artifact, when this is a plan/audit job.
    pub fn plan(&self) -> Option<&Arc<PlanArtifact>> {
        match self {
            JobOutput::Plan(a) => Some(a),
            JobOutput::Run(_) => None,
        }
    }
}

/// A terminal failure, carrying the HTTP status the serving layer should
/// answer with (422 infeasible/invalid, 504 deadline, 500 internal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// HTTP status code for this failure class.
    pub status: u16,
    /// Human-readable cause.
    pub message: String,
}

/// Internal lifecycle cell.
#[derive(Debug)]
enum Phase {
    Queued,
    Running,
    Done(JobOutput),
    Failed(JobError),
}

/// One accepted submission.
pub struct Job {
    /// Monotonic job id, also the `/v1/jobs/{id}` path segment.
    pub id: u64,
    /// Plan or audit.
    pub kind: JobKind,
    /// When the job was admitted (drives the end-to-end latency metric).
    pub admitted: Instant,
    /// Telemetry stream id: the worker tags its thread with this while the
    /// job runs, so `GET /v1/jobs/{id}/events` subscribers receive exactly
    /// this job's events from the process-global bus.
    pub stream: u64,
    phase: Mutex<Phase>,
    done: Condvar,
}

impl Job {
    /// A freshly admitted job.
    pub fn new(id: u64, kind: JobKind) -> Self {
        Self {
            id,
            kind,
            admitted: Instant::now(),
            stream: klotski_telemetry::bus().next_stream_id(),
            phase: Mutex::new(Phase::Queued),
            done: Condvar::new(),
        }
    }

    /// Marks the job running (worker picked it up).
    pub fn set_running(&self) {
        *self.phase.lock().unwrap() = Phase::Running;
    }

    /// Publishes success and wakes all waiters.
    pub fn complete(&self, output: JobOutput) {
        *self.phase.lock().unwrap() = Phase::Done(output);
        self.done.notify_all();
    }

    /// Publishes failure and wakes all waiters.
    pub fn fail(&self, status: u16, message: impl Into<String>) {
        *self.phase.lock().unwrap() = Phase::Failed(JobError {
            status,
            message: message.into(),
        });
        self.done.notify_all();
    }

    /// Current state plus outcome, without blocking.
    pub fn status(&self) -> (JobState, Option<JobOutput>, Option<JobError>) {
        match &*self.phase.lock().unwrap() {
            Phase::Queued => (JobState::Queued, None, None),
            Phase::Running => (JobState::Running, None, None),
            Phase::Done(o) => (JobState::Done, Some(o.clone()), None),
            Phase::Failed(e) => (JobState::Failed, None, Some(e.clone())),
        }
    }

    /// Blocks until the job reaches a terminal state or `timeout` passes.
    /// Returns `None` on timeout (the job keeps running; poll later).
    pub fn wait(&self, timeout: Duration) -> Option<Result<JobOutput, JobError>> {
        let deadline = Instant::now() + timeout;
        let mut phase = self.phase.lock().unwrap();
        loop {
            match &*phase {
                Phase::Done(o) => return Some(Ok(o.clone())),
                Phase::Failed(e) => return Some(Err(e.clone())),
                _ => {}
            }
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let (next, timed_out) = self.done.wait_timeout(phase, remaining).unwrap();
            phase = next;
            if timed_out.timed_out() {
                match &*phase {
                    Phase::Done(o) => return Some(Ok(o.clone())),
                    Phase::Failed(e) => return Some(Err(e.clone())),
                    _ => return None,
                }
            }
        }
    }
}

/// Bounded registry of live and recently finished jobs.
pub struct JobTable {
    inner: Mutex<TableInner>,
    capacity: usize,
}

struct TableInner {
    jobs: HashMap<u64, Arc<Job>>,
    order: VecDeque<u64>,
    next_id: u64,
}

impl JobTable {
    /// A table remembering at most `capacity` jobs (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(TableInner {
                jobs: HashMap::new(),
                order: VecDeque::new(),
                next_id: 1,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Registers a new job, evicting the oldest once over capacity.
    pub fn create(&self, kind: JobKind) -> Arc<Job> {
        let mut inner = self.inner.lock().unwrap();
        let id = inner.next_id;
        inner.next_id += 1;
        let job = Arc::new(Job::new(id, kind));
        inner.jobs.insert(id, Arc::clone(&job));
        inner.order.push_back(id);
        while inner.order.len() > self.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.jobs.remove(&old);
            }
        }
        job
    }

    /// Looks up a job by id.
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        self.inner.lock().unwrap().jobs.get(&id).cloned()
    }

    /// Number of remembered jobs.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().jobs.len()
    }

    /// True when no jobs are remembered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_core::report::PlanAudit;
    use klotski_npd::api::PlanSummary;

    fn artifact() -> Arc<PlanArtifact> {
        Arc::new(PlanArtifact::new(
            PlanSummary {
                name: "t".into(),
                npd_digest: "0".into(),
                options_digest: "0".into(),
                planner: "klotski-a*".into(),
                cost: 1.0,
                phases: 1,
                steps: 1,
                states_visited: 1,
                states_generated: 1,
                states_pruned: 0,
                states_deduped: 0,
                sat_checks: 1,
                cache_hits: 0,
                full_evaluations: 1,
                incremental_clean: 0,
                incremental_dirty: 0,
                esc_entries: 0,
                esc_bytes: 0,
                satcheck_ms: 0,
                planning_ms: 0,
                ensemble_matrices: 0,
                ensemble_matrix_checks: 0,
                ensemble_short_circuits: 0,
                ensemble: vec![],
                cached: false,
            },
            b"{}".to_vec(),
            PlanAudit {
                migration: "t".into(),
                theta: 0.75,
                phases: vec![],
            },
        ))
    }

    #[test]
    fn lifecycle_transitions_publish_to_pollers() {
        let table = JobTable::new(8);
        let job = table.create(JobKind::Plan);
        assert_eq!(job.status().0, JobState::Queued);
        job.set_running();
        assert_eq!(job.status().0, JobState::Running);
        job.complete(JobOutput::Plan(artifact()));
        let (state, result, error) = job.status();
        assert_eq!(state, JobState::Done);
        assert!(result.is_some_and(|o| o.plan().is_some()));
        assert!(error.is_none());
    }

    #[test]
    fn wait_blocks_until_worker_publishes() {
        let job = Arc::new(Job::new(1, JobKind::Audit));
        let worker = {
            let job = Arc::clone(&job);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                job.fail(422, "infeasible");
            })
        };
        let outcome = job.wait(Duration::from_secs(5)).expect("terminal");
        let err = outcome.unwrap_err();
        assert_eq!(err.status, 422);
        assert_eq!(err.message, "infeasible");
        worker.join().unwrap();
    }

    #[test]
    fn wait_times_out_on_stuck_job() {
        let job = Job::new(2, JobKind::Plan);
        assert!(job.wait(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn table_evicts_oldest_beyond_capacity() {
        let table = JobTable::new(3);
        let ids: Vec<u64> = (0..5).map(|_| table.create(JobKind::Plan).id).collect();
        assert_eq!(table.len(), 3);
        assert!(table.get(ids[0]).is_none(), "oldest evicted");
        assert!(table.get(ids[4]).is_some(), "newest kept");
        // Ids are monotonic and unique.
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }
}
