//! Std-only service metrics: atomic counters plus a fixed-bucket latency
//! histogram, rendered in Prometheus text exposition format at `/metrics`.
//!
//! The histogram itself lives in `klotski-telemetry` (re-exported here for
//! compatibility) so the planner, routing, and service all share one
//! implementation; this module keeps the service-specific counter set and
//! its exposition layout, which operators' dashboards scrape.

use crate::cache::ShardStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

pub use klotski_telemetry::Histogram;

/// All service counters. Everything is relaxed-atomic: metrics never
/// contend with the request path.
#[derive(Debug)]
pub struct Metrics {
    /// HTTP requests accepted (any endpoint).
    pub http_requests: AtomicU64,
    /// `POST /v1/plan` submissions.
    pub plan_requests: AtomicU64,
    /// `POST /v1/audit` submissions.
    pub audit_requests: AtomicU64,
    /// `POST /v1/run` jobs by terminal outcome (counted when the run
    /// resolves, not at admission — pre-admission rejects land in
    /// `bad_requests`/`rejected_busy`).
    pub run_outcomes: RunOutcomes,
    /// Event streams served by `GET /v1/jobs/{id}/events`.
    pub sse_streams: AtomicU64,
    /// Trace lines dropped on lagging event-stream subscribers.
    pub sse_lag_dropped: AtomicU64,
    /// Malformed requests answered 4xx.
    pub bad_requests: AtomicU64,
    /// Submissions refused with 503 (queue full, connection cap, draining).
    pub rejected_busy: AtomicU64,
    /// Jobs that finished with a plan.
    pub jobs_completed: AtomicU64,
    /// Jobs that finished with an error.
    pub jobs_failed: AtomicU64,
    /// Jobs stopped by deadline expiry or cooperative cancellation
    /// (a subset of `jobs_failed`).
    pub jobs_cancelled: AtomicU64,
    /// Plan/audit submissions that became the one enqueued computation for
    /// their `(npd_digest, options_digest)` key.
    pub coalesce_leaders: AtomicU64,
    /// Plan/audit submissions answered by subscribing to an in-flight
    /// leader instead of enqueueing their own job.
    pub coalesce_followers: AtomicU64,
    /// Times the planning pipeline actually executed (cache hits, coalesced
    /// followers, and journal-replayed answers never increment this).
    pub pipeline_executions: AtomicU64,
    /// Artifacts restored into the plan cache by journal replay at startup.
    pub state_replayed_artifacts: AtomicU64,
    /// Incomplete jobs re-enqueued by journal replay at startup.
    pub state_replayed_jobs: AtomicU64,
    /// End-to-end plan/audit latency (admission to completion).
    pub latency: Histogram,
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh counters with the uptime clock started now.
    pub fn new() -> Self {
        Self {
            http_requests: AtomicU64::new(0),
            plan_requests: AtomicU64::new(0),
            audit_requests: AtomicU64::new(0),
            run_outcomes: RunOutcomes::default(),
            sse_streams: AtomicU64::new(0),
            sse_lag_dropped: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            coalesce_leaders: AtomicU64::new(0),
            coalesce_followers: AtomicU64::new(0),
            pipeline_executions: AtomicU64::new(0),
            state_replayed_artifacts: AtomicU64::new(0),
            state_replayed_jobs: AtomicU64::new(0),
            latency: Histogram::new(),
            started: Instant::now(),
        }
    }

    /// Seconds since the service started.
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// Terminal-outcome counters behind the labeled
/// `klotski_run_requests_total` family. The label vocabulary is
/// [`ControllerReport::outcome_label`] plus `failed` for jobs that never
/// produced a report (invalid scenario, initial-plan failure, deadline at
/// the initial plan).
///
/// [`ControllerReport::outcome_label`]: klotski_controller::ControllerReport::outcome_label
#[derive(Debug, Default)]
pub struct RunOutcomes {
    /// Runs that reached their target.
    pub completed: AtomicU64,
    /// Runs that ended in a rollback.
    pub rolled_back: AtomicU64,
    /// Runs that stopped early without rolling back.
    pub paused: AtomicU64,
    /// Jobs that errored before producing a report.
    pub failed: AtomicU64,
}

impl RunOutcomes {
    /// Increments the counter for `label`; unknown labels count as failed.
    pub fn record(&self, label: &str) {
        match label {
            "completed" => &self.completed,
            "rolled_back" => &self.rolled_back,
            "paused" => &self.paused,
            _ => &self.failed,
        }
        .fetch_add(1, Ordering::Relaxed);
    }
}

/// Point-in-time gauges owned by the server, passed in at render time.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Queue capacity.
    pub queue_capacity: usize,
    /// Worker threads currently planning.
    pub workers_busy: usize,
    /// Total worker threads.
    pub workers: usize,
    /// Entries in the shared plan cache.
    pub cache_entries: usize,
    /// Plan-cache hits since start.
    pub cache_hits: u64,
    /// Plan-cache misses since start.
    pub cache_misses: u64,
    /// Plan-cache FIFO evictions since start.
    pub cache_evictions: u64,
    /// Journal size in bytes (0 without `--state-dir`).
    pub journal_bytes: u64,
    /// Journal records appended since open.
    pub journal_records: u64,
    /// Journal compactions performed (the open-time rewrite included).
    pub journal_compactions: u64,
}

/// Renders the Prometheus text exposition for `/metrics`. `shards` is the
/// plan cache's per-shard counter view, in shard order.
pub fn render(m: &Metrics, g: &Gauges, shards: &[ShardStats]) -> String {
    let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
    let hit_rate = {
        let total = g.cache_hits + g.cache_misses;
        if total == 0 {
            0.0
        } else {
            g.cache_hits as f64 / total as f64
        }
    };
    let mut out = String::with_capacity(1024);
    // A macro rather than a closure so the labeled run-outcome block can
    // also push to `out` mid-sequence.
    macro_rules! line {
        ($name:expr, $help:expr, $value:expr $(,)?) => {{
            let (name, help, value): (&str, &str, String) = ($name, $help, $value);
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        }};
    }
    line!(
        "klotski_uptime_seconds",
        "Seconds since service start.",
        format!("{:.3}", m.uptime_seconds()),
    );
    line!(
        "klotski_http_requests_total",
        "HTTP requests accepted.",
        load(&m.http_requests).to_string(),
    );
    line!(
        "klotski_plan_requests_total",
        "Plan submissions.",
        load(&m.plan_requests).to_string(),
    );
    line!(
        "klotski_audit_requests_total",
        "Audit submissions.",
        load(&m.audit_requests).to_string(),
    );
    out.push_str(
        "# HELP klotski_run_requests_total Scenario runs by terminal outcome.\n\
         # TYPE klotski_run_requests_total gauge\n",
    );
    for (label, counter) in [
        ("completed", &m.run_outcomes.completed),
        ("rolled_back", &m.run_outcomes.rolled_back),
        ("paused", &m.run_outcomes.paused),
        ("failed", &m.run_outcomes.failed),
    ] {
        out.push_str(&format!(
            "klotski_run_requests_total{{outcome=\"{label}\"}} {}\n",
            load(counter)
        ));
    }
    line!(
        "klotski_sse_streams_total",
        "Event streams served by /v1/jobs/{id}/events.",
        load(&m.sse_streams).to_string(),
    );
    line!(
        "klotski_sse_lag_dropped_total",
        "Trace lines dropped on lagging event-stream subscribers.",
        load(&m.sse_lag_dropped).to_string(),
    );
    line!(
        "klotski_bad_requests_total",
        "Requests rejected 4xx.",
        load(&m.bad_requests).to_string(),
    );
    line!(
        "klotski_rejected_busy_total",
        "Submissions rejected 503 (backpressure).",
        load(&m.rejected_busy).to_string(),
    );
    line!(
        "klotski_jobs_completed_total",
        "Jobs finished successfully.",
        load(&m.jobs_completed).to_string(),
    );
    line!(
        "klotski_jobs_failed_total",
        "Jobs finished with an error.",
        load(&m.jobs_failed).to_string(),
    );
    line!(
        "klotski_jobs_cancelled_total",
        "Jobs stopped by deadline expiry or cancellation.",
        load(&m.jobs_cancelled).to_string(),
    );
    line!(
        "klotski_queue_depth",
        "Jobs waiting in the bounded queue.",
        g.queue_depth.to_string(),
    );
    line!(
        "klotski_queue_capacity",
        "Bounded queue capacity.",
        g.queue_capacity.to_string(),
    );
    line!(
        "klotski_workers",
        "Planner worker threads.",
        g.workers.to_string(),
    );
    line!(
        "klotski_workers_busy",
        "Worker threads currently planning.",
        g.workers_busy.to_string(),
    );
    line!(
        "klotski_cache_entries",
        "Entries in the shared plan cache.",
        g.cache_entries.to_string(),
    );
    line!(
        "klotski_cache_hits_total",
        "Plan-cache hits.",
        g.cache_hits.to_string(),
    );
    line!(
        "klotski_cache_misses_total",
        "Plan-cache misses.",
        g.cache_misses.to_string(),
    );
    line!(
        "klotski_cache_hit_rate",
        "Plan-cache hit fraction.",
        format!("{hit_rate:.4}"),
    );
    line!(
        "klotski_cache_evictions_total",
        "Plan-cache FIFO evictions.",
        g.cache_evictions.to_string(),
    );
    // Per-shard cache families: one labeled series per shard so a skewed
    // tenant population hammering a single shard is visible.
    for (family, help, stat) in [
        (
            "klotski_cache_shard_hits_total",
            "Plan-cache hits per shard.",
            (|s: &ShardStats| s.hits) as fn(&ShardStats) -> u64,
        ),
        (
            "klotski_cache_shard_misses_total",
            "Plan-cache misses per shard.",
            |s: &ShardStats| s.misses,
        ),
        (
            "klotski_cache_shard_evictions_total",
            "Plan-cache evictions per shard.",
            |s: &ShardStats| s.evictions,
        ),
    ] {
        out.push_str(&format!("# HELP {family} {help}\n# TYPE {family} gauge\n"));
        for (i, s) in shards.iter().enumerate() {
            out.push_str(&format!("{family}{{shard=\"{i}\"}} {}\n", stat(s)));
        }
    }
    line!(
        "klotski_coalesce_leaders_total",
        "Submissions that led an in-flight key.",
        load(&m.coalesce_leaders).to_string(),
    );
    line!(
        "klotski_coalesce_followers_total",
        "Submissions coalesced onto an in-flight leader.",
        load(&m.coalesce_followers).to_string(),
    );
    line!(
        "klotski_pipeline_executions_total",
        "Planning pipeline executions (work not absorbed by cache or coalescing).",
        load(&m.pipeline_executions).to_string(),
    );
    line!(
        "klotski_journal_bytes",
        "Write-ahead job journal size.",
        g.journal_bytes.to_string(),
    );
    line!(
        "klotski_journal_records_total",
        "Journal records appended since open.",
        g.journal_records.to_string(),
    );
    line!(
        "klotski_journal_compactions_total",
        "Journal compactions performed.",
        g.journal_compactions.to_string(),
    );
    line!(
        "klotski_state_replayed_artifacts",
        "Artifacts restored from the journal at startup.",
        load(&m.state_replayed_artifacts).to_string(),
    );
    line!(
        "klotski_state_replayed_jobs",
        "Incomplete jobs re-enqueued from the journal at startup.",
        load(&m.state_replayed_jobs).to_string(),
    );
    for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
        out.push_str(&format!(
            "klotski_plan_latency_seconds{{quantile=\"{label}\"}} {:.6}\n",
            m.latency.quantile(q)
        ));
    }
    out.push_str(&format!(
        "klotski_plan_latency_seconds_count {}\n",
        m.latency.count()
    ));
    out.push_str(&format!(
        "klotski_plan_latency_seconds_sum {:.6}\n",
        m.latency.sum_seconds()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantiles_are_monotonic_and_bracket_samples() {
        let h = Histogram::new();
        for ms in [1u64, 2, 5, 10, 20, 50, 100, 200, 500, 1000] {
            h.record(Duration::from_millis(ms));
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // The p50 sample (20 ms) must land in a bucket bounded near it.
        assert!((0.02..=0.04).contains(&p50), "p50 {p50}");
        assert!((1.0..=1.6).contains(&p99), "p99 {p99}");
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn overflow_samples_report_last_bound() {
        let h = Histogram::new();
        h.record(Duration::from_secs(3600));
        assert!(h.quantile(0.5) > 10.0);
    }

    #[test]
    fn render_exposes_all_families() {
        let m = Metrics::new();
        m.plan_requests.fetch_add(3, Ordering::Relaxed);
        m.coalesce_followers.fetch_add(6, Ordering::Relaxed);
        m.pipeline_executions.fetch_add(2, Ordering::Relaxed);
        m.latency.record(Duration::from_millis(12));
        let g = Gauges {
            queue_depth: 2,
            queue_capacity: 64,
            workers_busy: 1,
            workers: 4,
            cache_entries: 5,
            cache_hits: 9,
            cache_misses: 1,
            cache_evictions: 3,
            journal_bytes: 4096,
            journal_records: 11,
            journal_compactions: 1,
        };
        let shards = [
            ShardStats {
                entries: 5,
                hits: 9,
                misses: 1,
                evictions: 3,
            },
            ShardStats::default(),
        ];
        let text = render(&m, &g, &shards);
        for family in [
            "klotski_plan_requests_total 3",
            "klotski_queue_depth 2",
            "klotski_queue_capacity 64",
            "klotski_cache_hit_rate 0.9000",
            "klotski_cache_evictions_total 3",
            "klotski_cache_shard_hits_total{shard=\"0\"} 9",
            "klotski_cache_shard_misses_total{shard=\"1\"} 0",
            "klotski_cache_shard_evictions_total{shard=\"0\"} 3",
            "klotski_coalesce_leaders_total 0",
            "klotski_coalesce_followers_total 6",
            "klotski_pipeline_executions_total 2",
            "klotski_journal_bytes 4096",
            "klotski_journal_records_total 11",
            "klotski_journal_compactions_total 1",
            "klotski_state_replayed_artifacts 0",
            "klotski_state_replayed_jobs 0",
            "klotski_plan_latency_seconds{quantile=\"0.5\"}",
            "klotski_plan_latency_seconds_count 1",
            "klotski_workers 4",
            "klotski_run_requests_total{outcome=\"completed\"} 0",
            "klotski_sse_streams_total 0",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    /// The exact exposition text is an external contract — dashboards parse
    /// it. Pin every line (modulo the uptime value, which is wall-clock).
    #[test]
    fn render_snapshot_is_stable() {
        let m = Metrics::new();
        m.http_requests.fetch_add(7, Ordering::Relaxed);
        m.plan_requests.fetch_add(3, Ordering::Relaxed);
        m.audit_requests.fetch_add(1, Ordering::Relaxed);
        m.run_outcomes.record("completed");
        m.run_outcomes.record("rolled_back");
        m.run_outcomes.record("bogus-label");
        m.sse_streams.fetch_add(2, Ordering::Relaxed);
        m.sse_lag_dropped.fetch_add(5, Ordering::Relaxed);
        m.jobs_completed.fetch_add(4, Ordering::Relaxed);
        m.jobs_failed.fetch_add(2, Ordering::Relaxed);
        m.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
        m.coalesce_leaders.fetch_add(2, Ordering::Relaxed);
        m.coalesce_followers.fetch_add(6, Ordering::Relaxed);
        m.pipeline_executions.fetch_add(2, Ordering::Relaxed);
        m.state_replayed_artifacts.fetch_add(3, Ordering::Relaxed);
        m.state_replayed_jobs.fetch_add(1, Ordering::Relaxed);
        m.latency.record(Duration::from_millis(12));
        let g = Gauges {
            queue_depth: 2,
            queue_capacity: 64,
            workers_busy: 1,
            workers: 4,
            cache_entries: 5,
            cache_hits: 9,
            cache_misses: 1,
            cache_evictions: 3,
            journal_bytes: 4096,
            journal_records: 11,
            journal_compactions: 1,
        };
        let shards = [
            ShardStats {
                entries: 5,
                hits: 9,
                misses: 1,
                evictions: 3,
            },
            ShardStats::default(),
        ];
        let text = render(&m, &g, &shards);
        let normalized: String = text
            .lines()
            .map(|l| {
                if l.starts_with("klotski_uptime_seconds ") {
                    "klotski_uptime_seconds <uptime>"
                } else {
                    l
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let expected = "\
# HELP klotski_uptime_seconds Seconds since service start.
# TYPE klotski_uptime_seconds gauge
klotski_uptime_seconds <uptime>
# HELP klotski_http_requests_total HTTP requests accepted.
# TYPE klotski_http_requests_total gauge
klotski_http_requests_total 7
# HELP klotski_plan_requests_total Plan submissions.
# TYPE klotski_plan_requests_total gauge
klotski_plan_requests_total 3
# HELP klotski_audit_requests_total Audit submissions.
# TYPE klotski_audit_requests_total gauge
klotski_audit_requests_total 1
# HELP klotski_run_requests_total Scenario runs by terminal outcome.
# TYPE klotski_run_requests_total gauge
klotski_run_requests_total{outcome=\"completed\"} 1
klotski_run_requests_total{outcome=\"rolled_back\"} 1
klotski_run_requests_total{outcome=\"paused\"} 0
klotski_run_requests_total{outcome=\"failed\"} 1
# HELP klotski_sse_streams_total Event streams served by /v1/jobs/{id}/events.
# TYPE klotski_sse_streams_total gauge
klotski_sse_streams_total 2
# HELP klotski_sse_lag_dropped_total Trace lines dropped on lagging event-stream subscribers.
# TYPE klotski_sse_lag_dropped_total gauge
klotski_sse_lag_dropped_total 5
# HELP klotski_bad_requests_total Requests rejected 4xx.
# TYPE klotski_bad_requests_total gauge
klotski_bad_requests_total 0
# HELP klotski_rejected_busy_total Submissions rejected 503 (backpressure).
# TYPE klotski_rejected_busy_total gauge
klotski_rejected_busy_total 0
# HELP klotski_jobs_completed_total Jobs finished successfully.
# TYPE klotski_jobs_completed_total gauge
klotski_jobs_completed_total 4
# HELP klotski_jobs_failed_total Jobs finished with an error.
# TYPE klotski_jobs_failed_total gauge
klotski_jobs_failed_total 2
# HELP klotski_jobs_cancelled_total Jobs stopped by deadline expiry or cancellation.
# TYPE klotski_jobs_cancelled_total gauge
klotski_jobs_cancelled_total 1
# HELP klotski_queue_depth Jobs waiting in the bounded queue.
# TYPE klotski_queue_depth gauge
klotski_queue_depth 2
# HELP klotski_queue_capacity Bounded queue capacity.
# TYPE klotski_queue_capacity gauge
klotski_queue_capacity 64
# HELP klotski_workers Planner worker threads.
# TYPE klotski_workers gauge
klotski_workers 4
# HELP klotski_workers_busy Worker threads currently planning.
# TYPE klotski_workers_busy gauge
klotski_workers_busy 1
# HELP klotski_cache_entries Entries in the shared plan cache.
# TYPE klotski_cache_entries gauge
klotski_cache_entries 5
# HELP klotski_cache_hits_total Plan-cache hits.
# TYPE klotski_cache_hits_total gauge
klotski_cache_hits_total 9
# HELP klotski_cache_misses_total Plan-cache misses.
# TYPE klotski_cache_misses_total gauge
klotski_cache_misses_total 1
# HELP klotski_cache_hit_rate Plan-cache hit fraction.
# TYPE klotski_cache_hit_rate gauge
klotski_cache_hit_rate 0.9000
# HELP klotski_cache_evictions_total Plan-cache FIFO evictions.
# TYPE klotski_cache_evictions_total gauge
klotski_cache_evictions_total 3
# HELP klotski_cache_shard_hits_total Plan-cache hits per shard.
# TYPE klotski_cache_shard_hits_total gauge
klotski_cache_shard_hits_total{shard=\"0\"} 9
klotski_cache_shard_hits_total{shard=\"1\"} 0
# HELP klotski_cache_shard_misses_total Plan-cache misses per shard.
# TYPE klotski_cache_shard_misses_total gauge
klotski_cache_shard_misses_total{shard=\"0\"} 1
klotski_cache_shard_misses_total{shard=\"1\"} 0
# HELP klotski_cache_shard_evictions_total Plan-cache evictions per shard.
# TYPE klotski_cache_shard_evictions_total gauge
klotski_cache_shard_evictions_total{shard=\"0\"} 3
klotski_cache_shard_evictions_total{shard=\"1\"} 0
# HELP klotski_coalesce_leaders_total Submissions that led an in-flight key.
# TYPE klotski_coalesce_leaders_total gauge
klotski_coalesce_leaders_total 2
# HELP klotski_coalesce_followers_total Submissions coalesced onto an in-flight leader.
# TYPE klotski_coalesce_followers_total gauge
klotski_coalesce_followers_total 6
# HELP klotski_pipeline_executions_total Planning pipeline executions (work not absorbed by cache or coalescing).
# TYPE klotski_pipeline_executions_total gauge
klotski_pipeline_executions_total 2
# HELP klotski_journal_bytes Write-ahead job journal size.
# TYPE klotski_journal_bytes gauge
klotski_journal_bytes 4096
# HELP klotski_journal_records_total Journal records appended since open.
# TYPE klotski_journal_records_total gauge
klotski_journal_records_total 11
# HELP klotski_journal_compactions_total Journal compactions performed.
# TYPE klotski_journal_compactions_total gauge
klotski_journal_compactions_total 1
# HELP klotski_state_replayed_artifacts Artifacts restored from the journal at startup.
# TYPE klotski_state_replayed_artifacts gauge
klotski_state_replayed_artifacts 3
# HELP klotski_state_replayed_jobs Incomplete jobs re-enqueued from the journal at startup.
# TYPE klotski_state_replayed_jobs gauge
klotski_state_replayed_jobs 1
klotski_plan_latency_seconds{quantile=\"0.5\"} 0.014733
klotski_plan_latency_seconds{quantile=\"0.95\"} 0.014733
klotski_plan_latency_seconds{quantile=\"0.99\"} 0.014733
klotski_plan_latency_seconds_count 1
klotski_plan_latency_seconds_sum 0.012000";
        assert_eq!(normalized, expected);
    }
}
