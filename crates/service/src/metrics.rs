//! Std-only service metrics: atomic counters plus a fixed-bucket latency
//! histogram, rendered in Prometheus text exposition format at `/metrics`.
//!
//! The histogram uses geometric bucket bounds (~1.47× apart) spanning
//! 100 µs to ~2 min, so quantile estimates carry bounded relative error
//! without any locking on the record path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Upper bounds of the latency buckets, in microseconds. Geometric series:
/// `bound[i] = 100 · (1.468)^i`, 32 buckets, last bound ≈ 2.6 min; anything
/// slower lands in the implicit overflow bucket.
const BUCKET_BOUNDS_US: [u64; 32] = [
    100, 147, 216, 317, 465, 683, 1_002, 1_472, 2_161, 3_172, 4_657, 6_837, 10_036, 14_733, 21_628,
    31_750, 46_609, 68_422, 100_444, 147_452, 216_460, 317_764, 466_478, 684_789, 1_005_270,
    1_475_737, 2_166_382, 3_180_249, 4_668_606, 6_853_514, 10_060_959, 14_769_488,
];

/// A lock-free fixed-bucket latency histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len()],
    /// Samples beyond the last bound.
    overflow: AtomicU64,
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, sample: Duration) {
        let us = sample.as_micros().min(u128::from(u64::MAX)) as u64;
        match BUCKET_BOUNDS_US.iter().position(|&b| us <= b) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_us.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Estimated `q`-quantile in seconds (upper bound of the bucket holding
    /// the quantile sample). Returns 0 with no samples.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return BUCKET_BOUNDS_US[i] as f64 / 1e6;
            }
        }
        // Quantile sample sits in the overflow bucket: report the max bound.
        *BUCKET_BOUNDS_US.last().unwrap() as f64 / 1e6
    }
}

/// All service counters. Everything is relaxed-atomic: metrics never
/// contend with the request path.
#[derive(Debug)]
pub struct Metrics {
    /// HTTP requests accepted (any endpoint).
    pub http_requests: AtomicU64,
    /// `POST /v1/plan` submissions.
    pub plan_requests: AtomicU64,
    /// `POST /v1/audit` submissions.
    pub audit_requests: AtomicU64,
    /// Malformed requests answered 4xx.
    pub bad_requests: AtomicU64,
    /// Submissions refused with 503 (queue full, connection cap, draining).
    pub rejected_busy: AtomicU64,
    /// Jobs that finished with a plan.
    pub jobs_completed: AtomicU64,
    /// Jobs that finished with an error.
    pub jobs_failed: AtomicU64,
    /// End-to-end plan/audit latency (admission to completion).
    pub latency: Histogram,
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh counters with the uptime clock started now.
    pub fn new() -> Self {
        Self {
            http_requests: AtomicU64::new(0),
            plan_requests: AtomicU64::new(0),
            audit_requests: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            latency: Histogram::new(),
            started: Instant::now(),
        }
    }

    /// Seconds since the service started.
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// Point-in-time gauges owned by the server, passed in at render time.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Queue capacity.
    pub queue_capacity: usize,
    /// Worker threads currently planning.
    pub workers_busy: usize,
    /// Total worker threads.
    pub workers: usize,
    /// Entries in the shared plan cache.
    pub cache_entries: usize,
    /// Plan-cache hits since start.
    pub cache_hits: u64,
    /// Plan-cache misses since start.
    pub cache_misses: u64,
}

/// Renders the Prometheus text exposition for `/metrics`.
pub fn render(m: &Metrics, g: &Gauges) -> String {
    let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
    let hit_rate = {
        let total = g.cache_hits + g.cache_misses;
        if total == 0 {
            0.0
        } else {
            g.cache_hits as f64 / total as f64
        }
    };
    let mut out = String::with_capacity(1024);
    let mut line = |name: &str, help: &str, value: String| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
        ));
    };
    line(
        "klotski_uptime_seconds",
        "Seconds since service start.",
        format!("{:.3}", m.uptime_seconds()),
    );
    line(
        "klotski_http_requests_total",
        "HTTP requests accepted.",
        load(&m.http_requests).to_string(),
    );
    line(
        "klotski_plan_requests_total",
        "Plan submissions.",
        load(&m.plan_requests).to_string(),
    );
    line(
        "klotski_audit_requests_total",
        "Audit submissions.",
        load(&m.audit_requests).to_string(),
    );
    line(
        "klotski_bad_requests_total",
        "Requests rejected 4xx.",
        load(&m.bad_requests).to_string(),
    );
    line(
        "klotski_rejected_busy_total",
        "Submissions rejected 503 (backpressure).",
        load(&m.rejected_busy).to_string(),
    );
    line(
        "klotski_jobs_completed_total",
        "Jobs finished successfully.",
        load(&m.jobs_completed).to_string(),
    );
    line(
        "klotski_jobs_failed_total",
        "Jobs finished with an error.",
        load(&m.jobs_failed).to_string(),
    );
    line(
        "klotski_queue_depth",
        "Jobs waiting in the bounded queue.",
        g.queue_depth.to_string(),
    );
    line(
        "klotski_queue_capacity",
        "Bounded queue capacity.",
        g.queue_capacity.to_string(),
    );
    line(
        "klotski_workers",
        "Planner worker threads.",
        g.workers.to_string(),
    );
    line(
        "klotski_workers_busy",
        "Worker threads currently planning.",
        g.workers_busy.to_string(),
    );
    line(
        "klotski_cache_entries",
        "Entries in the shared plan cache.",
        g.cache_entries.to_string(),
    );
    line(
        "klotski_cache_hits_total",
        "Plan-cache hits.",
        g.cache_hits.to_string(),
    );
    line(
        "klotski_cache_misses_total",
        "Plan-cache misses.",
        g.cache_misses.to_string(),
    );
    line(
        "klotski_cache_hit_rate",
        "Plan-cache hit fraction.",
        format!("{hit_rate:.4}"),
    );
    for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
        out.push_str(&format!(
            "klotski_plan_latency_seconds{{quantile=\"{label}\"}} {:.6}\n",
            m.latency.quantile(q)
        ));
    }
    out.push_str(&format!(
        "klotski_plan_latency_seconds_count {}\n",
        m.latency.count()
    ));
    out.push_str(&format!(
        "klotski_plan_latency_seconds_sum {:.6}\n",
        m.latency.sum_seconds()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantiles_are_monotonic_and_bracket_samples() {
        let h = Histogram::new();
        for ms in [1u64, 2, 5, 10, 20, 50, 100, 200, 500, 1000] {
            h.record(Duration::from_millis(ms));
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // The p50 sample (20 ms) must land in a bucket bounded near it.
        assert!((0.02..=0.04).contains(&p50), "p50 {p50}");
        assert!((1.0..=1.6).contains(&p99), "p99 {p99}");
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn overflow_samples_report_last_bound() {
        let h = Histogram::new();
        h.record(Duration::from_secs(3600));
        assert!(h.quantile(0.5) > 10.0);
    }

    #[test]
    fn render_exposes_all_families() {
        let m = Metrics::new();
        m.plan_requests.fetch_add(3, Ordering::Relaxed);
        m.latency.record(Duration::from_millis(12));
        let g = Gauges {
            queue_depth: 2,
            queue_capacity: 64,
            workers_busy: 1,
            workers: 4,
            cache_entries: 5,
            cache_hits: 9,
            cache_misses: 1,
        };
        let text = render(&m, &g);
        for family in [
            "klotski_plan_requests_total 3",
            "klotski_queue_depth 2",
            "klotski_queue_capacity 64",
            "klotski_cache_hit_rate 0.9000",
            "klotski_plan_latency_seconds{quantile=\"0.5\"}",
            "klotski_plan_latency_seconds_count 1",
            "klotski_workers 4",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }
}
