//! A sharded, capacity-bounded plan cache shared by all worker threads.
//!
//! Keys are `(NPD digest, options digest)`; values are the finished
//! [`PlanArtifact`](crate::pipeline::PlanArtifact)s behind `Arc`, so a hit
//! hands back the exact bytes the original job produced without copying.
//! Eviction is FIFO per shard: the planner's outputs are deterministic, so
//! recency bookkeeping buys nothing — the cache exists to absorb repeated
//! submissions of the same document, which arrive in bursts.
//!
//! Each shard keeps its own hit/miss/eviction counters (surfaced as the
//! `klotski_cache_shard_*` metric families) so an operator can see a
//! skewed tenant population hammering one shard; the global atomics back
//! the aggregate gauges without locking.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independent shards. Power of two so shard selection is a mask.
pub const SHARDS: usize = 8;

struct Shard<V> {
    map: HashMap<(u64, u64), Arc<V>>,
    order: VecDeque<(u64, u64)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Point-in-time counters for one shard, for `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Entries resident in the shard.
    pub entries: usize,
    /// Lookups answered by this shard.
    pub hits: u64,
    /// Lookups this shard missed.
    pub misses: u64,
    /// Entries evicted by the shard's FIFO bound.
    pub evictions: u64,
}

/// A concurrent capacity-bounded map from `(npd_digest, options_digest)` to
/// shared plan artifacts.
pub struct PlanCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// Per-shard capacity (total capacity rounded up to a multiple of
    /// [`SHARDS`]).
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V> PlanCache<V> {
    /// A cache holding at most ~`capacity` artifacts (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                        hits: 0,
                        misses: 0,
                        evictions: 0,
                    })
                })
                .collect(),
            shard_capacity: capacity.div_ceil(SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: (u64, u64)) -> &Mutex<Shard<V>> {
        // Mix both digests so documents differing only in options spread.
        let h = key.0 ^ key.1.rotate_left(32);
        &self.shards[(h as usize) & (SHARDS - 1)]
    }

    /// Looks up a finished artifact, counting the hit or miss.
    pub fn get(&self, key: (u64, u64)) -> Option<Arc<V>> {
        if self.shard_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.shard(key).lock().unwrap().misses += 1;
            return None;
        }
        let mut shard = self.shard(key).lock().unwrap();
        match shard.map.get(&key) {
            Some(v) => {
                let v = Arc::clone(v);
                shard.hits += 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                shard.misses += 1;
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts an artifact, evicting the oldest entry in the shard when at
    /// capacity. Re-inserting an existing key refreshes the value without
    /// growing the shard.
    pub fn insert(&self, key: (u64, u64), value: Arc<V>) {
        if self.shard_capacity == 0 {
            return;
        }
        let mut shard = self.shard(key).lock().unwrap();
        if shard.map.insert(key, value).is_none() {
            shard.order.push_back(key);
            while shard.order.len() > self.shard_capacity {
                if let Some(old) = shard.order.pop_front() {
                    shard.map.remove(&old);
                    shard.evictions += 1;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Per-shard counters, in shard order (for the labeled metric
    /// families).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock().unwrap();
                ShardStats {
                    entries: shard.map.len(),
                    hits: shard.hits,
                    misses: shard.misses,
                    evictions: shard.evictions,
                }
            })
            .collect()
    }

    /// Every resident entry, FIFO order within each shard (the journal
    /// compactor's view of what is worth persisting).
    pub fn snapshot(&self) -> Vec<((u64, u64), Arc<V>)> {
        let mut out = Vec::new();
        for s in &self.shards {
            let shard = s.lock().unwrap();
            for key in &shard.order {
                if let Some(v) = shard.map.get(key) {
                    out.push((*key, Arc::clone(v)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_same_arc() {
        let cache = PlanCache::new(16);
        assert!(cache.get((1, 2)).is_none());
        let v = Arc::new("artifact".to_string());
        cache.insert((1, 2), Arc::clone(&v));
        let got = cache.get((1, 2)).expect("hit");
        assert!(Arc::ptr_eq(&got, &v));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn capacity_bounds_entries_and_counts_evictions() {
        let cache = PlanCache::new(SHARDS); // one slot per shard
        for i in 0..100u64 {
            cache.insert((i, 0), Arc::new(i));
        }
        assert!(
            cache.len() <= SHARDS,
            "cache grew to {} entries",
            cache.len()
        );
        // The newest key in some shard must still be resident.
        assert!((0..100u64).any(|i| cache.get((i, 0)).is_some()));
        assert_eq!(cache.evictions(), 100 - cache.len() as u64);
        let stats = cache.shard_stats();
        assert_eq!(stats.len(), SHARDS);
        assert_eq!(
            stats.iter().map(|s| s.evictions).sum::<u64>(),
            cache.evictions()
        );
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        cache.insert((1, 1), Arc::new(7u32));
        assert!(cache.get((1, 1)).is_none());
        assert_eq!(cache.len(), 0);
        // The miss still lands on the key's shard.
        assert_eq!(cache.shard_stats().iter().map(|s| s.misses).sum::<u64>(), 1);
    }

    #[test]
    fn options_digest_distinguishes_entries() {
        let cache = PlanCache::new(64);
        cache.insert((1, 10), Arc::new("astar"));
        cache.insert((1, 20), Arc::new("dp"));
        assert_eq!(*cache.get((1, 10)).unwrap(), "astar");
        assert_eq!(*cache.get((1, 20)).unwrap(), "dp");
    }

    #[test]
    fn per_shard_counters_sum_to_globals() {
        let cache = PlanCache::new(64);
        for i in 0..32u64 {
            cache.insert((i, i), Arc::new(i));
        }
        for i in 0..48u64 {
            let _ = cache.get((i, i)); // 32 hits, 16 misses
        }
        let stats = cache.shard_stats();
        assert_eq!(stats.iter().map(|s| s.hits).sum::<u64>(), cache.hits());
        assert_eq!(stats.iter().map(|s| s.misses).sum::<u64>(), cache.misses());
        assert_eq!(stats.iter().map(|s| s.entries).sum::<usize>(), cache.len());
    }

    #[test]
    fn snapshot_returns_every_resident_entry() {
        let cache = PlanCache::new(64);
        for i in 0..10u64 {
            cache.insert((i, 1), Arc::new(i));
        }
        let snap = cache.snapshot();
        assert_eq!(snap.len(), 10);
        for (key, v) in snap {
            assert_eq!(*v, key.0);
        }
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = Arc::new(PlanCache::new(256));
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let key = (i % 32, t);
                        if let Some(v) = cache.get(key) {
                            assert_eq!(*v, key.0 * 1000 + key.1);
                        } else {
                            cache.insert(key, Arc::new(key.0 * 1000 + key.1));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(cache.len() <= 128);
    }
}
