//! The one shared planning pipeline behind both `klotski plan` and the
//! service's `/v1/plan`.
//!
//! Byte-identity between the CLI and the daemon is a hard product
//! requirement (operators diff shipped plan documents), so there is exactly
//! one implementation of the NPD → region → spec → plan → attach sequence
//! and both front ends call it. The CLI writes
//! [`PlanArtifact::plan_json`] to `-o`; the service returns the same bytes
//! as the response body.

use klotski_core::migration::{MigrationBuilder, MigrationOptions};
use klotski_core::plan::validate_plan;
use klotski_core::planner::{AStarPlanner, DpPlanner, Planner, SearchBudget};
use klotski_core::report::{audit_plan, PlanAudit};
use klotski_core::{CostModel, PlanError};
use klotski_npd::api::{digest_hex, npd_digest, AuditResponse, PlanRequestOptions, PlanSummary};
use klotski_npd::convert::{attach_plan, npd_to_region};
use klotski_npd::Npd;
use klotski_parallel::WorkerPool;
use klotski_topology::presets::{Preset, PresetId};
use klotski_topology::region::build_region;
use std::sync::{Arc, OnceLock};

/// Everything a finished planning job produces. Cached whole behind `Arc`
/// so repeated submissions reuse the bytes, the audit, and the summary.
#[derive(Debug, Clone)]
pub struct PlanArtifact {
    /// Job summary (costs, counters, digests). `cached` is false here; the
    /// serving layer flips it when answering from cache.
    pub summary: PlanSummary,
    /// The plan-attached NPD document, pretty-printed — byte-identical to
    /// what `klotski plan -o` writes for the same input.
    pub plan_json: Vec<u8>,
    /// Per-phase safety audit of the same plan.
    pub audit: PlanAudit,
    /// Lazily encoded audit response bodies (`cached: false` / `true`), so
    /// repeated audit answers reuse bytes instead of re-serializing the
    /// summary + audit on every hit.
    audit_body_miss: OnceLock<Arc<Vec<u8>>>,
    audit_body_hit: OnceLock<Arc<Vec<u8>>>,
}

impl PlanArtifact {
    /// A fresh artifact with empty response-byte caches.
    pub fn new(summary: PlanSummary, plan_json: Vec<u8>, audit: PlanAudit) -> Self {
        Self {
            summary,
            plan_json,
            audit,
            audit_body_miss: OnceLock::new(),
            audit_body_hit: OnceLock::new(),
        }
    }

    /// The audit response body for this artifact, encoded at most once per
    /// `cached` flag over the artifact's lifetime. Every caller gets the
    /// same bytes the first audit answer produced.
    pub fn audit_response_bytes(&self, cached: bool) -> Arc<Vec<u8>> {
        let slot = if cached {
            &self.audit_body_hit
        } else {
            &self.audit_body_miss
        };
        Arc::clone(slot.get_or_init(|| {
            let response = AuditResponse {
                summary: PlanSummary {
                    cached,
                    ..self.summary.clone()
                },
                audit: self.audit.clone(),
            };
            Arc::new(
                serde_json::to_string_pretty(&response)
                    .map(String::into_bytes)
                    .unwrap_or_else(|_| b"{}".to_vec()),
            )
        }))
    }
}

/// Why the pipeline rejected or failed a request.
#[derive(Debug)]
pub enum PipelineError {
    /// The request itself is unusable: bad JSON, inconsistent NPD, or
    /// out-of-range options. Maps to 4xx.
    Invalid(String),
    /// The planner gave up: infeasible migration, budget/deadline
    /// exhausted, unsupported type. Carries the planner error.
    Plan(PlanError),
    /// The pipeline produced something it refuses to ship (plan failed
    /// validation, serialization failed). Maps to 500.
    Internal(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Invalid(why) => write!(f, "invalid request: {why}"),
            PipelineError::Plan(e) => write!(f, "planning failed: {e}"),
            PipelineError::Internal(why) => write!(f, "internal error: {why}"),
        }
    }
}

impl PipelineError {
    /// True when the failure is the budget/deadline/cancellation path.
    pub fn is_budget_exceeded(&self) -> bool {
        matches!(self, PipelineError::Plan(PlanError::BudgetExceeded { .. }))
    }
}

/// Parses and bounds-checks the request options into planner inputs.
fn resolve_options(
    options: &PlanRequestOptions,
) -> Result<(MigrationOptions, CostModel, bool), PipelineError> {
    let mut mig = MigrationOptions::default();
    if let Some(theta) = options.theta {
        if !(theta > 0.0 && theta <= 1.0) {
            return Err(PipelineError::Invalid(format!(
                "theta {theta} outside (0, 1]"
            )));
        }
        mig.theta = theta;
    }
    let alpha = options.alpha.unwrap_or(0.0);
    if !(0.0..=1.0).contains(&alpha) {
        return Err(PipelineError::Invalid(format!(
            "alpha {alpha} outside [0, 1]"
        )));
    }
    if let Some(incremental) = options.incremental {
        mig.incremental = incremental;
    }
    if let Some(cap) = options.esc_cache_cap {
        if cap == 0 {
            return Err(PipelineError::Invalid(
                "esc_cache_cap must be at least 1".into(),
            ));
        }
        mig.esc_cache_cap = cap;
    }
    if let Some(ensemble) = &options.ensemble {
        // Fail the request up front (4xx) instead of deep in spec
        // construction; realization against the topology can still fail
        // later, which surfaces as Invalid through the builder.
        ensemble
            .validate()
            .map_err(|e| PipelineError::Invalid(format!("ensemble: {e}")))?;
        mig.ensemble = Some(ensemble.clone());
    }
    let use_dp = match options.planner.as_deref() {
        None | Some("astar") | Some("a*") => false,
        Some("dp") => true,
        Some(other) => {
            return Err(PipelineError::Invalid(format!(
                "unknown planner {other:?} (expected \"astar\" or \"dp\")"
            )))
        }
    };
    Ok((mig, CostModel { alpha }, use_dp))
}

/// Plans the migration an NPD document implies and attaches the phases.
///
/// This is the `klotski plan` pipeline verbatim: convert the NPD to a
/// region config, build the region, derive the migration spec, run the
/// selected planner under `budget`, validate, audit, attach. `pool` lets a
/// long-lived caller (the service's worker threads) reuse satisfiability
/// lanes across jobs; `None` matches the CLI's private-pool behaviour.
/// Either way the resulting plan bytes are identical — PR 1's determinism
/// guarantee makes lane count unobservable in the output.
pub fn plan_document(
    npd: &Npd,
    options: &PlanRequestOptions,
    budget: SearchBudget,
    pool: Option<Arc<WorkerPool>>,
) -> Result<PlanArtifact, PipelineError> {
    let key = (npd_digest(npd), options.digest());
    plan_document_keyed(npd, options, key, budget, pool)
}

/// [`plan_document`] with the `(npd_digest, options_digest)` pair already
/// computed. The service computes both digests once at admission (for the
/// cache and coalescing key) and passes them here, so the hot path never
/// re-canonicalizes the NPD.
pub fn plan_document_keyed(
    npd: &Npd,
    options: &PlanRequestOptions,
    key: (u64, u64),
    budget: SearchBudget,
    pool: Option<Arc<WorkerPool>>,
) -> Result<PlanArtifact, PipelineError> {
    let _span = klotski_telemetry::span!("pipeline.plan", "npd" = npd.name.as_str());
    let (mig_options, cost, use_dp) = resolve_options(options)?;
    let cfg = npd_to_region(npd).map_err(|e| PipelineError::Invalid(e.to_string()))?;
    let (topology, handles) = build_region(&cfg);
    let preset_like = Preset {
        id: PresetId::A, // placeholder tag; planning reads topology + handles
        config: cfg,
        topology,
        handles,
    };
    let spec = MigrationBuilder::for_preset(&preset_like, &mig_options)
        .map_err(|e| PipelineError::Invalid(e.to_string()))?;

    let (outcome, planner_name) = if use_dp {
        let planner = DpPlanner {
            cost,
            budget,
            pool,
            ..DpPlanner::default()
        };
        (
            planner.plan(&spec).map_err(PipelineError::Plan)?,
            planner.name(),
        )
    } else {
        let planner = AStarPlanner {
            cost,
            budget,
            pool,
            ..AStarPlanner::default()
        };
        (
            planner.plan(&spec).map_err(PipelineError::Plan)?,
            planner.name(),
        )
    };

    validate_plan(&spec, &outcome.plan)
        .map_err(|e| PipelineError::Internal(format!("produced plan failed validation: {e}")))?;
    let audit = audit_plan(&spec, &outcome.plan);

    let mut shipped = npd.clone();
    attach_plan(&mut shipped, &spec, &outcome.plan);
    let plan_json = shipped
        .to_json_pretty()
        .map_err(|e| PipelineError::Internal(format!("serialization failed: {e}")))?
        .into_bytes();

    let steps = outcome.plan.phases().iter().map(|p| p.blocks.len()).sum();
    let summary = PlanSummary {
        name: spec.name.clone(),
        npd_digest: digest_hex(key.0),
        options_digest: digest_hex(key.1),
        planner: planner_name.to_string(),
        cost: outcome.cost,
        phases: outcome.plan.num_phases(),
        steps,
        states_visited: outcome.stats.states_visited,
        states_generated: outcome.stats.states_generated,
        states_pruned: outcome.stats.states_pruned,
        states_deduped: outcome.stats.states_deduped,
        sat_checks: outcome.stats.sat_checks,
        cache_hits: outcome.stats.cache_hits,
        full_evaluations: outcome.stats.full_evaluations,
        incremental_clean: outcome.stats.incremental_clean,
        incremental_dirty: outcome.stats.incremental_dirty,
        esc_entries: outcome.stats.esc_entries,
        esc_bytes: outcome.stats.esc_bytes,
        satcheck_ms: outcome.stats.satcheck_time.as_millis() as u64,
        planning_ms: outcome.stats.planning_time.as_millis() as u64,
        ensemble_matrices: outcome.stats.ensemble_matrices,
        ensemble_matrix_checks: outcome.stats.ensemble_matrix_checks,
        ensemble_short_circuits: outcome.stats.ensemble_short_circuits,
        ensemble: outcome
            .ensemble
            .as_ref()
            .map(|e| e.matrices.clone())
            .unwrap_or_default(),
        cached: false,
    };
    Ok(PlanArtifact::new(summary, plan_json, audit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_npd::convert::region_to_npd;
    use klotski_topology::presets::{self};

    fn small_npd() -> Npd {
        region_to_npd(&presets::config(PresetId::A))
    }

    #[test]
    fn default_options_plan_and_attach() {
        let npd = small_npd();
        let artifact = plan_document(
            &npd,
            &PlanRequestOptions::default(),
            SearchBudget::default(),
            None,
        )
        .expect("preset A plans");
        assert!(artifact.summary.phases > 0);
        assert_eq!(artifact.summary.planner, "klotski-a*");
        assert!(!artifact.summary.cached);
        // The shipped document must parse and carry the phases.
        let shipped = Npd::from_json(std::str::from_utf8(&artifact.plan_json).unwrap()).unwrap();
        assert_eq!(shipped.phases.len(), artifact.summary.phases);
        assert_eq!(artifact.audit.phases.len(), artifact.summary.phases);
    }

    #[test]
    fn dp_planner_selectable_and_matches_astar_cost() {
        let npd = small_npd();
        let astar = plan_document(
            &npd,
            &PlanRequestOptions::default(),
            SearchBudget::default(),
            None,
        )
        .unwrap();
        let dp = plan_document(
            &npd,
            &PlanRequestOptions {
                planner: Some("dp".into()),
                ..Default::default()
            },
            SearchBudget::default(),
            None,
        )
        .unwrap();
        assert_eq!(dp.summary.planner, "klotski-dp");
        // Both planners are optimal; costs agree even if tie-breaks differ.
        assert!((astar.summary.cost - dp.summary.cost).abs() < 1e-9);
    }

    #[test]
    fn shared_pool_output_is_byte_identical_to_private_pool() {
        let npd = small_npd();
        let private = plan_document(
            &npd,
            &PlanRequestOptions::default(),
            SearchBudget::default(),
            None,
        )
        .unwrap();
        let pool = WorkerPool::shared(2);
        let shared = plan_document(
            &npd,
            &PlanRequestOptions::default(),
            SearchBudget::default(),
            Some(pool),
        )
        .unwrap();
        assert_eq!(private.plan_json, shared.plan_json);
        assert_eq!(private.summary.cost, shared.summary.cost);
    }

    #[test]
    fn bad_options_are_rejected_as_invalid() {
        let npd = small_npd();
        for options in [
            PlanRequestOptions {
                theta: Some(1.5),
                ..Default::default()
            },
            PlanRequestOptions {
                alpha: Some(-0.1),
                ..Default::default()
            },
            PlanRequestOptions {
                planner: Some("sat".into()),
                ..Default::default()
            },
        ] {
            let err = plan_document(&npd, &options, SearchBudget::default(), None)
                .expect_err("must reject");
            assert!(matches!(err, PipelineError::Invalid(_)), "{err}");
        }
    }

    #[test]
    fn ensemble_options_plan_and_report_per_matrix_counters() {
        let npd = small_npd();
        let options: PlanRequestOptions =
            serde_json::from_str(r#"{"ensemble": {"k": 2, "seed": 11}}"#).unwrap();
        let artifact = plan_document(&npd, &options, SearchBudget::default(), None)
            .expect("preset A plans under a K=2 ensemble");
        assert_eq!(artifact.summary.ensemble_matrices, 2);
        assert_eq!(artifact.summary.ensemble.len(), 2);
        assert!(artifact.summary.ensemble_matrix_checks > 0);
        assert_eq!(artifact.summary.ensemble[0].label, "base");
        // The ensemble spec keys the cache: its options digest must differ
        // from the single-matrix default.
        assert_ne!(
            artifact.summary.options_digest,
            digest_hex(PlanRequestOptions::default().digest())
        );
    }

    #[test]
    fn invalid_ensemble_options_are_rejected_as_invalid() {
        let npd = small_npd();
        for body in [
            r#"{"ensemble": {"k": 0, "seed": 1}}"#,
            r#"{"ensemble": {"k": 999, "seed": 1}}"#,
            r#"{"ensemble": {"k": 2, "seed": 1, "ewma_alphas": [1.5]}}"#,
            r#"{"ensemble": {"k": 2, "seed": 1, "surge_factor": 0.5}}"#,
        ] {
            let options: PlanRequestOptions = serde_json::from_str(body).unwrap();
            let err = plan_document(&npd, &options, SearchBudget::default(), None)
                .expect_err("must reject");
            assert!(matches!(err, PipelineError::Invalid(_)), "{err}");
        }
        // A seedless ensemble must not even deserialize: reproducibility
        // requires the seed on the wire.
        assert!(serde_json::from_str::<PlanRequestOptions>(r#"{"ensemble": {"k": 2}}"#).is_err());
    }

    #[test]
    fn expired_deadline_surfaces_budget_exceeded() {
        let npd = small_npd();
        let budget = SearchBudget::default()
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let err = plan_document(&npd, &PlanRequestOptions::default(), budget, None)
            .expect_err("expired deadline cannot plan");
        assert!(err.is_budget_exceeded(), "{err}");
    }
}
