//! Std-only graceful-shutdown signal handling.
//!
//! The daemon must drain in-flight work on SIGTERM/SIGINT (§7.2 operators
//! roll the planning service like any other datacenter job). Rust's std
//! exposes no signal API, so this registers a minimal `extern "C"` handler
//! via libc's `signal(2)` — already linked by std on every Unix target —
//! that flips an atomic the accept loop polls. Non-Unix builds fall back to
//! a no-op: `ctrl-c` then kills the process, which is still safe because
//! plans are only ever written whole.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler once a shutdown signal arrives.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once SIGINT or SIGTERM has been received (or [`request_shutdown`]
/// was called programmatically).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Programmatic equivalent of receiving a signal (used by tests and by
/// `Service::shutdown`).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag (tests only; a real daemon shuts down once).
pub fn reset_for_test() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // `signal(2)` from libc, which std already links against.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Installs the handler for SIGINT and SIGTERM.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal handling off Unix; shutdown is programmatic only.
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (idempotent).
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_shutdown_roundtrip() {
        reset_for_test();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_for_test();
        assert!(!shutdown_requested());
    }

    #[cfg(unix)]
    #[test]
    fn handler_installation_does_not_crash() {
        install_handlers();
    }
}
