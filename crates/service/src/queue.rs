//! A bounded MPMC job queue with backpressure.
//!
//! Producers (connection threads) never block: [`BoundedQueue::try_push`]
//! fails immediately when the queue is at capacity, which the HTTP layer
//! turns into `503 Service Unavailable` + `Retry-After`. Consumers (worker
//! threads) block on a condvar until an item arrives or the queue is
//! closed. Closing stops admission but lets consumers drain what is
//! already queued — the graceful-shutdown contract.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; retry later.
    Full(T),
    /// The queue no longer admits work (shutdown in progress).
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A Mutex+Condvar bounded MPMC queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push; fails with [`PushError::Full`] at capacity and
    /// [`PushError::Closed`] after [`close`](Self::close).
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop. Returns `None` only once the queue is closed *and*
    /// fully drained, so workers always finish admitted jobs.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Stops admission; queued items remain poppable. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_is_fifo() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = BoundedQueue::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed("c")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_unblocks_waiting_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the consumer a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_items() {
        let q = Arc::new(BoundedQueue::new(16));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        let v = p * 1000 + i;
                        loop {
                            match q.try_push(v) {
                                Ok(()) => break,
                                Err(PushError::Full(_)) => std::thread::yield_now(),
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u32> = (0..4u32)
            .flat_map(|p| (0..100u32).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
