//! A deliberately small HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! The service speaks exactly the subset its endpoints need: request line +
//! headers + `Content-Length` body in, status + headers + body out, one
//! request per connection (`Connection: close`). No chunked encoding, no
//! keep-alive, no TLS — the daemon is designed to sit behind whatever the
//! datacenter fronts services with.

use serde::Serialize;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum accepted header block, bytes.
const MAX_HEAD: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method ("GET", "POST", ...).
    pub method: String,
    /// Path without the query string ("/v1/plan").
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of query parameter `name`.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Socket error or premature close.
    Io(std::io::Error),
    /// Malformed request (bad request line, oversized head, bad length).
    Malformed(String),
    /// Body larger than the configured cap.
    BodyTooLarge(usize),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::BodyTooLarge(n) => write!(f, "body of {n} bytes exceeds limit"),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one request from the stream. `max_body` caps the accepted
/// `Content-Length`.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    // Accumulate until the blank line ending the head.
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    let head_end = loop {
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-head".into()));
        }
        head.push(byte[0]);
        if head.len() > MAX_HEAD {
            return Err(HttpError::Malformed("head exceeds 16 KiB".into()));
        }
        if head.ends_with(b"\r\n\r\n") {
            break head.len();
        }
    };
    let head_str = std::str::from_utf8(&head[..head_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head_str.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty head".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError::Malformed("bad content-length".into()))?;
        }
        headers.push((name, value));
    }
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Parses an `application/x-www-form-urlencoded`-style query string
/// (`a=1&b=two`). `%XX` escapes and `+` are decoded; malformed escapes pass
/// through literally.
pub fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (decode_component(k), decode_component(v)),
            None => (decode_component(pair), String::new()),
        })
        .collect()
}

fn decode_component(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                    (Some(h), Some(l)) => {
                        out.push(h * 16 + l);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b? {
        c @ b'0'..=b'9' => Some(c - b'0'),
        c @ b'a'..=b'f' => Some(c - b'a' + 10),
        c @ b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

/// An outgoing response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (Content-Type etc. are set by the constructors).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: vec![("Content-Type".into(), "text/plain; charset=utf-8".into())],
            body: body.into().into_bytes(),
        }
    }

    /// A JSON response serializing `value` (pretty-printed, matching the
    /// CLI's output style).
    pub fn json<T: Serialize>(status: u16, value: &T) -> Self {
        let body = serde_json::to_string_pretty(value)
            .unwrap_or_else(|e| format!("{{\"error\":\"serialization failed: {e}\"}}"));
        Self::raw_json(status, body.into_bytes())
    }

    /// A JSON response whose body bytes are already rendered (used for the
    /// byte-exact plan documents).
    pub fn raw_json(status: u16, body: Vec<u8>) -> Self {
        Self {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body,
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Writes the response and flushes. The connection is always marked
    /// `Connection: close`.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_reason(self.status),
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Writes the head of a chunked streaming response (the SSE path). Unlike
/// [`Response::write_to`] there is no `Content-Length`: the body arrives as
/// chunks via [`write_chunk`] until [`finish_chunked`] closes it.
pub fn write_chunked_head(
    stream: &mut TcpStream,
    status: u16,
    headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
        status,
        status_reason(status)
    );
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())
}

/// Writes one chunk and flushes, so subscribers see events as they happen.
/// Empty data is skipped: a zero-length chunk would terminate the stream.
pub fn write_chunk(stream: &mut TcpStream, data: &[u8]) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    stream.write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response.
pub fn finish_chunked(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Canonical reason phrases for the statuses the service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Applies the per-connection socket timeouts.
pub fn configure_stream(stream: &TcpStream, timeout: Duration) -> std::io::Result<()> {
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_query_decodes_pairs() {
        let q = parse_query("theta=0.8&alpha=0.25&planner=dp&flag");
        assert_eq!(q.len(), 4);
        assert_eq!(q[0], ("theta".into(), "0.8".into()));
        assert_eq!(q[2], ("planner".into(), "dp".into()));
        assert_eq!(q[3], ("flag".into(), String::new()));
        let enc = parse_query("name=a%20b+c&pct=100%25");
        assert_eq!(enc[0].1, "a b c");
        assert_eq!(enc[1].1, "100%");
    }

    #[test]
    fn malformed_percent_passes_through() {
        assert_eq!(decode_component("50%"), "50%");
        assert_eq!(decode_component("%zz"), "%zz");
    }

    #[test]
    fn request_roundtrip_over_loopback() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream, 1024).unwrap();
            Response::text(200, format!("{} {}", req.method, req.path))
                .with_header("X-Echo-Body", String::from_utf8_lossy(&req.body))
                .write_to(&mut stream)
                .unwrap();
            req
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(
                b"POST /v1/plan?wait=0 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
            )
            .unwrap();
        let mut reply = String::new();
        client.read_to_string(&mut reply).unwrap();
        let req = server.join().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/plan");
        assert_eq!(req.query_param("wait"), Some("0"));
        assert_eq!(req.body, b"hello");
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("X-Echo-Body: hello"));
        assert!(reply.ends_with("POST /v1/plan"));
    }

    #[test]
    fn oversized_body_is_rejected() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_request(&mut stream, 4)
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789")
            .unwrap();
        assert!(matches!(
            server.join().unwrap(),
            Err(HttpError::BodyTooLarge(10))
        ));
    }
}
