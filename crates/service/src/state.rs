//! Warm persistent state for the daemon: a write-ahead job journal plus
//! plan-cache artifact persistence under `serve --state-dir`.
//!
//! The journal is a single append-only file of length-prefixed,
//! checksummed JSON records. Three record kinds flow through it:
//!
//! * `admit` — a plan/audit job entered the queue; carries the NPD body
//!   and options so a restarted daemon can re-run it.
//! * `artifact` — the job's finished pipeline artifact (summary, plan
//!   bytes, audit); clears the pending admit for its key.
//! * `settled` — the key resolved without producing a new artifact (the
//!   job failed, or a same-key artifact already sat in the cache); also
//!   clears the pending admit.
//!
//! Replay on startup rebuilds the plan cache from `artifact` records and
//! re-enqueues every admit without a terminal record. A corrupt or
//! truncated tail (torn write from a crash) stops replay at the last good
//! record and truncates the file there — everything before it is intact by
//! construction. Compaction rewrites the journal as a snapshot of the live
//! cache plus pending admits, so the file stays proportional to the cache,
//! not to request history.
//!
//! Frame layout, all little-endian:
//!
//! ```text
//! [u32 payload length][u64 FNV-1a of payload][payload JSON bytes]
//! ```

use crate::pipeline::PlanArtifact;
use klotski_core::report::PlanAudit;
use klotski_npd::api::{fnv1a, PlanRequestOptions, PlanSummary};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Journal file name inside the state directory.
const JOURNAL_FILE: &str = "journal.log";

/// Sanity bound on a single record; a length prefix beyond this is treated
/// as corruption rather than an allocation request.
const MAX_RECORD_BYTES: u32 = 256 * 1024 * 1024;

/// A [`PlanArtifact`] in its on-disk shape. `plan_json` is UTF-8 JSON, so
/// it travels as a string; the response-byte caches are rebuilt lazily.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PersistedArtifact {
    /// The artifact's summary (digests, cost, counters).
    pub summary: PlanSummary,
    /// The plan-attached NPD document.
    pub plan_json: String,
    /// The per-phase safety audit.
    pub audit: PlanAudit,
}

impl PersistedArtifact {
    fn from_artifact(a: &PlanArtifact) -> Option<Self> {
        Some(Self {
            summary: a.summary.clone(),
            plan_json: std::str::from_utf8(&a.plan_json).ok()?.to_string(),
            audit: a.audit.clone(),
        })
    }

    fn into_artifact(self) -> PlanArtifact {
        PlanArtifact::new(self.summary, self.plan_json.into_bytes(), self.audit)
    }
}

/// One journal record. The vendored serde derive has no data-carrying enum
/// variants, so records are one flat struct tagged by `op` (`admit`,
/// `artifact`, `settled`); fields irrelevant to an op stay at their
/// defaults. Digests travel as 16-hex-digit strings because the JSON
/// number model is f64, which cannot hold a full u64.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct JournalRecord {
    op: String,
    /// `"{npd_digest:016x}:{options_digest:016x}"`.
    key: String,
    #[serde(default)]
    kind: String,
    #[serde(default)]
    npd: String,
    #[serde(default)]
    options: Option<PlanRequestOptions>,
    #[serde(default)]
    artifact: Option<PersistedArtifact>,
}

fn key_hex(key: (u64, u64)) -> String {
    format!("{:016x}:{:016x}", key.0, key.1)
}

fn parse_key(s: &str) -> Option<(u64, u64)> {
    let (a, b) = s.split_once(':')?;
    Some((
        u64::from_str_radix(a, 16).ok()?,
        u64::from_str_radix(b, 16).ok()?,
    ))
}

/// An admitted-but-unfinished job recovered from the journal.
#[derive(Debug, Clone)]
pub struct PendingJob {
    /// `"plan"` or `"audit"` (the wire label the admit recorded).
    pub kind: String,
    /// The NPD document body as submitted.
    pub npd: String,
    /// The request options as submitted.
    pub options: PlanRequestOptions,
    /// The cache key the admit was journaled under.
    pub key: (u64, u64),
}

/// Everything replay recovered from the journal.
#[derive(Debug, Default)]
pub struct Replay {
    /// Finished artifacts, oldest first (cache insertion order).
    pub artifacts: Vec<((u64, u64), Arc<PlanArtifact>)>,
    /// Admitted jobs without a terminal record, oldest first.
    pub pending: Vec<PendingJob>,
    /// Bytes dropped from a corrupt or torn journal tail.
    pub truncated_bytes: u64,
}

struct StoreInner {
    file: File,
    /// Keys admitted but not yet settled, kept so compaction can rewrite
    /// their admit records.
    pending: HashMap<(u64, u64), JournalRecord>,
}

/// The open journal. All appends are serialized under one mutex; counters
/// are atomics so `/metrics` rendering never takes the lock.
pub struct StateStore {
    path: PathBuf,
    inner: Mutex<StoreInner>,
    bytes: AtomicU64,
    records: AtomicU64,
    compactions: AtomicU64,
    /// Journal size that triggers compaction on the next append.
    compact_bytes: u64,
}

impl StateStore {
    /// Opens (creating if needed) the journal under `dir`, replays it, and
    /// compacts the replayed state into a fresh journal so a crash-torn or
    /// history-heavy file is rewritten bounded before the daemon serves.
    pub fn open(dir: &Path, compact_bytes: u64) -> std::io::Result<(Self, Replay)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let replay = replay_file(&path)?;

        let store = Self {
            path,
            inner: Mutex::new(StoreInner {
                file: OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(dir.join(JOURNAL_FILE))?,
                pending: HashMap::new(),
            }),
            bytes: AtomicU64::new(0),
            records: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            compact_bytes: compact_bytes.max(1),
        };
        {
            let mut inner = store.inner.lock().unwrap();
            for p in &replay.pending {
                inner.pending.insert(
                    p.key,
                    JournalRecord {
                        op: "admit".into(),
                        key: key_hex(p.key),
                        kind: p.kind.clone(),
                        npd: p.npd.clone(),
                        options: Some(p.options.clone()),
                        artifact: None,
                    },
                );
            }
            store.rewrite_locked(&mut inner, &replay.artifacts)?;
        }
        Ok((store, replay))
    }

    /// Journal path (exposed for tests and log lines).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current journal size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Records appended since open (replayed records not included).
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Compactions performed (the open-time rewrite counts as one).
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Journals a plan/audit admission.
    pub fn admit(&self, key: (u64, u64), kind: &str, npd: &str, options: &PlanRequestOptions) {
        let record = JournalRecord {
            op: "admit".into(),
            key: key_hex(key),
            kind: kind.to_string(),
            npd: npd.to_string(),
            options: Some(options.clone()),
            artifact: None,
        };
        let mut inner = self.inner.lock().unwrap();
        inner.pending.insert(key, record.clone());
        let _ = self.append_locked(&mut inner, &record);
    }

    /// Journals a finished artifact, clearing the pending admit. When the
    /// journal has outgrown its bound, compacts against `cache_snapshot`
    /// (the live cache contents, oldest first).
    pub fn artifact(
        &self,
        key: (u64, u64),
        artifact: &PlanArtifact,
        cache_snapshot: impl FnOnce() -> Vec<((u64, u64), Arc<PlanArtifact>)>,
    ) {
        let Some(persisted) = PersistedArtifact::from_artifact(artifact) else {
            return;
        };
        let record = JournalRecord {
            op: "artifact".into(),
            key: key_hex(key),
            kind: String::new(),
            npd: String::new(),
            options: None,
            artifact: Some(persisted),
        };
        let mut inner = self.inner.lock().unwrap();
        inner.pending.remove(&key);
        let _ = self.append_locked(&mut inner, &record);
        if self.bytes.load(Ordering::Relaxed) > self.compact_bytes {
            let _ = self.rewrite_locked(&mut inner, &cache_snapshot());
        }
    }

    /// Journals a key resolving without a new artifact (failure, or served
    /// from cache while queued), clearing the pending admit.
    pub fn settled(&self, key: (u64, u64)) {
        let mut inner = self.inner.lock().unwrap();
        if inner.pending.remove(&key).is_none() {
            return; // nothing journaled for this key; no record needed
        }
        let record = JournalRecord {
            op: "settled".into(),
            key: key_hex(key),
            kind: String::new(),
            npd: String::new(),
            options: None,
            artifact: None,
        };
        let _ = self.append_locked(&mut inner, &record);
    }

    /// Compacts now against the given cache snapshot (graceful drain).
    pub fn compact(&self, cache_snapshot: Vec<((u64, u64), Arc<PlanArtifact>)>) {
        let mut inner = self.inner.lock().unwrap();
        let _ = self.rewrite_locked(&mut inner, &cache_snapshot);
    }

    /// Forces the journal to durable storage (graceful drain).
    pub fn flush(&self) {
        let inner = self.inner.lock().unwrap();
        let _ = inner.file.sync_all();
    }

    fn append_locked(&self, inner: &mut StoreInner, record: &JournalRecord) -> std::io::Result<()> {
        let frame = encode_frame(record)?;
        inner.file.write_all(&frame)?;
        inner.file.flush()?;
        self.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.records.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Rewrites the journal as `artifacts` + pending admits, atomically
    /// (write temp file, rename over).
    fn rewrite_locked(
        &self,
        inner: &mut StoreInner,
        artifacts: &[((u64, u64), Arc<PlanArtifact>)],
    ) -> std::io::Result<()> {
        let tmp_path = self.path.with_extension("log.tmp");
        let mut tmp = File::create(&tmp_path)?;
        let mut bytes = 0u64;
        for (key, artifact) in artifacts {
            let Some(persisted) = PersistedArtifact::from_artifact(artifact) else {
                continue;
            };
            let frame = encode_frame(&JournalRecord {
                op: "artifact".into(),
                key: key_hex(*key),
                kind: String::new(),
                npd: String::new(),
                options: None,
                artifact: Some(persisted),
            })?;
            tmp.write_all(&frame)?;
            bytes += frame.len() as u64;
        }
        // Deterministic rewrite order for the pending set: by key.
        let mut pending: Vec<&JournalRecord> = inner.pending.values().collect();
        pending.sort_by(|a, b| a.key.cmp(&b.key));
        for record in pending {
            let frame = encode_frame(record)?;
            tmp.write_all(&frame)?;
            bytes += frame.len() as u64;
        }
        tmp.sync_all()?;
        std::fs::rename(&tmp_path, &self.path)?;
        inner.file = OpenOptions::new().append(true).open(&self.path)?;
        self.bytes.store(bytes, Ordering::Relaxed);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

fn encode_frame(record: &JournalRecord) -> std::io::Result<Vec<u8>> {
    let payload = serde_json::to_string(record)
        .map_err(|e| std::io::Error::other(format!("journal record serialization: {e}")))?
        .into_bytes();
    let mut frame = Vec::with_capacity(12 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Replays the journal at `path`. Stops at the first corrupt frame and
/// truncates the file to the last good offset; a missing file is an empty
/// replay.
fn replay_file(path: &Path) -> std::io::Result<Replay> {
    let mut raw = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut raw)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Replay::default()),
        Err(e) => return Err(e),
    }

    let mut offset = 0usize;
    // Last-wins artifact per key, in first-seen order.
    let mut artifact_order: Vec<(u64, u64)> = Vec::new();
    let mut artifacts: HashMap<(u64, u64), Arc<PlanArtifact>> = HashMap::new();
    let mut pending_order: Vec<(u64, u64)> = Vec::new();
    let mut pending: HashMap<(u64, u64), PendingJob> = HashMap::new();

    while let Some(record) = decode_frame(&raw, &mut offset) {
        let Some(key) = parse_key(&record.key) else {
            continue; // well-framed but unintelligible key: skip the record
        };
        match record.op.as_str() {
            "admit" => {
                let Some(options) = record.options else {
                    continue;
                };
                if pending
                    .insert(
                        key,
                        PendingJob {
                            kind: record.kind,
                            npd: record.npd,
                            options,
                            key,
                        },
                    )
                    .is_none()
                {
                    pending_order.push(key);
                }
            }
            "artifact" => {
                if let Some(persisted) = record.artifact {
                    if artifacts
                        .insert(key, Arc::new(persisted.into_artifact()))
                        .is_none()
                    {
                        artifact_order.push(key);
                    }
                }
                pending.remove(&key);
            }
            "settled" => {
                pending.remove(&key);
            }
            _ => {} // forward-compatible: unknown ops are skipped
        }
    }

    let truncated_bytes = (raw.len() - offset) as u64;
    if truncated_bytes > 0 {
        // Torn tail from a crash mid-append: drop it so the next daemon
        // appends after the last good record.
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(offset as u64)?;
    }

    Ok(Replay {
        artifacts: artifact_order
            .into_iter()
            .filter_map(|k| artifacts.remove(&k).map(|a| (k, a)))
            .collect(),
        pending: pending_order
            .into_iter()
            .filter_map(|k| pending.remove(&k))
            .collect(),
        truncated_bytes,
    })
}

/// Decodes one frame at `*offset`, advancing it past the frame on success.
/// Returns `None` (leaving `offset` at the frame start) on a short,
/// oversized, checksum-failing, or unparseable frame.
fn decode_frame(raw: &[u8], offset: &mut usize) -> Option<JournalRecord> {
    let start = *offset;
    if raw.len() - start < 12 {
        return None;
    }
    let len = u32::from_le_bytes(raw[start..start + 4].try_into().unwrap());
    if len > MAX_RECORD_BYTES {
        return None;
    }
    let sum = u64::from_le_bytes(raw[start + 4..start + 12].try_into().unwrap());
    let body_start = start + 12;
    let body_end = body_start.checked_add(len as usize)?;
    if body_end > raw.len() {
        return None;
    }
    let payload = &raw[body_start..body_end];
    if fnv1a(payload) != sum {
        return None;
    }
    let text = std::str::from_utf8(payload).ok()?;
    let record: JournalRecord = serde_json::from_str(text).ok()?;
    *offset = body_end;
    Some(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_npd::convert::region_to_npd;
    use klotski_topology::presets::{self, PresetId};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("klotski-state-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_artifact() -> PlanArtifact {
        let npd = region_to_npd(&presets::config(PresetId::A));
        crate::pipeline::plan_document(
            &npd,
            &PlanRequestOptions::default(),
            klotski_core::planner::SearchBudget::default(),
            None,
        )
        .expect("preset A plans")
    }

    #[test]
    fn journal_roundtrips_artifacts_and_pending_jobs() {
        let dir = temp_dir("roundtrip");
        let artifact = sample_artifact();
        let npd_json = region_to_npd(&presets::config(PresetId::A))
            .to_json_pretty()
            .unwrap();
        {
            let (store, replay) = StateStore::open(&dir, 1 << 20).unwrap();
            assert!(replay.artifacts.is_empty());
            assert!(replay.pending.is_empty());
            store.admit((1, 2), "plan", &npd_json, &PlanRequestOptions::default());
            store.artifact((1, 2), &artifact, Vec::new);
            store.admit((3, 4), "audit", &npd_json, &PlanRequestOptions::default());
            store.flush();
        }
        let (_store, replay) = StateStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(replay.artifacts.len(), 1);
        let (key, got) = &replay.artifacts[0];
        assert_eq!(*key, (1, 2));
        assert_eq!(got.plan_json, artifact.plan_json);
        assert_eq!(got.summary.npd_digest, artifact.summary.npd_digest);
        assert_eq!(got.audit, artifact.audit);
        assert_eq!(replay.pending.len(), 1);
        assert_eq!(replay.pending[0].key, (3, 4));
        assert_eq!(replay.pending[0].kind, "audit");
        assert_eq!(replay.pending[0].npd, npd_json);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn settled_clears_pending_and_corrupt_tail_is_truncated() {
        let dir = temp_dir("corrupt");
        let npd_json = region_to_npd(&presets::config(PresetId::A))
            .to_json_pretty()
            .unwrap();
        {
            let (store, _) = StateStore::open(&dir, 1 << 20).unwrap();
            store.admit((1, 2), "plan", &npd_json, &PlanRequestOptions::default());
            store.settled((1, 2));
            store.admit((5, 6), "plan", &npd_json, &PlanRequestOptions::default());
            store.flush();
        }
        let path = dir.join(JOURNAL_FILE);
        // Simulate a torn write: garbage appended past the last record.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xde, 0xad, 0xbe, 0xef, 0x01]).unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        let (_store, replay) = StateStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(replay.truncated_bytes, 5);
        assert_eq!(replay.pending.len(), 1, "settled key must not replay");
        assert_eq!(replay.pending[0].key, (5, 6));
        // Open compacts: the rewritten file carries only the pending admit.
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < before, "compaction must shrink {before} -> {after}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_journal_compacts_on_artifact_append() {
        let dir = temp_dir("compact");
        let artifact = Arc::new(sample_artifact());
        let (store, _) = StateStore::open(&dir, 1).unwrap(); // compact every append
        let compactions_before = store.compactions();
        store.artifact((9, 9), &artifact, || vec![((9, 9), Arc::clone(&artifact))]);
        assert!(store.compactions() > compactions_before);
        // The compacted journal still replays the artifact.
        let (_s2, replay) = StateStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(replay.artifacts.len(), 1);
        assert_eq!(replay.artifacts[0].0, (9, 9));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_hex_roundtrips_full_u64_range() {
        for key in [
            (0u64, 0u64),
            (u64::MAX, 1),
            (0x0123_4567_89ab_cdef, u64::MAX),
        ] {
            assert_eq!(parse_key(&key_hex(key)), Some(key));
        }
        assert_eq!(parse_key("nope"), None);
        assert_eq!(parse_key("12:zz"), None);
    }
}
