//! Differential property tests for delta-aware incremental satisfiability:
//! random block-application walks where every child is checked through the
//! incremental engine (parent context handed over planner-style) and
//! re-checked by a from-scratch single-threaded reference. Verdicts AND
//! per-circuit loads must be bit-identical — the incremental path is a pure
//! evaluation-speed optimization, never a semantics knob — across thread
//! counts, ESC cache modes, and funneling settings.

use klotski_core::migration::{MigrationBuilder, MigrationOptions, MigrationSpec};
use klotski_core::satcheck::{EscMode, SatChecker};
use klotski_core::{ActionTypeId, CompactState};
use klotski_routing::FunnelingModel;
use klotski_topology::presets::{self, PresetId};
use klotski_topology::{CircuitId, NetState};
use proptest::prelude::*;

/// Builds the instance twice: once with incremental evaluation on (the
/// default) and once forced to from-scratch routing.
fn spec_pair(id: PresetId, funneling: f64) -> (MigrationSpec, MigrationSpec) {
    let opts = MigrationOptions {
        funneling: FunnelingModel {
            headroom_factor: funneling,
        },
        ..MigrationOptions::default()
    };
    let spec = MigrationBuilder::for_preset(&presets::build(id), &opts).unwrap();
    assert!(spec.incremental, "incremental is the default");
    let mut full = spec.clone();
    full.incremental = false;
    (spec, full)
}

/// Splitmix-style step of the walk's deterministic RNG.
fn next_rand(x: &mut u64) -> u64 {
    *x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(29);
    *x
}

/// One random walk: at each step expand every applicable successor of the
/// current state, batch-check them with parent context (exactly what the
/// planners do), compare each verdict against the reference, spot-check one
/// candidate's per-circuit loads bit-for-bit, then advance along a random
/// feasible edge.
fn differential_walk(
    spec: &MigrationSpec,
    spec_full: &MigrationSpec,
    threads: usize,
    mode: EscMode,
    seed: u64,
    steps: usize,
) {
    let target = spec.target_counts.clone();
    let mut incr = SatChecker::with_threads(spec, mode, threads);
    let mut full = SatChecker::with_threads(spec_full, EscMode::Off, 1);
    assert!(incr.is_incremental() && !full.is_incremental());

    let mut v = CompactState::origin(spec.num_types());
    let mut state = spec.initial.clone();
    let mut x = seed | 1;
    for step in 0..steps {
        let mut cand: Vec<(ActionTypeId, CompactState, NetState)> = Vec::new();
        for a in spec.actions.ids() {
            if v.count(a) >= target.count(a) {
                continue;
            }
            let mut ns = state.clone();
            spec.apply_next(&mut ns, &v, a);
            cand.push((a, v.advanced(a), ns));
        }
        if cand.is_empty() {
            break;
        }

        let refs: Vec<_> = cand.iter().map(|(a, nv, ns)| (nv, ns, Some(*a))).collect();
        let got = incr.check_batch_from(spec, Some((&v, &state)), &refs);
        let expected: Vec<bool> = cand
            .iter()
            .map(|(a, nv, ns)| full.check(spec_full, nv, ns, Some(*a)))
            .collect();
        assert_eq!(
            got, expected,
            "verdicts diverged at step {step} ({mode:?} x{threads})"
        );

        // Spot-check one candidate's loads. A single re-check may be served
        // by the ESC cache (then the checker's load buffer is stale and not
        // comparable), so only compare when an evaluation actually ran and
        // finished routing (verdict true).
        let pick = (next_rand(&mut x) % cand.len() as u64) as usize;
        let (pa, pv, ps) = &cand[pick];
        let before = incr.stats().full_evaluations;
        let ok = incr.check(spec, pv, ps, Some(*pa));
        let evaluated = incr.stats().full_evaluations > before;
        let ok_full = full.check(spec_full, pv, ps, Some(*pa));
        assert_eq!(ok, ok_full, "spot-check verdict at step {step}");
        if ok && evaluated {
            for i in 0..spec.topology.num_circuits() {
                let c = CircuitId::from_index(i);
                assert_eq!(
                    incr.last_loads().forward(c).to_bits(),
                    full.last_loads().forward(c).to_bits(),
                    "forward load of {c} at step {step} ({mode:?} x{threads})"
                );
                assert_eq!(
                    incr.last_loads().reverse(c).to_bits(),
                    full.last_loads().reverse(c).to_bits(),
                    "reverse load of {c} at step {step} ({mode:?} x{threads})"
                );
            }
        }

        let feasible: Vec<usize> = (0..cand.len()).filter(|&i| got[i]).collect();
        if feasible.is_empty() {
            break;
        }
        let step_pick = feasible[(next_rand(&mut x) % feasible.len() as u64) as usize];
        let (_, nv, ns) = cand.swap_remove(step_pick);
        v = nv;
        state = ns;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Preset A: random walks across thread counts, all three cache modes,
    /// and funneling on/off.
    #[test]
    fn prop_incremental_walk_matches_full_on_preset_a(
        seed in 0u64..1_000_000,
        funneling_on in proptest::bool::ANY,
        threads_idx in 0usize..3,
        mode_idx in 0usize..3,
    ) {
        let funneling = if funneling_on { 1.3 } else { 1.0 };
        let threads = [1usize, 2, 4][threads_idx];
        let mode = [EscMode::Compact, EscMode::FullTopology, EscMode::Off][mode_idx];
        let (spec, spec_full) = spec_pair(PresetId::A, funneling);
        differential_walk(&spec, &spec_full, threads, mode, seed, 10);
    }
}

/// Preset C (full Table 3 scale, ~8k circuits): one deterministic walk per
/// thread count, ESC off so every check exercises the routing path.
#[test]
fn incremental_walk_matches_full_on_preset_c() {
    let (spec, spec_full) = spec_pair(PresetId::C, 1.0);
    for threads in [1usize, 2, 4] {
        differential_walk(&spec, &spec_full, threads, EscMode::Off, 0xC0FFEE, 4);
    }
}
