//! Differential property tests for the *combined* evaluation modes: the
//! same random block-application walks as `incremental_prop`, but sweeping
//! the full cross product of thread count × incremental {on,off} × batched
//! {`check_batch_from` vs per-item `check`}. Every configuration must
//! produce bit-identical verdicts AND per-circuit loads against a
//! single-threaded from-scratch per-item reference — parallel lanes,
//! dirty-destination replay, and batch funnels are throughput knobs, never
//! semantics knobs.

use klotski_core::migration::{MigrationBuilder, MigrationOptions, MigrationSpec};
use klotski_core::satcheck::{EscMode, SatChecker};
use klotski_core::{ActionTypeId, CompactState};
use klotski_topology::presets::{self, PresetId};
use klotski_topology::{CircuitId, NetState};
use proptest::prelude::*;

/// Builds the preset's spec with incremental evaluation forced on or off.
fn spec_with(id: PresetId, incremental: bool) -> MigrationSpec {
    let opts = MigrationOptions::default();
    let mut spec = MigrationBuilder::for_preset(&presets::build(id), &opts).unwrap();
    spec.incremental = incremental;
    spec
}

/// Splitmix-style step of the walk's deterministic RNG.
fn next_rand(x: &mut u64) -> u64 {
    *x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(29);
    *x
}

/// One random walk under a single configuration: expand every applicable
/// successor, check the batch either planner-style (`check_batch_from` with
/// parent hand-over) or one call at a time, compare verdicts against the
/// reference, spot-check one candidate's per-circuit loads bit-for-bit,
/// then advance along a random feasible edge. The ESC cache stays off so
/// every check exercises the routing path under test.
fn combined_walk(
    spec: &MigrationSpec,
    spec_ref: &MigrationSpec,
    threads: usize,
    batched: bool,
    seed: u64,
    steps: usize,
) {
    let target = spec.target_counts.clone();
    let mut dut = SatChecker::with_threads(spec, EscMode::Off, threads);
    let mut reference = SatChecker::with_threads(spec_ref, EscMode::Off, 1);
    assert!(!reference.is_incremental());

    let mut v = CompactState::origin(spec.num_types());
    let mut state = spec.initial.clone();
    let mut x = seed | 1;
    for step in 0..steps {
        let mut cand: Vec<(ActionTypeId, CompactState, NetState)> = Vec::new();
        for a in spec.actions.ids() {
            if v.count(a) >= target.count(a) {
                continue;
            }
            let mut ns = state.clone();
            spec.apply_next(&mut ns, &v, a);
            cand.push((a, v.advanced(a), ns));
        }
        if cand.is_empty() {
            break;
        }

        let got: Vec<bool> = if batched {
            let refs: Vec<_> = cand.iter().map(|(a, nv, ns)| (nv, ns, Some(*a))).collect();
            dut.check_batch_from(spec, Some((&v, &state)), &refs)
        } else {
            cand.iter()
                .map(|(a, nv, ns)| dut.check(spec, nv, ns, Some(*a)))
                .collect()
        };
        let expected: Vec<bool> = cand
            .iter()
            .map(|(a, nv, ns)| reference.check(spec_ref, nv, ns, Some(*a)))
            .collect();
        assert_eq!(
            got, expected,
            "verdicts diverged at step {step} (threads={threads} incremental={} batched={batched})",
            spec.incremental
        );

        // Spot-check one candidate's loads via a dedicated per-item check,
        // so `last_loads` is unambiguous regardless of the batch path. Only
        // comparable when routing ran to completion on both sides.
        let pick = (next_rand(&mut x) % cand.len() as u64) as usize;
        let (pa, pv, ps) = &cand[pick];
        let before = dut.stats().full_evaluations;
        let ok = dut.check(spec, pv, ps, Some(*pa));
        let evaluated = dut.stats().full_evaluations > before;
        let ok_ref = reference.check(spec_ref, pv, ps, Some(*pa));
        assert_eq!(ok, ok_ref, "spot-check verdict at step {step}");
        if ok && evaluated {
            for i in 0..spec.topology.num_circuits() {
                let c = CircuitId::from_index(i);
                assert_eq!(
                    dut.last_loads().forward(c).to_bits(),
                    reference.last_loads().forward(c).to_bits(),
                    "forward load of {c} at step {step} (threads={threads} batched={batched})"
                );
                assert_eq!(
                    dut.last_loads().reverse(c).to_bits(),
                    reference.last_loads().reverse(c).to_bits(),
                    "reverse load of {c} at step {step} (threads={threads} batched={batched})"
                );
            }
        }

        let feasible: Vec<usize> = (0..cand.len()).filter(|&i| got[i]).collect();
        if feasible.is_empty() {
            break;
        }
        let step_pick = feasible[(next_rand(&mut x) % feasible.len() as u64) as usize];
        let (_, nv, ns) = cand.swap_remove(step_pick);
        v = nv;
        state = ns;
    }
}

/// Preset A: one deterministic walk through the complete 16-way matrix —
/// threads {1,2,4,8} × incremental {on,off} × batched {on,off}.
#[test]
fn combined_matrix_matches_reference_on_preset_a() {
    let spec_ref = spec_with(PresetId::A, false);
    for incremental in [true, false] {
        let spec = spec_with(PresetId::A, incremental);
        for threads in [1usize, 2, 4, 8] {
            for batched in [true, false] {
                combined_walk(&spec, &spec_ref, threads, batched, 0xA11CE, 6);
            }
        }
    }
}

/// Preset C (full Table 3 scale, ~8k circuits): shorter walks through a
/// reduced matrix, threads {1,4} × incremental {on,off} × batched {on,off}.
#[test]
fn combined_matrix_matches_reference_on_preset_c() {
    let spec_ref = spec_with(PresetId::C, false);
    for incremental in [true, false] {
        let spec = spec_with(PresetId::C, incremental);
        for threads in [1usize, 4] {
            for batched in [true, false] {
                combined_walk(&spec, &spec_ref, threads, batched, 0xC0DE, 2);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Preset A under random seeds and randomly drawn configurations.
    #[test]
    fn prop_combined_walk_matches_reference_on_preset_a(
        seed in 0u64..1_000_000,
        incremental in proptest::bool::ANY,
        batched in proptest::bool::ANY,
        threads_idx in 0usize..4,
    ) {
        let threads = [1usize, 2, 4, 8][threads_idx];
        let spec = spec_with(PresetId::A, incremental);
        let spec_ref = spec_with(PresetId::A, false);
        combined_walk(&spec, &spec_ref, threads, batched, seed, 8);
    }
}
