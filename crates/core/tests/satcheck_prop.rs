//! Property tests for thread-count invariance of the satisfiability
//! checker: for any migration progress point, any cache mode, and any
//! thread count, `check` and `check_batch` must return the same verdicts
//! as the single-threaded checker — parallelism is an implementation
//! detail, never a semantics knob.

use klotski_core::migration::{MigrationBuilder, MigrationOptions, MigrationSpec};
use klotski_core::planner::{AStarPlanner, Planner};
use klotski_core::satcheck::{EscMode, SatChecker};
use klotski_core::{ActionTypeId, CompactState, EnsembleSpec};
use klotski_topology::presets::{self, PresetId};
use klotski_topology::NetState;
use proptest::prelude::*;

/// Pseudo-random walk of `steps` actions through the target box, derived
/// deterministically from `seed`.
fn walk(target: &CompactState, seed: u64, steps: usize) -> CompactState {
    let n = target.num_types();
    let mut v = CompactState::origin(n);
    let mut x = seed | 1;
    for _ in 0..steps {
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(29);
        let a = ActionTypeId((x % n as u64) as u8);
        if v.count(a) < target.count(a) {
            v = v.advanced(a);
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Verdicts are invariant across thread counts and cache modes, for
    /// single checks and for batches.
    #[test]
    fn prop_verdicts_survive_thread_count(
        seed in 0u64..1_000_000,
        theta in 0.55f64..0.95,
        funneling in 1.0f64..1.6,
    ) {
        let opts = MigrationOptions {
            theta,
            funneling: klotski_routing::FunnelingModel {
                headroom_factor: funneling,
            },
            ..MigrationOptions::default()
        };
        let spec = MigrationBuilder::hgrid_v1_to_v2(&presets::build(PresetId::A), &opts)
            .unwrap();
        // The same instance with incremental evaluation disabled: verdicts
        // must be identical whichever engine answers.
        let mut spec_full = spec.clone();
        spec_full.incremental = false;
        let target = spec.target_counts.clone();

        // A handful of walk states plus origin and target.
        let mut states: Vec<(CompactState, NetState)> = Vec::new();
        for i in 0..5u64 {
            let v = walk(&target, seed.wrapping_add(i * 7919), 1 + (i as usize) * 3);
            let s = spec.state_for(&v);
            states.push((v, s));
        }
        states.push((CompactState::origin(spec.num_types()), spec.initial.clone()));
        states.push((target.clone(), spec.target_state()));

        let items: Vec<(&CompactState, &NetState, Option<ActionTypeId>)> = states
            .iter()
            .enumerate()
            .map(|(i, (v, s))| {
                let last = (i % 2 == 0).then_some(ActionTypeId((i % 2) as u8));
                (v, s, last)
            })
            .collect();

        // Reference: single-threaded, uncached, from-scratch per-item checks.
        let mut reference = SatChecker::with_threads(&spec_full, EscMode::Off, 1);
        let expected: Vec<bool> = items
            .iter()
            .map(|&(v, s, l)| reference.check(&spec_full, v, s, l))
            .collect();

        for threads in [1usize, 2, 4] {
            for mode in [EscMode::Compact, EscMode::FullTopology, EscMode::Off] {
                for sp in [&spec, &spec_full] {
                    let mut per_item = SatChecker::with_threads(sp, mode, threads);
                    let got: Vec<bool> = items
                        .iter()
                        .map(|&(v, s, l)| per_item.check(sp, v, s, l))
                        .collect();
                    prop_assert_eq!(
                        &got, &expected,
                        "check {:?} x{} incremental={}", mode, threads, sp.incremental
                    );

                    let mut batched = SatChecker::with_threads(sp, mode, threads);
                    let got = batched.check_batch(sp, &items);
                    prop_assert_eq!(
                        &got, &expected,
                        "batch {:?} x{} incremental={}", mode, threads, sp.incremental
                    );
                }
            }
        }
    }
}

/// Walk states shared by the ensemble differential tests: a handful of
/// block walks plus origin and target.
fn walk_states(spec: &MigrationSpec, seed: u64) -> Vec<(CompactState, NetState)> {
    let target = spec.target_counts.clone();
    let mut states: Vec<(CompactState, NetState)> = Vec::new();
    for i in 0..5u64 {
        let v = walk(&target, seed.wrapping_add(i * 7919), 1 + (i as usize) * 3);
        let s = spec.state_for(&v);
        states.push((v, s));
    }
    states.push((CompactState::origin(spec.num_types()), spec.initial.clone()));
    states.push((target.clone(), spec.target_state()));
    states
}

/// Clone of `spec` reduced to one of its ensemble matrices: index 0 is the
/// base demand set, index k > 0 the k-th realized variant.
fn single_matrix_spec(spec: &MigrationSpec, k: usize) -> MigrationSpec {
    let mut s = spec.clone();
    if k > 0 {
        s.demands = spec.extra_demands[k - 1].clone();
    }
    s.extra_demands = Vec::new();
    s.ensemble_labels = Vec::new();
    s.ensemble = None;
    s
}

/// Differential core of the AND-fold property: on `preset`, the ensemble
/// verdict must equal the conjunction of K independent single-matrix
/// checks, and the first failing matrix index must be the fold's first
/// `false` — at every thread count, with and without incremental routing.
fn assert_ensemble_is_and_fold(preset: PresetId, k: usize, seed: u64, theta: f64) {
    let opts = MigrationOptions {
        theta,
        ensemble: Some(EnsembleSpec::with_k(k, seed)),
        ..MigrationOptions::default()
    };
    let spec = MigrationBuilder::hgrid_v1_to_v2(&presets::build(preset), &opts).unwrap();
    let states = walk_states(&spec, seed);

    // Reference fold: one sequential single-threaded checker per matrix,
    // each spec carrying exactly one demand set and no ensemble at all.
    let singles: Vec<MigrationSpec> = (0..=spec.extra_demands.len())
        .map(|i| single_matrix_spec(&spec, i))
        .collect();
    let mut folds: Vec<Vec<bool>> = Vec::new();
    for (v, s) in &states {
        let fold: Vec<bool> = singles
            .iter()
            .map(|sp| SatChecker::with_threads(sp, EscMode::Off, 1).check(sp, v, s, None))
            .collect();
        folds.push(fold);
    }

    let mut spec_full = spec.clone();
    spec_full.incremental = false;
    for threads in [1usize, 4] {
        for sp in [&spec, &spec_full] {
            let mut checker = SatChecker::with_threads(sp, EscMode::Off, threads);
            for ((v, s), fold) in states.iter().zip(&folds) {
                let expected = fold.iter().all(|&b| b);
                let expected_fail = fold.iter().position(|&b| !b);
                let got = checker.check(sp, v, s, None);
                assert_eq!(
                    got, expected,
                    "ensemble verdict != AND-fold on {preset} x{threads} \
                     incremental={} fold={fold:?}",
                    sp.incremental
                );
                assert_eq!(
                    checker.last_fail_matrix(),
                    expected_fail,
                    "first failing matrix diverged on {preset} x{threads} \
                     incremental={} fold={fold:?}",
                    sp.incremental
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A K=1 ensemble is the base matrix alone: verdicts *and* per-circuit
    /// loads are bitwise-identical to the plain single-matrix checker, at
    /// every thread count, with and without incremental routing.
    #[test]
    fn prop_k1_ensemble_is_bitwise_identical_to_single_matrix(
        seed in 0u64..1_000_000,
        theta in 0.55f64..0.95,
    ) {
        let plain_opts = MigrationOptions { theta, ..MigrationOptions::default() };
        let k1_opts = MigrationOptions {
            theta,
            ensemble: Some(EnsembleSpec::with_k(1, seed)),
            ..MigrationOptions::default()
        };
        let preset = presets::build(PresetId::A);
        let plain = MigrationBuilder::hgrid_v1_to_v2(&preset, &plain_opts).unwrap();
        let k1 = MigrationBuilder::hgrid_v1_to_v2(&preset, &k1_opts).unwrap();
        prop_assert!(k1.extra_demands.is_empty(), "K=1 realizes no extra matrices");
        let states = walk_states(&plain, seed);

        for threads in [1usize, 2, 4] {
            for incremental in [true, false] {
                let mut p = plain.clone();
                p.incremental = incremental;
                let mut e = k1.clone();
                e.incremental = incremental;
                let mut plain_checker = SatChecker::with_threads(&p, EscMode::Off, threads);
                let mut k1_checker = SatChecker::with_threads(&e, EscMode::Off, threads);
                for (v, s) in &states {
                    let want = plain_checker.check(&p, v, s, None);
                    let got = k1_checker.check(&e, v, s, None);
                    prop_assert_eq!(
                        got, want,
                        "verdict x{} incremental={}", threads, incremental
                    );
                    prop_assert!(
                        k1_checker.last_loads() == plain_checker.last_loads(),
                        "per-circuit loads diverged x{} incremental={}",
                        threads, incremental
                    );
                    prop_assert_eq!(k1_checker.last_fail_matrix(), None);
                }
                let stats = k1_checker.stats();
                prop_assert_eq!(stats.ensemble_matrices, 0);
                prop_assert_eq!(stats.ensemble_matrix_checks, 0);
            }
        }
    }

    /// The tentpole differential property on preset A: ensemble verdict ==
    /// AND of independent per-matrix checks, first failing matrix index
    /// deterministic across thread counts and engines.
    #[test]
    fn prop_ensemble_verdict_is_and_fold_on_preset_a(
        seed in 0u64..1_000_000,
        k in 2usize..5,
        theta in 0.55f64..0.95,
    ) {
        assert_ensemble_is_and_fold(PresetId::A, k, seed, theta);
    }
}

/// The same AND-fold property on the mid-size preset C, at fixed seeds so
/// the tier-1 suite stays fast. θ = 0.62 sits where the 1.3× surge
/// variants fail while the base matrix often passes, exercising the
/// short-circuit index.
#[test]
fn ensemble_verdict_is_and_fold_on_preset_c() {
    for seed in [3u64, 1009] {
        assert_ensemble_is_and_fold(PresetId::C, 4, seed, 0.62);
    }
}

/// The end-to-end guarantee behind the proptests: the planner's output is
/// byte-identical at every thread count (serialized plans compared as
/// strings).
#[test]
fn planner_output_is_identical_across_thread_counts() {
    let preset = presets::build(PresetId::A);
    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 4] {
        let opts = MigrationOptions {
            threads,
            ..MigrationOptions::default()
        };
        let spec = MigrationBuilder::hgrid_v1_to_v2(&preset, &opts).unwrap();
        let outcome = AStarPlanner::default().plan(&spec).unwrap();
        let rendered = format!(
            "{}|{:.12}",
            serde_json::to_string(&outcome.plan).unwrap(),
            outcome.cost
        );
        match &reference {
            None => reference = Some(rendered),
            Some(r) => assert_eq!(&rendered, r, "plan changed at {threads} threads"),
        }
    }
}
