//! Property tests for thread-count invariance of the satisfiability
//! checker: for any migration progress point, any cache mode, and any
//! thread count, `check` and `check_batch` must return the same verdicts
//! as the single-threaded checker — parallelism is an implementation
//! detail, never a semantics knob.

use klotski_core::migration::{MigrationBuilder, MigrationOptions};
use klotski_core::planner::{AStarPlanner, Planner};
use klotski_core::satcheck::{EscMode, SatChecker};
use klotski_core::{ActionTypeId, CompactState};
use klotski_topology::presets::{self, PresetId};
use klotski_topology::NetState;
use proptest::prelude::*;

/// Pseudo-random walk of `steps` actions through the target box, derived
/// deterministically from `seed`.
fn walk(target: &CompactState, seed: u64, steps: usize) -> CompactState {
    let n = target.num_types();
    let mut v = CompactState::origin(n);
    let mut x = seed | 1;
    for _ in 0..steps {
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(29);
        let a = ActionTypeId((x % n as u64) as u8);
        if v.count(a) < target.count(a) {
            v = v.advanced(a);
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Verdicts are invariant across thread counts and cache modes, for
    /// single checks and for batches.
    #[test]
    fn prop_verdicts_survive_thread_count(
        seed in 0u64..1_000_000,
        theta in 0.55f64..0.95,
        funneling in 1.0f64..1.6,
    ) {
        let opts = MigrationOptions {
            theta,
            funneling: klotski_routing::FunnelingModel {
                headroom_factor: funneling,
            },
            ..MigrationOptions::default()
        };
        let spec = MigrationBuilder::hgrid_v1_to_v2(&presets::build(PresetId::A), &opts)
            .unwrap();
        // The same instance with incremental evaluation disabled: verdicts
        // must be identical whichever engine answers.
        let mut spec_full = spec.clone();
        spec_full.incremental = false;
        let target = spec.target_counts.clone();

        // A handful of walk states plus origin and target.
        let mut states: Vec<(CompactState, NetState)> = Vec::new();
        for i in 0..5u64 {
            let v = walk(&target, seed.wrapping_add(i * 7919), 1 + (i as usize) * 3);
            let s = spec.state_for(&v);
            states.push((v, s));
        }
        states.push((CompactState::origin(spec.num_types()), spec.initial.clone()));
        states.push((target.clone(), spec.target_state()));

        let items: Vec<(&CompactState, &NetState, Option<ActionTypeId>)> = states
            .iter()
            .enumerate()
            .map(|(i, (v, s))| {
                let last = (i % 2 == 0).then_some(ActionTypeId((i % 2) as u8));
                (v, s, last)
            })
            .collect();

        // Reference: single-threaded, uncached, from-scratch per-item checks.
        let mut reference = SatChecker::with_threads(&spec_full, EscMode::Off, 1);
        let expected: Vec<bool> = items
            .iter()
            .map(|&(v, s, l)| reference.check(&spec_full, v, s, l))
            .collect();

        for threads in [1usize, 2, 4] {
            for mode in [EscMode::Compact, EscMode::FullTopology, EscMode::Off] {
                for sp in [&spec, &spec_full] {
                    let mut per_item = SatChecker::with_threads(sp, mode, threads);
                    let got: Vec<bool> = items
                        .iter()
                        .map(|&(v, s, l)| per_item.check(sp, v, s, l))
                        .collect();
                    prop_assert_eq!(
                        &got, &expected,
                        "check {:?} x{} incremental={}", mode, threads, sp.incremental
                    );

                    let mut batched = SatChecker::with_threads(sp, mode, threads);
                    let got = batched.check_batch(sp, &items);
                    prop_assert_eq!(
                        &got, &expected,
                        "batch {:?} x{} incremental={}", mode, threads, sp.incremental
                    );
                }
            }
        }
    }
}

/// The end-to-end guarantee behind the proptests: the planner's output is
/// byte-identical at every thread count (serialized plans compared as
/// strings).
#[test]
fn planner_output_is_identical_across_thread_counts() {
    let preset = presets::build(PresetId::A);
    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 4] {
        let opts = MigrationOptions {
            threads,
            ..MigrationOptions::default()
        };
        let spec = MigrationBuilder::hgrid_v1_to_v2(&preset, &opts).unwrap();
        let outcome = AStarPlanner::default().plan(&spec).unwrap();
        let rendered = format!(
            "{}|{:.12}",
            serde_json::to_string(&outcome.plan).unwrap(),
            outcome.cost
        );
        match &reference {
            None => reference = Some(rendered),
            Some(r) => assert_eq!(&rendered, r, "plan changed at {threads} threads"),
        }
    }
}
