//! Efficient satisfiability checking (§4.2).
//!
//! Checking the demand constraints (Eq. 4–5) and port constraints (Eq. 6)
//! dominates planning time: each check walks the whole topology. Klotski's
//! insight is that constraint satisfiability only depends on the
//! intermediate *topology*, and — with blocks consumed in canonical per-type
//! order — the topology only depends on the compact count vector `V`. The
//! checker therefore memoizes check results keyed on `V` (the ESC table
//! `T_c` of Algorithm 2).
//!
//! Three cache modes support the Figure 10 ablation:
//! - [`EscMode::Compact`]: key on `V` — the paper's design;
//! - [`EscMode::FullTopology`]: key on the entire activation bitset, as a
//!   naive implementation would (same hit rate, much more hashing and
//!   memory — the "excessive indexing overhead" the paper warns about);
//! - [`EscMode::Off`]: re-evaluate every time ("Klotski w/o ESC").
//!
//! When the funneling headroom model (§7.2) is enabled, satisfiability also
//! depends on *which* block was just drained, so the cache key gains the
//! last action type (the canonical block order makes `(V, last type)`
//! sufficient).

use crate::action::ActionTypeId;
use crate::compact::CompactState;
use crate::migration::MigrationSpec;
use klotski_routing::{evaluate::summarize, EcmpRouter, LoadMap};
use klotski_topology::NetState;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Cache strategy for satisfiability results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EscMode {
    /// Compact-representation keys (the paper's ESC design).
    Compact,
    /// Full activation-bitset keys (naive ablation).
    FullTopology,
    /// No caching ("Klotski w/o ESC").
    Off,
}

/// Counters exposed for evaluation reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SatStats {
    /// Total satisfiability queries.
    pub checks: u64,
    /// Queries answered from the cache.
    pub cache_hits: u64,
    /// Queries that ran the full routing + port evaluation.
    pub full_evaluations: u64,
}

/// The satisfiability checker with its ESC cache and reusable routing
/// buffers.
#[derive(Debug)]
pub struct SatChecker {
    mode: EscMode,
    router: EcmpRouter,
    loads: LoadMap,
    compact_cache: HashMap<(Vec<u16>, u8), bool>,
    full_cache: HashMap<(NetState, u8), bool>,
    stats: SatStats,
}

/// Cache-key discriminant when the last action type is irrelevant.
const NO_LAST: u8 = u8::MAX;

impl SatChecker {
    /// Creates a checker for one migration instance.
    pub fn new(spec: &MigrationSpec, mode: EscMode) -> Self {
        Self {
            mode,
            router: EcmpRouter::with_policy(&spec.topology, spec.split),
            loads: LoadMap::new(&spec.topology),
            compact_cache: HashMap::new(),
            full_cache: HashMap::new(),
            stats: SatStats::default(),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    /// Number of cached entries (for memory-footprint reporting).
    pub fn cache_len(&self) -> usize {
        match self.mode {
            EscMode::Compact => self.compact_cache.len(),
            EscMode::FullTopology => self.full_cache.len(),
            EscMode::Off => 0,
        }
    }

    /// Checks whether the state identified by `v` (with activation overlay
    /// `state`, which callers maintain incrementally) satisfies the demand
    /// and port constraints. `last` is the action type that produced this
    /// state (`None` for the origin); it matters only when funneling
    /// headroom is enabled.
    pub fn check(
        &mut self,
        spec: &MigrationSpec,
        v: &CompactState,
        state: &NetState,
        last: Option<ActionTypeId>,
    ) -> bool {
        self.stats.checks += 1;
        // The last action type changes the outcome only via the funneling
        // model; without it, equivalent states are exactly Definition 1.
        let last_key = if spec.funneling.is_enabled() {
            last.map(|a| a.0).unwrap_or(NO_LAST)
        } else {
            NO_LAST
        };

        match self.mode {
            EscMode::Compact => {
                let key = (v.counts().to_vec(), last_key);
                if let Some(&hit) = self.compact_cache.get(&key) {
                    self.stats.cache_hits += 1;
                    return hit;
                }
                let result = self.evaluate(spec, v, state, last);
                self.compact_cache.insert(key, result);
                result
            }
            EscMode::FullTopology => {
                let key = (state.clone(), last_key);
                if let Some(&hit) = self.full_cache.get(&key) {
                    self.stats.cache_hits += 1;
                    return hit;
                }
                let result = self.evaluate(spec, v, state, last);
                self.full_cache.insert(key, result);
                result
            }
            EscMode::Off => self.evaluate(spec, v, state, last),
        }
    }

    /// The actual Eq. 4–6 evaluation: route, apply funneling headroom,
    /// compare against θ, then scan port budgets.
    fn evaluate(
        &mut self,
        spec: &MigrationSpec,
        v: &CompactState,
        state: &NetState,
        last: Option<ActionTypeId>,
    ) -> bool {
        self.stats.full_evaluations += 1;
        let topo = &spec.topology;

        // Space/power footprint (§7.2) is the cheapest constraint: O(|A|).
        if let Some(space) = &spec.space {
            if !space.fits(v) {
                return false;
            }
        }

        self.loads.clear();
        let route = self.router.route(topo, state, &spec.demands, &mut self.loads);
        if !route.all_reachable() {
            return false;
        }

        if spec.funneling.is_enabled() {
            if let Some(a) = last {
                if spec.kind_is_drain(a) && v.count(a) > 0 {
                    let block = spec.block_for(a, v.count(a) - 1);
                    spec.funneling
                        .apply(topo, state, &block.switches, &mut self.loads);
                }
            }
        }

        let report = summarize(topo, state, &self.loads, spec.theta);
        if report.violations > 0 {
            return false;
        }

        if spec.check_ports && !topo.port_violations(state).is_empty() {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::{MigrationBuilder, MigrationOptions};
    use klotski_topology::presets::{self, PresetId};

    fn spec() -> MigrationSpec {
        MigrationBuilder::hgrid_v1_to_v2(
            &presets::build(PresetId::A),
            &MigrationOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn origin_and_target_are_satisfiable() {
        let spec = spec();
        let mut checker = SatChecker::new(&spec, EscMode::Compact);
        let origin = CompactState::origin(spec.num_types());
        assert!(checker.check(&spec, &origin, &spec.initial, None));
        let target_state = spec.target_state();
        assert!(checker.check(&spec, &spec.target_counts, &target_state, None));
    }

    #[test]
    fn full_v1_drain_is_unsatisfiable() {
        let spec = spec();
        let mut checker = SatChecker::new(&spec, EscMode::Compact);
        let v = CompactState::from_counts(vec![spec.target_counts.counts()[0], 0]);
        let state = spec.state_for(&v);
        assert!(!checker.check(&spec, &v, &state, Some(ActionTypeId(0))));
    }

    #[test]
    fn cache_hits_on_repeat_queries() {
        let spec = spec();
        let mut checker = SatChecker::new(&spec, EscMode::Compact);
        let origin = CompactState::origin(spec.num_types());
        checker.check(&spec, &origin, &spec.initial, None);
        checker.check(&spec, &origin, &spec.initial, None);
        checker.check(&spec, &origin, &spec.initial, None);
        let s = checker.stats();
        assert_eq!(s.checks, 3);
        assert_eq!(s.full_evaluations, 1);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(checker.cache_len(), 1);
    }

    #[test]
    fn off_mode_never_caches() {
        let spec = spec();
        let mut checker = SatChecker::new(&spec, EscMode::Off);
        let origin = CompactState::origin(spec.num_types());
        checker.check(&spec, &origin, &spec.initial, None);
        checker.check(&spec, &origin, &spec.initial, None);
        let s = checker.stats();
        assert_eq!(s.full_evaluations, 2);
        assert_eq!(s.cache_hits, 0);
        assert_eq!(checker.cache_len(), 0);
    }

    #[test]
    fn full_topology_mode_agrees_with_compact() {
        let spec = spec();
        let mut compact = SatChecker::new(&spec, EscMode::Compact);
        let mut full = SatChecker::new(&spec, EscMode::FullTopology);
        // Walk a few states and compare verdicts.
        for counts in [vec![0, 0], vec![1, 0], vec![1, 1], vec![2, 1], vec![3, 3]] {
            let v = CompactState::from_counts(counts);
            let state = spec.state_for(&v);
            assert_eq!(
                compact.check(&spec, &v, &state, None),
                full.check(&spec, &v, &state, None),
                "modes disagree at {v}"
            );
        }
        assert_eq!(full.cache_len(), 5);
    }

    #[test]
    fn funneling_key_includes_last_action() {
        let mut opts = MigrationOptions::default();
        opts.funneling = klotski_routing::FunnelingModel {
            headroom_factor: 1.5,
        };
        let spec =
            MigrationBuilder::hgrid_v1_to_v2(&presets::build(PresetId::A), &opts).unwrap();
        let mut checker = SatChecker::new(&spec, EscMode::Compact);
        let v = CompactState::from_counts(vec![1, 0]);
        let state = spec.state_for(&v);
        checker.check(&spec, &v, &state, Some(ActionTypeId(0)));
        checker.check(&spec, &v, &state, None);
        // Distinct cache entries because the funneling outcome differs.
        assert_eq!(checker.cache_len(), 2);
        assert_eq!(checker.stats().full_evaluations, 2);
    }

    #[test]
    fn funneling_tightens_the_verdict() {
        // A state that passes without funneling can fail with a large
        // headroom factor.
        let base = spec();
        let mut opts = MigrationOptions::default();
        opts.funneling = klotski_routing::FunnelingModel {
            headroom_factor: 10.0,
        };
        let funneled =
            MigrationBuilder::hgrid_v1_to_v2(&presets::build(PresetId::A), &opts).unwrap();
        let v = CompactState::from_counts(vec![1, 0]);

        let mut c1 = SatChecker::new(&base, EscMode::Off);
        let s1 = base.state_for(&v);
        let plain = c1.check(&base, &v, &s1, Some(ActionTypeId(0)));

        let mut c2 = SatChecker::new(&funneled, EscMode::Off);
        let s2 = funneled.state_for(&v);
        let stressed = c2.check(&funneled, &v, &s2, Some(ActionTypeId(0)));

        assert!(plain, "one grid drained must be fine without funneling");
        assert!(!stressed, "x10 headroom must blow through theta");
    }
}
