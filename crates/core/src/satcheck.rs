//! Efficient satisfiability checking (§4.2).
//!
//! Checking the demand constraints (Eq. 4–5) and port constraints (Eq. 6)
//! dominates planning time: each check walks the whole topology. Klotski's
//! insight is that constraint satisfiability only depends on the
//! intermediate *topology*, and — with blocks consumed in canonical per-type
//! order — the topology only depends on the compact count vector `V`. The
//! checker therefore memoizes check results keyed on `V` (the ESC table
//! `T_c` of Algorithm 2).
//!
//! Three cache modes support the Figure 10 ablation:
//! - [`EscMode::Compact`]: key on `V` — the paper's design;
//! - [`EscMode::FullTopology`]: key on the entire activation bitset, as a
//!   naive implementation would (same hit rate, much more hashing and
//!   memory — the "excessive indexing overhead" the paper warns about);
//! - [`EscMode::Off`]: re-evaluate every time ("Klotski w/o ESC").
//!
//! When the funneling headroom model (§7.2) is enabled, satisfiability also
//! depends on *which* block was just drained, so the cache key gains the
//! last action type (the canonical block order makes `(V, last type)`
//! sufficient).
//!
//! Performance: the hot path is allocation-free — compact keys are the
//! mixed-radix dense index of `V` packed into a `u64` (falling back to the
//! count vector only if the target box overflows), the usable-circuit
//! predicate is hoisted into a bitmask computed once per evaluation, and
//! the full evaluation itself is parallel: routing fans destination groups
//! out over a [`WorkerPool`], and [`check_batch`](SatChecker::check_batch)
//! spreads independent candidate states across lanes. All parallel paths
//! return results bit-identical to `threads = 1`.

use crate::action::ActionTypeId;
use crate::compact::CompactState;
use crate::migration::MigrationSpec;
use klotski_parallel::WorkerPool;
use klotski_routing::{
    ecmp::RouteOutcome, evaluate::summarize, CsrGraph, EcmpRouter, IncrementalRouter, LoadMap,
    ParallelRouter, UsableMask,
};
use klotski_telemetry::{registry, Gauge};
use klotski_topology::{CircuitId, NetState};
use klotski_traffic::DemandMatrix;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cache strategy for satisfiability results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EscMode {
    /// Compact-representation keys (the paper's ESC design).
    Compact,
    /// Full activation-bitset keys (naive ablation).
    FullTopology,
    /// No caching ("Klotski w/o ESC").
    Off,
}

/// Counters exposed for evaluation reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SatStats {
    /// Total satisfiability queries.
    pub checks: u64,
    /// Queries answered from the cache (including queries answered by an
    /// identical query evaluated earlier in the same batch).
    pub cache_hits: u64,
    /// Queries that ran the full routing + port evaluation.
    pub full_evaluations: u64,
    /// Destination groups replayed from the incremental routing cache
    /// (zero when `MigrationOptions.incremental` is off).
    #[serde(default)]
    pub incremental_clean: u64,
    /// Destination groups the incremental engine had to re-route.
    #[serde(default)]
    pub incremental_dirty: u64,
    /// ESC cache entries currently resident.
    #[serde(default)]
    pub esc_entries: u64,
    /// Estimated resident bytes of the ESC cache (keys + verdicts +
    /// eviction queue).
    #[serde(default)]
    pub esc_bytes: u64,
    /// Resident bytes of the incremental engine's interned per-destination
    /// circuit footprints (zero when incremental evaluation is off).
    #[serde(default)]
    pub footprint_bytes: u64,
    /// Live-state audits ([`SatChecker::audit_live`]): from-scratch
    /// evaluations of observed states outside the canonical overlay, never
    /// cached.
    #[serde(default)]
    pub live_audits: u64,
    /// Traffic-ensemble size K (0 when no ensemble is configured; every
    /// verdict is then over the single planning matrix).
    #[serde(default)]
    pub ensemble_matrices: u64,
    /// Total per-matrix evaluations across all full evaluations (for an
    /// ensemble of K matrices, each full evaluation contributes between 1
    /// and K of these, depending on where it short-circuited).
    #[serde(default)]
    pub ensemble_matrix_checks: u64,
    /// Full evaluations that failed at some ensemble matrix (and skipped
    /// the matrices after it).
    #[serde(default)]
    pub ensemble_short_circuits: u64,
}

impl SatStats {
    /// Fraction of incremental destination evaluations served by replay.
    pub fn incremental_hit_rate(&self) -> f64 {
        let total = self.incremental_clean + self.incremental_dirty;
        if total == 0 {
            0.0
        } else {
            self.incremental_clean as f64 / total as f64
        }
    }
}

/// Per-matrix satisfiability accounting of one ensemble checker: how many
/// times each matrix was evaluated, how many candidates it killed (it was
/// the first failing matrix), and the wall time spent on it. Empty when no
/// ensemble is configured. Unlike the `Copy` aggregate counters in
/// [`SatStats`], this is sized by K and lives on the checker; planners
/// surface it through `PlanOutcome.ensemble`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnsembleBreakdown {
    /// One row per ensemble matrix, in check (index) order.
    pub matrices: Vec<EnsembleMatrixStat>,
}

/// One matrix's row in an [`EnsembleBreakdown`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnsembleMatrixStat {
    /// Human-readable matrix label ("base", "ewma[a=0.35]", ...).
    pub label: String,
    /// Evaluations of this matrix (its load sweep + constraint tail ran).
    pub checks: u64,
    /// Candidates this matrix killed: it was the first failing matrix, so
    /// every matrix after it was skipped.
    pub kills: u64,
    /// Wall time spent evaluating this matrix, nanoseconds.
    pub wall_ns: u64,
}

impl EnsembleBreakdown {
    /// True when this checker runs a K>1 ensemble.
    pub fn is_ensemble(&self) -> bool {
        self.matrices.len() > 1
    }

    fn record(&mut self, k: usize, wall: Duration, kill: bool) {
        let row = &mut self.matrices[k];
        row.checks += 1;
        row.kills += kill as u64;
        row.wall_ns += wall.as_nanos() as u64;
    }
}

/// Detailed outcome of one live-state audit ([`SatChecker::audit_live`]).
///
/// Richer than the boolean verdict planners consume: a controller pausing a
/// live migration needs to know *which* constraint broke and by how much.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveAudit {
    /// True iff reachability (Eq. 4), utilization (Eq. 5), and ports
    /// (Eq. 6) all hold.
    pub safe: bool,
    /// Eq. 4: every demand has a live path.
    pub all_reachable: bool,
    /// Count of unreachable demands.
    pub unreachable_demands: usize,
    /// Highest worst-direction utilization over usable circuits.
    pub max_utilization: f64,
    /// The circuit attaining `max_utilization`, if any traffic was routed.
    pub worst_circuit: Option<CircuitId>,
    /// Number of usable circuits whose utilization exceeds θ.
    pub theta_violations: usize,
    /// Smallest residual capacity `(θ·W_c − load)` over usable circuits.
    pub min_residual_gbps: f64,
    /// Eq. 6: some switch exceeds its port budget.
    pub port_violation: bool,
}

impl LiveAudit {
    /// Human-readable description of the dominant violated constraint, or
    /// `None` when the state is safe.
    pub fn violation(&self) -> Option<String> {
        if self.safe {
            return None;
        }
        if !self.all_reachable {
            return Some(format!("{} demands unreachable", self.unreachable_demands));
        }
        if self.theta_violations > 0 {
            return Some(format!(
                "{} circuits above theta (max utilization {:.3}{})",
                self.theta_violations,
                self.max_utilization,
                self.worst_circuit
                    .map(|c| format!(" on {c}"))
                    .unwrap_or_default(),
            ));
        }
        Some("port budget exceeded".to_string())
    }
}

/// ESC cache key. Compact mode packs the dense index of `V` into a `u64`
/// (no per-probe allocation); the `Counts` fallback only exists for target
/// boxes larger than `u64` can index.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CacheKey {
    Dense(u64, u8),
    Counts(Vec<u16>, u8),
    Full(NetState, u8),
}

/// Per-lane evaluation scratch for parallel batched checks.
#[derive(Debug)]
struct LaneEval {
    router: EcmpRouter,
    loads: LoadMap,
    mask: UsableMask,
    outcome: RouteOutcome,
    /// Per-ensemble-matrix `(checks, kills, wall_ns)` accumulated on this
    /// lane, merged into the checker's [`EnsembleBreakdown`] after each
    /// batch (in lane order; the sums are order-independent). Empty when no
    /// ensemble is configured.
    ens: Vec<(u64, u64, u64)>,
}

/// Delta-evaluation context: the incremental routing engine plus the base
/// `(V, state)` its cached structures correspond to.
///
/// The toggled-circuit set between base and child is derived *from the
/// block lists of the compact diff* — the circuits a block drains plus the
/// circuits incident to its switches are exactly the bits
/// `OperationBlock::apply` can flip — so no full-topology rescan happens on
/// the delta path. This (like the ESC cache itself) relies on states being
/// the canonical overlay of their compact vector.
#[derive(Debug)]
struct IncrementalEval {
    engine: IncrementalRouter,
    base_v: Option<CompactState>,
    base_state: NetState,
    /// Parent context staged by [`SatChecker::check_batch_from`]; the
    /// engine rebases onto it lazily, on the first cache miss, so
    /// fully-cached batches pay nothing.
    pending_parent: Option<(CompactState, NetState)>,
    /// Toggle scratch: exact changed circuits, deduplicated by stamp.
    toggles: Vec<CircuitId>,
    seen: Vec<u32>,
    epoch: u32,
}

/// Give up on delta derivation beyond this many blocks of compact-state
/// diff: the candidate scan would approach full-rescan cost, and a full
/// rebuild bounds the worst case.
const MAX_DELTA_BLOCKS: usize = 64;

impl IncrementalEval {
    /// Fills `self.toggles` with the exact set of circuits whose usability
    /// differs between `self.base_*` and `(v, state)`. Returns false when
    /// there is no base yet or the diff spans too many blocks (callers then
    /// fall back to a full rebuild).
    fn compute_toggles(
        &mut self,
        spec: &MigrationSpec,
        v: &CompactState,
        state: &NetState,
    ) -> bool {
        let Some(base_v) = &self.base_v else {
            return false;
        };
        let mut span = 0usize;
        for a in spec.actions.ids() {
            span += base_v.count(a).abs_diff(v.count(a)) as usize;
        }
        if span > MAX_DELTA_BLOCKS {
            return false;
        }
        self.toggles.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.seen.fill(0);
            self.epoch = 1;
        }
        let topo = &spec.topology;
        let base_state = &self.base_state;
        let seen = &mut self.seen;
        let toggles = &mut self.toggles;
        let epoch = self.epoch;
        let mut consider = |c: CircuitId| {
            let ci = c.index();
            if seen[ci] != epoch {
                seen[ci] = epoch;
                if base_state.circuit_usable(topo, c) != state.circuit_usable(topo, c) {
                    toggles.push(c);
                }
            }
        };
        for a in spec.actions.ids() {
            let (b, n) = (base_v.count(a), v.count(a));
            let (lo, hi) = (b.min(n), b.max(n));
            for i in lo..hi {
                let block = spec.block_for(a, i);
                for &c in &block.circuits {
                    consider(c);
                }
                for &s in &block.switches {
                    for &(c, _) in topo.neighbors(s) {
                        consider(c);
                    }
                }
            }
        }
        true
    }
}

/// The satisfiability checker with its ESC cache, worker pool, and reusable
/// routing buffers.
#[derive(Debug)]
pub struct SatChecker {
    mode: EscMode,
    /// True when the target box fits in a `u64` dense index (always, in
    /// practice: a box that overflows `u64` could never be searched anyway).
    dense_ok: bool,
    pool: Arc<WorkerPool>,
    router: ParallelRouter,
    /// Flattened topology view shared by all routing engines and lanes.
    csr: Arc<CsrGraph>,
    loads: LoadMap,
    mask: UsableMask,
    /// Reused routing-outcome buffer (no per-evaluation reallocation).
    outcome: RouteOutcome,
    /// Lazily sized per-lane scratch for `check_batch`.
    lane_scratch: Vec<LaneEval>,
    /// Delta evaluation engine (`MigrationOptions.incremental`).
    incremental: Option<IncrementalEval>,
    cache: HashMap<CacheKey, bool>,
    /// Insertion order of cached keys, for FIFO eviction at `cache_cap`.
    fifo: VecDeque<CacheKey>,
    cache_cap: usize,
    cache_bytes: u64,
    /// Estimated heap bytes of one `CacheKey::Full` activation bitset.
    full_key_bytes: u64,
    stats: SatStats,
    /// Per-matrix ensemble accounting (empty when no ensemble).
    ensemble: EnsembleBreakdown,
    /// Index of the matrix that failed the most recent cache-missing
    /// sequential evaluation (`None` when it passed, or no ensemble).
    last_fail_matrix: Option<usize>,
    esc_entries_gauge: Arc<Gauge>,
    esc_bytes_gauge: Arc<Gauge>,
}

/// Cache-key discriminant when the last action type is irrelevant.
const NO_LAST: u8 = u8::MAX;

/// Estimated resident bytes of one cached verdict: the key in the map, its
/// FIFO copy, and the verdict itself (a coarse but monotone estimate).
fn key_bytes(key: &CacheKey, full_key_bytes: u64) -> u64 {
    let heap = match key {
        CacheKey::Dense(..) => 0,
        CacheKey::Counts(counts, _) => 2 * counts.len() as u64,
        CacheKey::Full(..) => full_key_bytes,
    };
    2 * (std::mem::size_of::<CacheKey>() as u64 + heap) + 1
}

impl SatChecker {
    /// Creates a checker for one migration instance, with the lane count
    /// taken from `spec.threads`.
    pub fn new(spec: &MigrationSpec, mode: EscMode) -> Self {
        Self::with_threads(spec, mode, spec.threads)
    }

    /// Creates a checker with an explicit lane count (≥ 1). `threads == 1`
    /// reproduces the sequential checker exactly; larger counts produce
    /// bit-identical results faster.
    pub fn with_threads(spec: &MigrationSpec, mode: EscMode, threads: usize) -> Self {
        Self::with_pool(spec, mode, Arc::new(WorkerPool::new(threads)))
    }

    /// Creates a checker over an existing worker pool. Long-lived callers
    /// (the planning service's worker threads) share one pool across many
    /// jobs instead of spawning threads per plan; verdicts are identical to
    /// a privately-owned pool of the same lane count.
    pub fn with_pool(spec: &MigrationSpec, mode: EscMode, pool: Arc<WorkerPool>) -> Self {
        let reg = registry();
        reg.set_help(
            "klotski_esc_cache_entries",
            "Resident ESC cache entries of the most recent checker",
        );
        reg.set_help(
            "klotski_esc_cache_bytes",
            "Estimated resident bytes of the ESC cache",
        );
        // One flattened CSR view of the topology, shared read-only by the
        // parallel router's lanes, the incremental engine, and the per-lane
        // batch evaluators.
        let csr = Arc::new(CsrGraph::build(&spec.topology));
        let incremental = spec.incremental.then(|| IncrementalEval {
            engine: IncrementalRouter::with_csr_ensemble(
                csr.clone(),
                &spec.demands,
                &spec.extra_demands,
                pool.lanes(),
                spec.split,
            ),
            base_v: None,
            base_state: spec.initial.clone(),
            pending_parent: None,
            toggles: Vec::new(),
            seen: vec![0; spec.topology.num_circuits()],
            epoch: 0,
        });
        Self {
            mode,
            dense_ok: box_fits_u64(&spec.target_counts),
            router: ParallelRouter::with_csr(csr.clone(), pool.lanes(), spec.split),
            csr,
            pool,
            loads: LoadMap::new(&spec.topology),
            mask: UsableMask::new(),
            outcome: RouteOutcome::new(),
            lane_scratch: Vec::new(),
            incremental,
            cache: HashMap::new(),
            fifo: VecDeque::new(),
            cache_cap: spec.esc_cache_cap.max(1),
            cache_bytes: 0,
            full_key_bytes: ((spec.topology.num_switches() + spec.topology.num_circuits())
                .div_ceil(8)) as u64,
            stats: SatStats::default(),
            ensemble: EnsembleBreakdown {
                matrices: if spec.extra_demands.is_empty() {
                    Vec::new()
                } else {
                    (0..=spec.extra_demands.len())
                        .map(|k| EnsembleMatrixStat {
                            label: spec
                                .ensemble_labels
                                .get(k)
                                .cloned()
                                .unwrap_or_else(|| format!("m{k}")),
                            ..EnsembleMatrixStat::default()
                        })
                        .collect()
                },
            },
            last_fail_matrix: None,
            esc_entries_gauge: reg.gauge("klotski_esc_cache_entries"),
            esc_bytes_gauge: reg.gauge("klotski_esc_cache_bytes"),
        }
    }

    /// Counter snapshot, folding in the incremental engine's destination
    /// counters and the current ESC cache footprint.
    pub fn stats(&self) -> SatStats {
        let mut s = self.stats;
        if let Some(incr) = &self.incremental {
            let es = incr.engine.stats();
            s.incremental_clean = es.clean_destinations;
            s.incremental_dirty = es.dirty_destinations;
            s.footprint_bytes = incr.engine.footprint_bytes();
        }
        s.esc_entries = self.cache.len() as u64;
        s.esc_bytes = self.cache_bytes;
        s.ensemble_matrices = self.ensemble.matrices.len() as u64;
        s.ensemble_matrix_checks = self.ensemble.matrices.iter().map(|m| m.checks).sum();
        s.ensemble_short_circuits = self.ensemble.matrices.iter().map(|m| m.kills).sum();
        s
    }

    /// Per-matrix ensemble accounting — who killed which candidates, and
    /// how long each matrix's load sweeps took. Empty rows when no ensemble
    /// is configured.
    pub fn ensemble_breakdown(&self) -> &EnsembleBreakdown {
        &self.ensemble
    }

    /// Index of the ensemble matrix that failed the most recent
    /// cache-missing sequential [`check`](Self::check) (`None` when the
    /// state passed all matrices, or no ensemble is configured). Test hook
    /// for the short-circuit determinism proptests; batch-mode verdicts
    /// don't update it.
    #[doc(hidden)]
    pub fn last_fail_matrix(&self) -> Option<usize> {
        self.last_fail_matrix
    }

    /// True when this checker evaluates child states incrementally.
    pub fn is_incremental(&self) -> bool {
        self.incremental.is_some()
    }

    /// Loads produced by the most recent full evaluation on the checker's
    /// own buffers (diagnostic/test hook — meaningful right after a
    /// sequential cache-missing [`check`](Self::check)).
    #[doc(hidden)]
    pub fn last_loads(&self) -> &LoadMap {
        &self.loads
    }

    /// Execution lanes available to this checker.
    pub fn lanes(&self) -> usize {
        self.pool.lanes()
    }

    /// Number of cached entries (for memory-footprint reporting).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Audits an *arbitrary* live state under an *arbitrary* demand matrix
    /// — the shadow-audit entry point for controllers observing a real
    /// fleet.
    ///
    /// Unlike [`check`](Self::check), the audited state may include
    /// disturbances (failed circuits, externally drained switches) outside
    /// the canonical overlay of any compact state, and `demands` may differ
    /// from the spec's planning matrix (organic growth, surges). Neither
    /// the ESC cache (keyed on canonical compact states) nor the
    /// incremental engine (whose deltas assume canonical overlays and a
    /// fixed demand matrix) is sound for such states, so the audit always
    /// routes from scratch — on the checker's pooled parallel router and
    /// reused buffers, bit-identical at any lane count. The incremental
    /// engine's base state is left untouched, so interleaving audits with
    /// planner-driven `check_batch_from` calls is safe.
    ///
    /// The space model (§7.2) is plan-scoped — it constrains the compact
    /// progress vector, which a live state does not carry — so it is not
    /// part of a live audit.
    pub fn audit_live(
        &mut self,
        spec: &MigrationSpec,
        state: &NetState,
        demands: &DemandMatrix,
    ) -> LiveAudit {
        self.stats.live_audits += 1;
        let mut mask = std::mem::take(&mut self.mask);
        mask.compute(&spec.topology, state);
        self.loads.clear();
        self.router.route_with_mask_into(
            &self.pool,
            &spec.topology,
            state,
            &mask,
            demands,
            &mut self.loads,
            &mut self.outcome,
        );
        self.mask = mask;
        let report = summarize(&spec.topology, state, &self.loads, spec.theta);
        let port_violation = spec.check_ports && spec.topology.has_port_violation(state);
        LiveAudit {
            safe: self.outcome.all_reachable() && report.violations == 0 && !port_violation,
            all_reachable: self.outcome.all_reachable(),
            unreachable_demands: self.outcome.unreachable.len(),
            max_utilization: report.max_utilization,
            worst_circuit: report.worst_circuit,
            theta_violations: report.violations,
            min_residual_gbps: report.min_residual_gbps,
            port_violation,
        }
    }

    /// Checks whether the state identified by `v` (with activation overlay
    /// `state`, which callers maintain incrementally) satisfies the demand
    /// and port constraints. `last` is the action type that produced this
    /// state (`None` for the origin); it matters only when funneling
    /// headroom is enabled.
    pub fn check(
        &mut self,
        spec: &MigrationSpec,
        v: &CompactState,
        state: &NetState,
        last: Option<ActionTypeId>,
    ) -> bool {
        self.stats.checks += 1;
        let Some(key) = self.key_for(spec, v, state, last) else {
            self.stats.full_evaluations += 1;
            return self.evaluate(spec, v, state, last);
        };
        if let Some(&hit) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return hit;
        }
        self.stats.full_evaluations += 1;
        let result = self.evaluate(spec, v, state, last);
        self.cache_insert(key, result);
        result
    }

    /// Inserts a verdict, evicting the oldest entries past the cap (FIFO:
    /// planners revisit recent expansions far more often than old ones, and
    /// FIFO needs no per-hit bookkeeping on the fast path).
    fn cache_insert(&mut self, key: CacheKey, verdict: bool) {
        match self.cache.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => return,
            std::collections::hash_map::Entry::Vacant(slot) => {
                self.cache_bytes += key_bytes(slot.key(), self.full_key_bytes);
                self.fifo.push_back(slot.key().clone());
                slot.insert(verdict);
            }
        }
        while self.cache.len() > self.cache_cap {
            let Some(old) = self.fifo.pop_front() else {
                break;
            };
            if self.cache.remove(&old).is_some() {
                self.cache_bytes = self
                    .cache_bytes
                    .saturating_sub(key_bytes(&old, self.full_key_bytes));
            }
        }
        self.esc_entries_gauge.set(self.cache.len() as f64);
        self.esc_bytes_gauge.set(self.cache_bytes as f64);
    }

    /// Checks a batch of candidate states (planner expansions), answering
    /// cached items immediately and spreading the uncached evaluations
    /// across the pool's lanes. Verdicts come back in item order and are
    /// identical to issuing [`check`](Self::check) per item; ESC inserts
    /// are merged after the batch, also in item order.
    ///
    /// With one lane or at most one uncached item this degenerates to the
    /// sequential path, where each evaluation instead parallelizes its own
    /// routing over the pool.
    pub fn check_batch(
        &mut self,
        spec: &MigrationSpec,
        items: &[(&CompactState, &NetState, Option<ActionTypeId>)],
    ) -> Vec<bool> {
        self.check_batch_from(spec, None, items)
    }

    /// [`check_batch`](Self::check_batch) with parent context: planners
    /// pass the `(V, state)` the candidate states were expanded from, so an
    /// incremental checker rebases its routing cache onto the parent and
    /// each child evaluation diffs by exactly the one applied block. The
    /// rebase is lazy — staged here, performed on the first cache miss —
    /// and verdicts are identical to [`check_batch`] with any parent.
    pub fn check_batch_from(
        &mut self,
        spec: &MigrationSpec,
        parent: Option<(&CompactState, &NetState)>,
        items: &[(&CompactState, &NetState, Option<ActionTypeId>)],
    ) -> Vec<bool> {
        if let (Some(incr), Some((pv, ps))) = (&mut self.incremental, parent) {
            if incr.base_v.as_ref() != Some(pv) {
                incr.pending_parent = Some((pv.clone(), ps.clone()));
            } else {
                incr.pending_parent = None;
            }
        }
        // The incremental engine chains deltas state-to-state, which is
        // inherently sequential across items; each evaluation still fans
        // its destinations out over the pool's lanes.
        if self.incremental.is_some() || self.pool.lanes() == 1 || items.len() <= 1 {
            return items
                .iter()
                .map(|&(v, state, last)| self.check(spec, v, state, last))
                .collect();
        }

        self.stats.checks += items.len() as u64;
        let mut results = vec![false; items.len()];
        // Probe the cache; deduplicate uncached keys so each distinct state
        // evaluates once (DP asks about one `V` under several action types,
        // which collapse to one key when funneling is off).
        let mut miss_items: Vec<usize> = Vec::new();
        let mut resolve: Vec<Option<usize>> = vec![None; items.len()];
        let mut keys: Vec<Option<CacheKey>> = Vec::with_capacity(items.len());
        let mut seen: HashMap<CacheKey, usize> = HashMap::new();
        for (i, &(v, state, last)) in items.iter().enumerate() {
            let key = self.key_for(spec, v, state, last);
            match &key {
                Some(k) => {
                    if let Some(&hit) = self.cache.get(k) {
                        self.stats.cache_hits += 1;
                        results[i] = hit;
                    } else if let Some(&slot) = seen.get(k) {
                        self.stats.cache_hits += 1;
                        resolve[i] = Some(slot);
                    } else {
                        seen.insert(k.clone(), miss_items.len());
                        resolve[i] = Some(miss_items.len());
                        miss_items.push(i);
                    }
                }
                None => {
                    resolve[i] = Some(miss_items.len());
                    miss_items.push(i);
                }
            }
            keys.push(key);
        }
        if miss_items.is_empty() {
            return results;
        }

        self.stats.full_evaluations += miss_items.len() as u64;
        let mut verdicts = vec![false; miss_items.len()];
        if miss_items.len() == 1 {
            let (v, state, last) = items[miss_items[0]];
            verdicts[0] = self.evaluate(spec, v, state, last);
        } else {
            // On a single-core machine the lanes cannot run concurrently,
            // so the batch evaluates inline on one lane's scratch instead
            // of waking parked workers. Items are independent full
            // evaluations, so execution mode is unobservable.
            let eff_lanes = if klotski_parallel::default_lanes() > 1 {
                self.pool.lanes()
            } else {
                1
            };
            if self.lane_scratch.len() < eff_lanes {
                self.lane_scratch = (0..eff_lanes)
                    .map(|_| LaneEval {
                        router: EcmpRouter::from_csr(self.csr.clone(), spec.split),
                        loads: LoadMap::new(&spec.topology),
                        mask: UsableMask::new(),
                        outcome: RouteOutcome::new(),
                        ens: if spec.extra_demands.is_empty() {
                            Vec::new()
                        } else {
                            vec![(0, 0, 0); 1 + spec.extra_demands.len()]
                        },
                    })
                    .collect();
            }
            if eff_lanes == 1 {
                let lane = &mut self.lane_scratch[0];
                for (slot, out) in verdicts.iter_mut().enumerate() {
                    let (v, state, last) = items[miss_items[slot]];
                    *out = evaluate_on_lane(lane, spec, v, state, last);
                }
            } else {
                let miss_ref = &miss_items;
                self.pool.run_scratch_tasks_into(
                    &mut self.lane_scratch,
                    &mut verdicts,
                    |lane, slot, out| {
                        let (v, state, last) = items[miss_ref[slot]];
                        *out = evaluate_on_lane(lane, spec, v, state, last);
                    },
                );
            }
        }

        // Merge lane-local ensemble counters (additive, so the merged sums
        // are deterministic regardless of item-to-lane assignment).
        if !spec.extra_demands.is_empty() {
            for lane in &mut self.lane_scratch {
                for (k, (checks, kills, wall_ns)) in lane.ens.iter_mut().enumerate() {
                    let row = &mut self.ensemble.matrices[k];
                    row.checks += *checks;
                    row.kills += *kills;
                    row.wall_ns += *wall_ns;
                    *checks = 0;
                    *kills = 0;
                    *wall_ns = 0;
                }
            }
        }
        for (i, slot) in resolve.iter().enumerate() {
            if let Some(slot) = slot {
                results[i] = verdicts[*slot];
            }
        }
        // Cache inserts merged after the batch, in item order.
        for (i, key) in keys.into_iter().enumerate() {
            if let (Some(k), Some(slot)) = (key, resolve[i]) {
                self.cache_insert(k, verdicts[slot]);
            }
        }
        results
    }

    /// The cache key of a query, or `None` when caching is off.
    fn key_for(
        &self,
        spec: &MigrationSpec,
        v: &CompactState,
        state: &NetState,
        last: Option<ActionTypeId>,
    ) -> Option<CacheKey> {
        // The last action type changes the outcome only via the funneling
        // model; without it, equivalent states are exactly Definition 1.
        let last_key = if spec.funneling.is_enabled() {
            last.map(|a| a.0).unwrap_or(NO_LAST)
        } else {
            NO_LAST
        };
        match self.mode {
            EscMode::Compact => Some(if self.dense_ok {
                CacheKey::Dense(dense_u64(v, &spec.target_counts), last_key)
            } else {
                CacheKey::Counts(v.counts().to_vec(), last_key)
            }),
            EscMode::FullTopology => Some(CacheKey::Full(state.clone(), last_key)),
            EscMode::Off => None,
        }
    }

    /// The actual Eq. 4–6 evaluation on the checker's own buffers, with
    /// routing parallelized over the pool.
    fn evaluate(
        &mut self,
        spec: &MigrationSpec,
        v: &CompactState,
        state: &NetState,
        last: Option<ActionTypeId>,
    ) -> bool {
        // Space/power footprint (§7.2) is the cheapest constraint: O(|A|).
        // Checked before routing, so it leaves the incremental base alone.
        if let Some(space) = &spec.space {
            if !space.fits(v) {
                return false;
            }
        }
        // Ensemble accounting is armed only when extra matrices exist, so
        // the single-matrix path pays no timing overhead.
        let ens_start = (!spec.extra_demands.is_empty()).then(Instant::now);
        if let Some(incr) = &mut self.incremental {
            // Apply a staged parent rebase first, so this child's delta is
            // the one block the planner applied.
            if let Some((pv, ps)) = incr.pending_parent.take() {
                if incr.base_v.as_ref() != Some(&pv) {
                    let delta = incr.compute_toggles(spec, &pv, &ps);
                    let toggles = delta.then_some(&incr.toggles[..]);
                    incr.engine.rebase(&self.pool, &spec.topology, &ps, toggles);
                    incr.base_v = Some(pv);
                    incr.base_state = ps;
                }
            }
            let delta = incr.compute_toggles(spec, v, state);
            let toggles = delta.then_some(&incr.toggles[..]);
            self.loads.clear();
            incr.engine.evaluate(
                &self.pool,
                &spec.topology,
                state,
                toggles,
                &mut self.loads,
                &mut self.outcome,
            );
            incr.base_v = Some(v.clone());
            incr.base_state.clone_from(state);
        } else {
            let mut mask = std::mem::take(&mut self.mask);
            mask.compute(&spec.topology, state);
            self.loads.clear();
            self.router.route_with_mask_into(
                &self.pool,
                &spec.topology,
                state,
                &mask,
                &spec.demands,
                &mut self.loads,
                &mut self.outcome,
            );
            self.mask = mask;
        }
        let ok = finish_evaluate(spec, v, state, last, &mut self.loads, &self.outcome);
        let Some(t0) = ens_start else {
            return ok;
        };
        // Ensemble verdict: AND over all K matrices, evaluated in index
        // order with a short-circuit on the first failure — a sequential
        // order independent of lane count, so verdicts (and the failing
        // index) are deterministic at any thread count.
        self.ensemble.record(0, t0.elapsed(), !ok);
        if !ok {
            self.last_fail_matrix = Some(0);
            return false;
        }
        for k in 0..spec.extra_demands.len() {
            let tk = Instant::now();
            self.loads.clear();
            if let Some(incr) = &mut self.incremental {
                // Distance labels, DAGs, and the base matrix's edit lists
                // were just built for `state`; only the load sweep replays.
                incr.engine
                    .replay_extra(k, state, &mut self.loads, &mut self.outcome);
            } else {
                // The usable mask was computed for `state` above and is
                // demand-independent; only the routing pass re-runs.
                self.router.route_with_mask_into(
                    &self.pool,
                    &spec.topology,
                    state,
                    &self.mask,
                    &spec.extra_demands[k],
                    &mut self.loads,
                    &mut self.outcome,
                );
            }
            let ok = finish_evaluate(spec, v, state, last, &mut self.loads, &self.outcome);
            self.ensemble.record(k + 1, tk.elapsed(), !ok);
            if !ok {
                self.last_fail_matrix = Some(k + 1);
                return false;
            }
        }
        self.last_fail_matrix = None;
        true
    }
}

/// One full evaluation on a batch lane's private scratch.
fn evaluate_on_lane(
    lane: &mut LaneEval,
    spec: &MigrationSpec,
    v: &CompactState,
    state: &NetState,
    last: Option<ActionTypeId>,
) -> bool {
    if let Some(space) = &spec.space {
        if !space.fits(v) {
            return false;
        }
    }
    let ens_start = (!spec.extra_demands.is_empty()).then(Instant::now);
    lane.mask.compute(&spec.topology, state);
    lane.loads.clear();
    lane.router.route_with_mask_into(
        &spec.topology,
        state,
        &lane.mask,
        &spec.demands,
        &mut lane.loads,
        &mut lane.outcome,
    );
    let ok = finish_evaluate(spec, v, state, last, &mut lane.loads, &lane.outcome);
    let Some(t0) = ens_start else {
        return ok;
    };
    // Same index-ordered short-circuit as the sequential path: each item's
    // ensemble verdict is evaluated entirely on one lane, so the first
    // failing matrix per item is independent of how items map to lanes.
    record_lane(lane, 0, t0, !ok);
    if !ok {
        return false;
    }
    for k in 0..spec.extra_demands.len() {
        let tk = Instant::now();
        lane.loads.clear();
        lane.router.route_with_mask_into(
            &spec.topology,
            state,
            &lane.mask,
            &spec.extra_demands[k],
            &mut lane.loads,
            &mut lane.outcome,
        );
        let ok = finish_evaluate(spec, v, state, last, &mut lane.loads, &lane.outcome);
        record_lane(lane, k + 1, tk, !ok);
        if !ok {
            return false;
        }
    }
    true
}

/// Accumulates one per-matrix evaluation into a lane's local counters.
fn record_lane(lane: &mut LaneEval, k: usize, since: Instant, kill: bool) {
    let (checks, kills, wall_ns) = &mut lane.ens[k];
    *checks += 1;
    *kills += kill as u64;
    *wall_ns += since.elapsed().as_nanos() as u64;
}

/// Shared tail of every evaluation: funneling headroom, θ comparison, and
/// port budgets.
fn finish_evaluate(
    spec: &MigrationSpec,
    v: &CompactState,
    state: &NetState,
    last: Option<ActionTypeId>,
    loads: &mut LoadMap,
    route: &RouteOutcome,
) -> bool {
    if !route.all_reachable() {
        return false;
    }
    let topo = &spec.topology;
    if spec.funneling.is_enabled() {
        if let Some(a) = last {
            if spec.kind_is_drain(a) && v.count(a) > 0 {
                let block = spec.block_for(a, v.count(a) - 1);
                spec.funneling.apply(topo, state, &block.switches, loads);
            }
        }
    }
    let report = summarize(topo, state, loads, spec.theta);
    if report.violations > 0 {
        return false;
    }
    if spec.check_ports && topo.has_port_violation(state) {
        return false;
    }
    true
}

/// True when the mixed-radix box `Π (target_i + 1)` fits in a `u64`.
fn box_fits_u64(target: &CompactState) -> bool {
    let mut size = 1u128;
    for &c in target.counts() {
        size = size.saturating_mul(c as u128 + 1);
        if size > u64::MAX as u128 {
            return false;
        }
    }
    true
}

/// Mixed-radix dense index of `v` within `target`'s box, in `u64` (only
/// valid when [`box_fits_u64`]; injective over the box, which is all a cache
/// key needs).
fn dense_u64(v: &CompactState, target: &CompactState) -> u64 {
    let mut idx = 0u64;
    for (&count, &bound) in v.counts().iter().zip(target.counts()) {
        debug_assert!(count <= bound, "count outside the target box");
        idx = idx * (bound as u64 + 1) + count as u64;
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::{MigrationBuilder, MigrationOptions};
    use klotski_topology::presets::{self, PresetId};

    fn spec() -> MigrationSpec {
        MigrationBuilder::hgrid_v1_to_v2(&presets::build(PresetId::A), &MigrationOptions::default())
            .unwrap()
    }

    #[test]
    fn origin_and_target_are_satisfiable() {
        let spec = spec();
        let mut checker = SatChecker::new(&spec, EscMode::Compact);
        let origin = CompactState::origin(spec.num_types());
        assert!(checker.check(&spec, &origin, &spec.initial, None));
        let target_state = spec.target_state();
        assert!(checker.check(&spec, &spec.target_counts, &target_state, None));
    }

    #[test]
    fn full_v1_drain_is_unsatisfiable() {
        let spec = spec();
        let mut checker = SatChecker::new(&spec, EscMode::Compact);
        let v = CompactState::from_counts(vec![spec.target_counts.counts()[0], 0]);
        let state = spec.state_for(&v);
        assert!(!checker.check(&spec, &v, &state, Some(ActionTypeId(0))));
    }

    #[test]
    fn cache_hits_on_repeat_queries() {
        let spec = spec();
        let mut checker = SatChecker::new(&spec, EscMode::Compact);
        let origin = CompactState::origin(spec.num_types());
        checker.check(&spec, &origin, &spec.initial, None);
        checker.check(&spec, &origin, &spec.initial, None);
        checker.check(&spec, &origin, &spec.initial, None);
        let s = checker.stats();
        assert_eq!(s.checks, 3);
        assert_eq!(s.full_evaluations, 1);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(checker.cache_len(), 1);
    }

    #[test]
    fn off_mode_never_caches() {
        let spec = spec();
        let mut checker = SatChecker::new(&spec, EscMode::Off);
        let origin = CompactState::origin(spec.num_types());
        checker.check(&spec, &origin, &spec.initial, None);
        checker.check(&spec, &origin, &spec.initial, None);
        let s = checker.stats();
        assert_eq!(s.full_evaluations, 2);
        assert_eq!(s.cache_hits, 0);
        assert_eq!(checker.cache_len(), 0);
    }

    #[test]
    fn full_topology_mode_agrees_with_compact() {
        let spec = spec();
        let mut compact = SatChecker::new(&spec, EscMode::Compact);
        let mut full = SatChecker::new(&spec, EscMode::FullTopology);
        // Walk a few states and compare verdicts.
        for counts in [vec![0, 0], vec![1, 0], vec![1, 1], vec![2, 1], vec![3, 3]] {
            let v = CompactState::from_counts(counts);
            let state = spec.state_for(&v);
            assert_eq!(
                compact.check(&spec, &v, &state, None),
                full.check(&spec, &v, &state, None),
                "modes disagree at {v}"
            );
        }
        assert_eq!(full.cache_len(), 5);
    }

    #[test]
    fn funneling_key_includes_last_action() {
        let opts = MigrationOptions {
            funneling: klotski_routing::FunnelingModel {
                headroom_factor: 1.5,
            },
            ..MigrationOptions::default()
        };
        let spec = MigrationBuilder::hgrid_v1_to_v2(&presets::build(PresetId::A), &opts).unwrap();
        let mut checker = SatChecker::new(&spec, EscMode::Compact);
        let v = CompactState::from_counts(vec![1, 0]);
        let state = spec.state_for(&v);
        checker.check(&spec, &v, &state, Some(ActionTypeId(0)));
        checker.check(&spec, &v, &state, None);
        // Distinct cache entries because the funneling outcome differs.
        assert_eq!(checker.cache_len(), 2);
        assert_eq!(checker.stats().full_evaluations, 2);
    }

    #[test]
    fn funneling_tightens_the_verdict() {
        // A state that passes without funneling can fail with a large
        // headroom factor.
        let base = spec();
        let opts = MigrationOptions {
            funneling: klotski_routing::FunnelingModel {
                headroom_factor: 10.0,
            },
            ..MigrationOptions::default()
        };
        let funneled =
            MigrationBuilder::hgrid_v1_to_v2(&presets::build(PresetId::A), &opts).unwrap();
        let v = CompactState::from_counts(vec![1, 0]);

        let mut c1 = SatChecker::new(&base, EscMode::Off);
        let s1 = base.state_for(&v);
        let plain = c1.check(&base, &v, &s1, Some(ActionTypeId(0)));

        let mut c2 = SatChecker::new(&funneled, EscMode::Off);
        let s2 = funneled.state_for(&v);
        let stressed = c2.check(&funneled, &v, &s2, Some(ActionTypeId(0)));

        assert!(plain, "one grid drained must be fine without funneling");
        assert!(!stressed, "x10 headroom must blow through theta");
    }

    #[test]
    fn dense_u64_is_injective_over_a_small_box() {
        let target = CompactState::from_counts(vec![3, 2, 4]);
        assert!(box_fits_u64(&target));
        let mut seen = std::collections::HashSet::new();
        for a in 0..=3u16 {
            for b in 0..=2u16 {
                for c in 0..=4u16 {
                    let v = CompactState::from_counts(vec![a, b, c]);
                    assert!(seen.insert(dense_u64(&v, &target)), "collision at {v}");
                }
            }
        }
        let huge = CompactState::from_counts(vec![u16::MAX; 5]);
        assert!(!box_fits_u64(&huge));
    }

    #[test]
    fn batch_agrees_with_sequential_checks_across_thread_counts() {
        let spec = spec();
        let states: Vec<(CompactState, NetState)> = [
            vec![0, 0],
            vec![1, 0],
            vec![1, 1],
            vec![2, 1],
            vec![3, 0],
            vec![2, 4],
            vec![3, 6],
        ]
        .into_iter()
        .map(|c| {
            let v = CompactState::from_counts(c);
            let s = spec.state_for(&v);
            (v, s)
        })
        .collect();
        let items: Vec<(&CompactState, &NetState, Option<ActionTypeId>)> = states
            .iter()
            .map(|(v, s)| (v, s, Some(ActionTypeId(0))))
            .collect();

        let mut reference = SatChecker::with_threads(&spec, EscMode::Off, 1);
        let expected: Vec<bool> = items
            .iter()
            .map(|&(v, s, l)| reference.check(&spec, v, s, l))
            .collect();

        for threads in [1, 2, 4] {
            for mode in [EscMode::Compact, EscMode::FullTopology, EscMode::Off] {
                let mut checker = SatChecker::with_threads(&spec, mode, threads);
                assert_eq!(
                    checker.check_batch(&spec, &items),
                    expected,
                    "{mode:?} with {threads} threads"
                );
                // A second pass answers from the cache (or re-evaluates in
                // Off mode) with identical verdicts.
                assert_eq!(checker.check_batch(&spec, &items), expected);
            }
        }
    }

    #[test]
    fn batch_dedupes_identical_keys() {
        let spec = spec();
        let mut checker = SatChecker::with_threads(&spec, EscMode::Compact, 4);
        let v = CompactState::from_counts(vec![1, 1]);
        let state = spec.state_for(&v);
        // Funneling off: the last action type is not part of the key, so
        // both items share one evaluation.
        let items: Vec<(&CompactState, &NetState, Option<ActionTypeId>)> = vec![
            (&v, &state, Some(ActionTypeId(0))),
            (&v, &state, Some(ActionTypeId(1))),
        ];
        let out = checker.check_batch(&spec, &items);
        assert_eq!(out[0], out[1]);
        let s = checker.stats();
        assert_eq!(s.checks, 2);
        assert_eq!(s.full_evaluations, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(checker.cache_len(), 1);
    }
}
