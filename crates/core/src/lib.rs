//! # klotski-core
//!
//! The Klotski migration planner (SIGCOMM 2023): problem formulation,
//! search-space pruning, efficient satisfiability checking, and the DP and
//! A\* planners, plus the plan executor with the operational machinery of
//! §7 (forecast-driven replanning, failure and surge injection).
//!
//! ## The problem (§3)
//!
//! A migration is a sequence of *actions* over *operation blocks* — groups
//! of switches/circuits drained or undrained together. Every block is
//! operated exactly once (Eq. 2–3); every checked intermediate topology must
//! route all demands under the utilization bound θ (Eq. 4–5) and respect
//! physical port budgets (Eq. 6). The objective (Eq. 1) minimizes serial
//! operation phases: consecutive actions of the same type merge into one
//! phase; with the generalized cost function (§5), operating `x` blocks in
//! one phase costs `1 + α(x−1)`.
//!
//! ## The solution (§4)
//!
//! - [`blocks`]: symmetry blocks (Janus-style equivalence) merged by
//!   locality into operation blocks via the organization policy of §5.
//! - [`compact`]: the ordering-agnostic compact topology representation —
//!   a vector counting finished actions per type (Definition 1).
//! - [`satcheck`]: satisfiability checking with the ESC cache keyed on the
//!   compact representation.
//! - [`planner`]: the DP planner (Algorithm 1) and the A\* planner
//!   (Algorithm 2) with the domain-specific priority function.
//!
//! ```
//! use klotski_core::migration::{MigrationBuilder, MigrationOptions};
//! use klotski_core::planner::{AStarPlanner, Planner};
//! use klotski_topology::presets::{self, PresetId};
//!
//! let preset = presets::build(PresetId::A);
//! let spec = MigrationBuilder::hgrid_v1_to_v2(&preset, &MigrationOptions::default()).unwrap();
//! let outcome = AStarPlanner::default().plan(&spec).unwrap();
//! assert!(outcome.plan.num_phases() >= 2); // at least one drain + one undrain phase
//! ```

pub mod action;
pub mod blocks;
pub mod compact;
pub mod cost;
pub mod error;
pub mod executor;
pub mod migration;
pub mod opex;
pub mod plan;
pub mod planner;
pub mod policy;
pub mod report;
pub mod satcheck;
pub mod space;

pub use action::{ActionKind, ActionTable, ActionTypeId, BlockClass, OpType};
pub use blocks::{BlockId, OperationBlock};
pub use compact::CompactState;
pub use cost::CostModel;
pub use error::PlanError;
pub use migration::{MigrationBuilder, MigrationOptions, MigrationSpec, MigrationType};
pub use opex::{OpexModel, OpexReport};
pub use plan::{MigrationPlan, PlanPhase};
pub use planner::{
    AStarPlanner, CancelFlag, DpPlanner, PlanOutcome, PlanStats, Planner, SearchBudget,
};
pub use report::{audit_plan, PlanAudit};
pub use satcheck::{EnsembleBreakdown, EnsembleMatrixStat, EscMode, LiveAudit, SatChecker};
pub use space::SpaceModel;
// Re-exported so wire-schema crates (npd) can name ensemble specs without a
// direct dependency on the traffic crate.
pub use klotski_traffic::{EnsembleError, EnsembleSpec, TrafficEnsemble};
