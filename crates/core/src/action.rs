//! Action types.
//!
//! §3 of the paper: "Every switch to be operated on has its action type,
//! which is decided by its switch type R_s and the operation type (drain or
//! undrain)." Operation blocks can merge neighboring symmetry blocks of
//! different switch roles (Figure 5 merges FADU and FAUU blocks into one
//! grid block), so the action type here is keyed by the *block class* — the
//! layer-level unit being operated — its hardware generation, and the
//! operation. Two consecutive actions with the same type can be executed by
//! operators in parallel at negligible extra cost; a type change costs one
//! serial phase (Eq. 1).

use klotski_topology::Generation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Drain (take out of service) or undrain (bring into service).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpType {
    /// Remove traffic from the block, then take it out of service.
    Drain,
    /// Bring the block into service and let it attract traffic.
    Undrain,
}

impl fmt::Display for OpType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpType::Drain => "drain",
            OpType::Undrain => "undrain",
        })
    }
}

/// What kind of unit an operation block holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BlockClass {
    /// An HGRID grid (FADUs + FAUUs operated together, Figure 5).
    FaGrid,
    /// A group of spine switches on one plane (SSW forklift, §5).
    Ssw,
    /// A group of MA switches homed under one EB (DMAG, §5).
    Ma,
    /// A bundle of direct FAUU–EB circuits grouped by EB (DMAG drains, §5).
    DirectCircuit,
}

impl fmt::Display for BlockClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BlockClass::FaGrid => "fa-grid",
            BlockClass::Ssw => "ssw",
            BlockClass::Ma => "ma",
            BlockClass::DirectCircuit => "direct-ckt",
        })
    }
}

/// An action type: (block class, generation, operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActionKind {
    pub class: BlockClass,
    pub generation: Generation,
    pub op: OpType,
}

impl ActionKind {
    /// Shorthand constructor.
    pub fn new(class: BlockClass, generation: Generation, op: OpType) -> Self {
        Self {
            class,
            generation,
            op,
        }
    }
}

impl fmt::Display for ActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}-{}", self.op, self.class, self.generation)
    }
}

/// Dense index of an action type within one migration's [`ActionTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ActionTypeId(pub u8);

impl ActionTypeId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActionTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The set `A` of action types of one migration, with stable dense ids.
///
/// Drain types are registered before undrain types so that id order matches
/// the natural narrative of a plan; nothing in the planners depends on it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ActionTable {
    kinds: Vec<ActionKind>,
}

impl ActionTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a kind, returning its id (existing or fresh).
    pub fn intern(&mut self, kind: ActionKind) -> ActionTypeId {
        if let Some(pos) = self.kinds.iter().position(|k| *k == kind) {
            return ActionTypeId(pos as u8);
        }
        assert!(
            self.kinds.len() < u8::MAX as usize,
            "more than {} action types",
            u8::MAX
        );
        self.kinds.push(kind);
        ActionTypeId((self.kinds.len() - 1) as u8)
    }

    /// Looks up an id's kind.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this table.
    pub fn kind(&self, id: ActionTypeId) -> ActionKind {
        self.kinds[id.index()]
    }

    /// Looks up a kind's id if present.
    pub fn id_of(&self, kind: ActionKind) -> Option<ActionTypeId> {
        self.kinds
            .iter()
            .position(|k| *k == kind)
            .map(|p| ActionTypeId(p as u8))
    }

    /// Number of action types `|A|`.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True if no types are registered.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// All ids in dense order.
    pub fn ids(&self) -> impl Iterator<Item = ActionTypeId> {
        (0..self.kinds.len() as u8).map(ActionTypeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind(op: OpType) -> ActionKind {
        ActionKind::new(BlockClass::FaGrid, Generation::V1, op)
    }

    #[test]
    fn intern_is_idempotent() {
        let mut t = ActionTable::new();
        let a = t.intern(kind(OpType::Drain));
        let b = t.intern(kind(OpType::Drain));
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        let c = t.intern(kind(OpType::Undrain));
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn kind_roundtrips() {
        let mut t = ActionTable::new();
        let k = ActionKind::new(BlockClass::Ma, Generation::V2, OpType::Undrain);
        let id = t.intern(k);
        assert_eq!(t.kind(id), k);
        assert_eq!(t.id_of(k), Some(id));
        assert_eq!(
            t.id_of(ActionKind::new(
                BlockClass::Ma,
                Generation::V1,
                OpType::Undrain
            )),
            None
        );
    }

    #[test]
    fn ids_enumerate_in_order() {
        let mut t = ActionTable::new();
        t.intern(kind(OpType::Drain));
        t.intern(kind(OpType::Undrain));
        let ids: Vec<ActionTypeId> = t.ids().collect();
        assert_eq!(ids, vec![ActionTypeId(0), ActionTypeId(1)]);
    }

    #[test]
    fn kinds_with_different_generation_are_distinct() {
        let mut t = ActionTable::new();
        let v1 = t.intern(ActionKind::new(
            BlockClass::Ssw,
            Generation::V1,
            OpType::Drain,
        ));
        let v2 = t.intern(ActionKind::new(
            BlockClass::Ssw,
            Generation::V2,
            OpType::Drain,
        ));
        assert_ne!(v1, v2);
    }

    #[test]
    fn display_is_readable() {
        let k = ActionKind::new(BlockClass::FaGrid, Generation::V1, OpType::Drain);
        assert_eq!(k.to_string(), "drain-fa-grid-v1");
        assert_eq!(ActionTypeId(3).to_string(), "a3");
    }
}
