//! The DP-based planner (§4.3, Algorithm 1).
//!
//! The DP state is `f(V, a)` — the minimal cost of reaching compact state
//! `V` with a last action of type `a`. States are swept in ascending order
//! of total finished actions `Σ v_i` (every predecessor of `V` has a
//! strictly smaller total, Eq. 8), each state pulling from its `|A|`
//! predecessors per Eq. 7. The optimal sequence is rebuilt from an auxiliary
//! predecessor table, exactly as `GetAnswer` does in the paper's pseudocode.
//!
//! Complexity is Θ(|A|·Π(v*_i + 1)·(|A| + |S| + |C|)) (Theorem 1): unlike
//! A\*, the sweep touches every state of the box whether or not it can be on
//! an optimal path.

use crate::action::ActionTypeId;
use crate::compact::CompactState;
use crate::cost::CostModel;
use crate::error::PlanError;
use crate::migration::MigrationSpec;
use crate::plan::{MigrationPlan, PlanStep};
use crate::planner::{
    emit_ensemble_trace, flush_ensemble_metrics, flush_search_metrics, PlanOutcome, PlanStats,
    Planner, SearchBudget,
};
use crate::satcheck::{EscMode, SatChecker};
use klotski_parallel::WorkerPool;
use klotski_telemetry::{log_event, span};
use std::sync::Arc;
use std::time::Instant;

const NO_LAST: u8 = u8::MAX;

/// The Klotski DP planner.
#[derive(Debug, Clone)]
pub struct DpPlanner {
    /// Cost model (α).
    pub cost: CostModel,
    /// ESC cache mode.
    pub esc: EscMode,
    /// State/time budget; `max_states` bounds the box size `Π(v*_i + 1)`.
    pub budget: SearchBudget,
    /// Shared satisfiability worker pool. `None` builds a private pool per
    /// `plan` call; long-lived callers (the planning service) pass one pool
    /// so its threads are reused across jobs.
    pub pool: Option<Arc<WorkerPool>>,
}

impl Default for DpPlanner {
    fn default() -> Self {
        Self {
            cost: CostModel::default(),
            esc: EscMode::Compact,
            budget: SearchBudget::default(),
            pool: None,
        }
    }
}

impl DpPlanner {
    /// Planner with a given α, defaults elsewhere.
    pub fn with_alpha(alpha: f64) -> Self {
        Self {
            cost: CostModel::new(alpha),
            ..Self::default()
        }
    }
}

impl Planner for DpPlanner {
    fn name(&self) -> &'static str {
        "klotski-dp"
    }

    fn plan(&self, spec: &MigrationSpec) -> Result<PlanOutcome, PlanError> {
        let mut guard = span!("dp.plan", "migration" = spec.name.as_str());
        let result = self.plan_inner(spec);
        match &result {
            Ok(outcome) => {
                guard
                    .field("outcome", "done")
                    .field("expansions", outcome.stats.states_visited)
                    .field("cost", outcome.cost);
                flush_search_metrics("dp", &outcome.stats);
                if let Some(ens) = &outcome.ensemble {
                    emit_ensemble_trace("dp", ens);
                    flush_ensemble_metrics("dp", ens);
                }
            }
            Err(PlanError::BudgetExceeded { .. }) => {
                guard.field("outcome", "budget");
            }
            Err(_) => {
                guard.field("outcome", "infeasible");
            }
        }
        result
    }
}

impl DpPlanner {
    fn plan_inner(&self, spec: &MigrationSpec) -> Result<PlanOutcome, PlanError> {
        let start = Instant::now();
        let progress_every = spec.progress_every.max(1);
        let target = &spec.target_counts;
        let num_types = spec.num_types();
        let box_size = CompactState::box_size(target);
        if box_size as u64 > self.budget.max_states {
            return Err(PlanError::BudgetExceeded {
                states_visited: 0,
                elapsed: start.elapsed(),
            });
        }

        let mut checker = match &self.pool {
            Some(pool) => SatChecker::with_pool(spec, self.esc, Arc::clone(pool)),
            None => SatChecker::new(spec, self.esc),
        };
        let mut stats = PlanStats::default();

        // Dense tables over (V, last): f costs and predecessor action types.
        let mut f = vec![f64::INFINITY; box_size * num_types];
        let mut pred = vec![NO_LAST; box_size * num_types];
        let slot = |dense: usize, a: usize| dense * num_types + a;

        // Enumerate the box grouped by ascending total (Algorithm 1 line 6).
        let mut by_total: Vec<Vec<CompactState>> = vec![Vec::new(); target.total() + 1];
        enumerate_box(target, |v| by_total[v.total()].push(v));

        // The origin is implicit: f(origin, none) = 0. First-layer states
        // (one action done) pay the initial phase cost of 1.
        for states in by_total.iter().skip(1) {
            for v in states {
                // Per-state budget gate: time limit, absolute deadline, and
                // cooperative cancellation (the box pre-check above already
                // bounds the state count).
                self.budget.check(stats.states_visited, start)?;
                stats.states_visited += 1;
                if stats.states_visited % progress_every == 0 {
                    log_event!(
                        "dp.progress",
                        "swept" = stats.states_visited,
                        "box_size" = box_size as u64,
                    );
                }
                // Algorithm 1 line 9: states that violate the constraints
                // can never appear in a sequence; skip their updates.
                let state = spec.state_for(v);
                let dense = v.dense_index(target);
                // IsAvailable is checked on the *reached* state V with last
                // action a (funneling keys on the arriving drain). All
                // arriving types are checked as one batch: without
                // funneling they share a cache key and cost one evaluation.
                let types: Vec<ActionTypeId> = spec
                    .actions
                    .ids()
                    .filter(|a| v.receded(*a).is_some())
                    .collect();
                let verdicts = {
                    let refs: Vec<_> = types.iter().map(|a| (v, &state, Some(*a))).collect();
                    let t0 = Instant::now();
                    // The swept state is its own evaluation base: after the
                    // first item primes it, the rest replay with no delta.
                    let verdicts = checker.check_batch_from(spec, Some((v, &state)), &refs);
                    stats.satcheck_time += t0.elapsed();
                    verdicts
                };
                for (a, ok) in types.into_iter().zip(verdicts) {
                    if !ok {
                        stats.states_pruned += 1;
                        continue;
                    }
                    stats.states_generated += 1;
                    let prev = v.receded(a).expect("filtered on receded");
                    let prev_dense = prev.dense_index(target);
                    let mut best = f64::INFINITY;
                    let mut best_prev = NO_LAST;
                    if prev.total() == 0 {
                        best = 1.0; // first action opens the first phase
                    } else {
                        for a_star in 0..num_types {
                            let base = f[slot(prev_dense, a_star)];
                            if !base.is_finite() {
                                continue;
                            }
                            let step = self.cost.step_cost(Some(ActionTypeId(a_star as u8)), a);
                            if base + step < best {
                                best = base + step;
                                best_prev = a_star as u8;
                            }
                        }
                    }
                    let s = slot(dense, a.index());
                    if best < f[s] {
                        f[s] = best;
                        pred[s] = best_prev;
                    }
                }
            }
        }

        // Answer: best f over last actions at the target state.
        let target_dense = target.dense_index(target);
        let mut best_cost = f64::INFINITY;
        let mut best_last = NO_LAST;
        for a in 0..num_types {
            let c = f[slot(target_dense, a)];
            if c < best_cost {
                best_cost = c;
                best_last = a as u8;
            }
        }
        stats.absorb_sat(checker.stats());
        stats.planning_time = start.elapsed();
        if !best_cost.is_finite() {
            return Err(PlanError::NoFeasiblePlan);
        }

        // GetAnswer: walk predecessors back from the target.
        let mut rev_steps = Vec::with_capacity(target.total());
        let mut v = target.clone();
        let mut last = best_last;
        while v.total() > 0 {
            let kind = ActionTypeId(last);
            let idx = v.count(kind) - 1;
            rev_steps.push(PlanStep {
                kind,
                block: spec.blocks_by_type[kind.index()][idx as usize],
            });
            let s = slot(v.dense_index(target), kind.index());
            let prev_last = pred[s];
            v = v.receded(kind).expect("count was positive");
            last = if v.total() == 0 { NO_LAST } else { prev_last };
        }
        rev_steps.reverse();
        let plan = MigrationPlan::new(rev_steps);
        let ensemble =
            (!spec.extra_demands.is_empty()).then(|| checker.ensemble_breakdown().clone());
        Ok(PlanOutcome {
            plan,
            cost: best_cost,
            stats,
            ensemble,
        })
    }
}

/// Calls `visit` for every state in the box `[0, target]` (any order).
fn enumerate_box(target: &CompactState, mut visit: impl FnMut(CompactState)) {
    let n = target.num_types();
    let mut counts = vec![0u16; n];
    loop {
        visit(CompactState::from_counts(counts.clone()));
        // Odometer increment.
        let mut i = n;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if counts[i] < target.counts()[i] {
                counts[i] += 1;
                for c in &mut counts[i + 1..] {
                    *c = 0;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::{MigrationBuilder, MigrationOptions};
    use crate::plan::validate_plan;
    use crate::planner::AStarPlanner;
    use klotski_topology::presets::{self, PresetId};
    use std::time::Duration;

    fn spec() -> MigrationSpec {
        MigrationBuilder::hgrid_v1_to_v2(&presets::build(PresetId::A), &MigrationOptions::default())
            .unwrap()
    }

    #[test]
    fn enumerate_box_covers_everything_once() {
        let target = CompactState::from_counts(vec![2, 3]);
        let mut seen = std::collections::HashSet::new();
        enumerate_box(&target, |v| {
            assert!(seen.insert(v.counts().to_vec()), "duplicate {v}");
        });
        assert_eq!(seen.len(), CompactState::box_size(&target));
    }

    #[test]
    fn dp_finds_valid_plan() {
        let spec = spec();
        let outcome = DpPlanner::default().plan(&spec).unwrap();
        validate_plan(&spec, &outcome.plan).unwrap();
        assert!((outcome.plan.cost(&CostModel::default()) - outcome.cost).abs() < 1e-9);
    }

    #[test]
    fn dp_and_astar_agree_on_optimal_cost() {
        let spec = spec();
        let dp = DpPlanner::default().plan(&spec).unwrap();
        let astar = AStarPlanner::default().plan(&spec).unwrap();
        assert!(
            (dp.cost - astar.cost).abs() < 1e-9,
            "dp {} vs a* {}",
            dp.cost,
            astar.cost
        );
    }

    #[test]
    fn dp_and_astar_agree_under_alpha() {
        let spec = spec();
        for alpha in [0.25, 0.5, 1.0] {
            let dp = DpPlanner::with_alpha(alpha).plan(&spec).unwrap();
            let astar = AStarPlanner::with_alpha(alpha).plan(&spec).unwrap();
            assert!(
                (dp.cost - astar.cost).abs() < 1e-9,
                "alpha {alpha}: dp {} vs a* {}",
                dp.cost,
                astar.cost
            );
        }
    }

    #[test]
    fn dp_sweeps_no_fewer_states_than_astar_visits() {
        let spec = spec();
        let dp = DpPlanner::default().plan(&spec).unwrap();
        let astar = AStarPlanner::default().plan(&spec).unwrap();
        assert!(dp.stats.states_visited >= astar.stats.states_visited);
    }

    #[test]
    fn cancelled_sweep_reports_budget_not_partial_plan() {
        use crate::planner::CancelFlag;
        let spec = spec();
        let flag = CancelFlag::new();
        flag.cancel();
        let planner = DpPlanner {
            budget: SearchBudget::default().with_cancel(flag),
            ..DpPlanner::default()
        };
        assert!(matches!(
            planner.plan(&spec),
            Err(PlanError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn oversized_box_is_rejected() {
        let spec = spec();
        let planner = DpPlanner {
            budget: SearchBudget::tight(3, Duration::from_secs(3600)),
            ..DpPlanner::default()
        };
        assert!(matches!(
            planner.plan(&spec),
            Err(PlanError::BudgetExceeded { .. })
        ));
    }
}
