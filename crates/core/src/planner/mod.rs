//! The Klotski planners (§4.3–§4.4).
//!
//! Both planners search the pruned, compacted state space: states are
//! compact count vectors `V` over operation-block action types, and the
//! search graph's edges are "perform the next canonical block of type `a`".
//!
//! - [`DpPlanner`] (Algorithm 1) sweeps the whole box `[0, V*]` in ascending
//!   total-action order and computes the exact optimum by recurrence —
//!   polynomial in `|L|`, but it must visit every state.
//! - [`AStarPlanner`] (Algorithm 2) expands states best-first under the
//!   domain-specific priority `f = g + h` with the remaining-action-type
//!   lower bound as `h` and the finished-action count as secondary priority,
//!   returning as soon as the target is popped.

mod astar;
mod dp;

pub use astar::AStarPlanner;
pub use dp::DpPlanner;

use crate::error::PlanError;
use crate::migration::MigrationSpec;
use crate::plan::MigrationPlan;
use crate::satcheck::{EnsembleBreakdown, SatStats};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Search counters reported by every planner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PlanStats {
    /// States processed (popped / swept).
    pub states_visited: u64,
    /// Successor states generated.
    pub states_generated: u64,
    /// Candidates rejected by the satisfiability check.
    #[serde(default)]
    pub states_pruned: u64,
    /// Candidates dropped as stale or non-improving duplicates.
    #[serde(default)]
    pub states_deduped: u64,
    /// Satisfiability queries issued.
    pub sat_checks: u64,
    /// Queries served from the ESC cache.
    pub cache_hits: u64,
    /// Queries that ran the full evaluation.
    pub full_evaluations: u64,
    /// Destinations replayed from the incremental routing cache.
    #[serde(default)]
    pub incremental_clean: u64,
    /// Destinations re-routed because a circuit toggle touched them.
    #[serde(default)]
    pub incremental_dirty: u64,
    /// Entries resident in the ESC cache at the end of the search.
    #[serde(default)]
    pub esc_entries: u64,
    /// Estimated ESC cache footprint in bytes at the end of the search.
    #[serde(default)]
    pub esc_bytes: u64,
    /// Wall time spent inside satisfiability checks.
    #[serde(default)]
    pub satcheck_time: Duration,
    /// Wall-clock planning time.
    pub planning_time: Duration,
    /// Traffic-ensemble size K (0 when no ensemble is configured).
    #[serde(default)]
    pub ensemble_matrices: u64,
    /// Total per-matrix evaluations across all full evaluations.
    #[serde(default)]
    pub ensemble_matrix_checks: u64,
    /// Full evaluations killed by some ensemble matrix (short-circuited).
    #[serde(default)]
    pub ensemble_short_circuits: u64,
}

impl PlanStats {
    /// Folds a checker's counters in.
    pub fn absorb_sat(&mut self, s: SatStats) {
        self.sat_checks = s.checks;
        self.cache_hits = s.cache_hits;
        self.full_evaluations = s.full_evaluations;
        self.incremental_clean = s.incremental_clean;
        self.incremental_dirty = s.incremental_dirty;
        self.esc_entries = s.esc_entries;
        self.esc_bytes = s.esc_bytes;
        self.ensemble_matrices = s.ensemble_matrices;
        self.ensemble_matrix_checks = s.ensemble_matrix_checks;
        self.ensemble_short_circuits = s.ensemble_short_circuits;
    }

    /// ESC cache hit rate over all satisfiability queries, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.sat_checks == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.sat_checks as f64
        }
    }

    /// Fraction of destination evaluations served by replaying the
    /// incremental routing cache instead of re-running BFS + sweep.
    pub fn incremental_hit_rate(&self) -> f64 {
        let total = self.incremental_clean + self.incremental_dirty;
        if total == 0 {
            0.0
        } else {
            self.incremental_clean as f64 / total as f64
        }
    }
}

/// Publishes one finished search's counters to the global telemetry
/// registry under the `klotski_search_*` families, labelled by planner.
pub(crate) fn flush_search_metrics(planner: &str, stats: &PlanStats) {
    let reg = klotski_telemetry::registry();
    for (family, help) in [
        ("klotski_search_plans_total", "Completed planner searches"),
        ("klotski_search_expansions_total", "States popped / swept"),
        (
            "klotski_search_generated_total",
            "Successor states generated",
        ),
        (
            "klotski_search_pruned_total",
            "Candidates rejected by the satisfiability check",
        ),
        (
            "klotski_search_deduped_total",
            "Candidates dropped as stale or non-improving duplicates",
        ),
        ("klotski_search_sat_checks_total", "Satisfiability queries"),
        (
            "klotski_search_esc_hits_total",
            "Queries served from the ESC cache",
        ),
        (
            "klotski_search_full_evaluations_total",
            "Queries that ran the full evaluation",
        ),
        (
            "klotski_search_incremental_clean_total",
            "Destinations replayed from the incremental routing cache",
        ),
        (
            "klotski_search_incremental_dirty_total",
            "Destinations re-routed after a circuit toggle",
        ),
        (
            "klotski_search_satcheck_us_total",
            "Microseconds spent inside satisfiability checks",
        ),
        ("klotski_search_plan_seconds", "Wall time of one search"),
    ] {
        reg.set_help(family, help);
    }
    let label = |family: &str| format!("{family}{{planner=\"{planner}\"}}");
    reg.counter(&label("klotski_search_plans_total")).inc();
    for (family, value) in [
        ("klotski_search_expansions_total", stats.states_visited),
        ("klotski_search_generated_total", stats.states_generated),
        ("klotski_search_pruned_total", stats.states_pruned),
        ("klotski_search_deduped_total", stats.states_deduped),
        ("klotski_search_sat_checks_total", stats.sat_checks),
        ("klotski_search_esc_hits_total", stats.cache_hits),
        (
            "klotski_search_full_evaluations_total",
            stats.full_evaluations,
        ),
        (
            "klotski_search_incremental_clean_total",
            stats.incremental_clean,
        ),
        (
            "klotski_search_incremental_dirty_total",
            stats.incremental_dirty,
        ),
        (
            "klotski_search_satcheck_us_total",
            stats.satcheck_time.as_micros() as u64,
        ),
    ] {
        reg.counter(&label(family)).add(value);
    }
    reg.histogram(&label("klotski_search_plan_seconds"))
        .record(stats.planning_time);
}

/// Publishes a finished search's per-matrix ensemble counters under the
/// `klotski_ensemble_*` families, labelled by planner and matrix. No-op for
/// single-matrix (non-ensemble) searches.
pub(crate) fn flush_ensemble_metrics(planner: &str, breakdown: &EnsembleBreakdown) {
    if breakdown.matrices.is_empty() {
        return;
    }
    let reg = klotski_telemetry::registry();
    for (family, help) in [
        (
            "klotski_ensemble_matrix_checks_total",
            "Per-ensemble-matrix satisfiability evaluations",
        ),
        (
            "klotski_ensemble_matrix_kills_total",
            "Candidates killed by each ensemble matrix (first failure)",
        ),
        (
            "klotski_ensemble_matrix_us_total",
            "Microseconds spent evaluating each ensemble matrix",
        ),
    ] {
        reg.set_help(family, help);
    }
    for (k, m) in breakdown.matrices.iter().enumerate() {
        let label = |family: &str| {
            format!(
                "{family}{{planner=\"{planner}\",matrix=\"{k}:{}\"}}",
                m.label
            )
        };
        reg.counter(&label("klotski_ensemble_matrix_checks_total"))
            .add(m.checks);
        reg.counter(&label("klotski_ensemble_matrix_kills_total"))
            .add(m.kills);
        reg.counter(&label("klotski_ensemble_matrix_us_total"))
            .add(m.wall_ns / 1_000);
    }
}

/// Emits one `satcheck.ensemble` trace event per ensemble matrix, so
/// `trace summarize` can render which matrix killed how many candidates.
pub(crate) fn emit_ensemble_trace(planner: &str, breakdown: &EnsembleBreakdown) {
    for (k, m) in breakdown.matrices.iter().enumerate() {
        klotski_telemetry::log_event!(
            "satcheck.ensemble",
            "planner" = planner,
            "matrix" = k as u64,
            "label" = m.label.as_str(),
            "checks" = m.checks,
            "kills" = m.kills,
            "wall_us" = m.wall_ns / 1_000,
        );
    }
}

/// A successful planning result.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanOutcome {
    /// The optimal plan found.
    pub plan: MigrationPlan,
    /// Its cost under the planner's cost model.
    pub cost: f64,
    /// Search counters.
    pub stats: PlanStats,
    /// Per-matrix ensemble accounting (`None` for single-matrix searches
    /// and for baselines that don't run the ensemble checker).
    pub ensemble: Option<EnsembleBreakdown>,
}

/// Common planner interface (Klotski planners and baselines alike).
pub trait Planner {
    /// Short name for reports ("klotski-a*", "klotski-dp", "mrc", "janus").
    fn name(&self) -> &'static str;

    /// Computes a migration plan for `spec`.
    fn plan(&self, spec: &MigrationSpec) -> Result<PlanOutcome, PlanError>;
}

/// A shareable cooperative-cancellation flag. Cloning yields another handle
/// to the same flag; a long-lived owner (e.g. a service request handler)
/// calls [`cancel`](CancelFlag::cancel) and the planner observes it at its
/// next expansion via [`SearchBudget::check`].
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, uncancelled flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; every budget holding a clone of this flag
    /// fails its next check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](Self::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// True when both handles observe the same underlying flag.
    pub fn same_flag(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Shared resource budget. The paper caps planners at 24 hours; benches use
/// much tighter limits so ablation failures ("cross" marks in Figures 9–11)
/// surface quickly. Besides the relative limits, a budget may carry an
/// absolute wall-clock [`deadline`](Self::deadline) (per-request deadlines
/// in the planning service) and a cooperative [`CancelFlag`]; both are
/// checked at every planner expansion, so a cancelled or expired search
/// returns [`PlanError::BudgetExceeded`] promptly instead of a partial plan.
#[derive(Debug, Clone)]
pub struct SearchBudget {
    /// Maximum states to process before giving up.
    pub max_states: u64,
    /// Wall-clock limit relative to the search start.
    pub time_limit: Duration,
    /// Absolute deadline; `None` means unbounded.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag, checked per expansion.
    pub cancel: CancelFlag,
}

impl PartialEq for SearchBudget {
    /// Budgets compare on their limits; the cancel flag compares by
    /// identity (two fresh flags are interchangeable, a shared one is not).
    fn eq(&self, other: &Self) -> bool {
        self.max_states == other.max_states
            && self.time_limit == other.time_limit
            && self.deadline == other.deadline
            && (self.cancel.same_flag(&other.cancel)
                || (!self.cancel.is_cancelled() && !other.cancel.is_cancelled()))
    }
}

impl Default for SearchBudget {
    fn default() -> Self {
        Self {
            max_states: 50_000_000,
            time_limit: Duration::from_secs(24 * 3600),
            deadline: None,
            cancel: CancelFlag::default(),
        }
    }
}

impl SearchBudget {
    /// A tight budget for tests and benches.
    pub fn tight(max_states: u64, time_limit: Duration) -> Self {
        Self {
            max_states,
            time_limit,
            ..Self::default()
        }
    }

    /// Adds an absolute wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cooperative cancellation flag.
    pub fn with_cancel(mut self, cancel: CancelFlag) -> Self {
        self.cancel = cancel;
        self
    }

    /// The per-expansion budget gate: errors once the state count, the
    /// relative time limit, the absolute deadline, or the cancel flag says
    /// the search must stop. Planners call this once per expanded state.
    pub fn check(&self, states_visited: u64, start: Instant) -> Result<(), PlanError> {
        let elapsed = start.elapsed();
        let exceeded = states_visited > self.max_states
            || elapsed > self.time_limit
            || self.deadline.is_some_and(|d| Instant::now() > d)
            || self.cancel.is_cancelled();
        if exceeded {
            return Err(PlanError::BudgetExceeded {
                states_visited,
                elapsed,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_absorb_sat_counters() {
        let mut stats = PlanStats::default();
        stats.absorb_sat(SatStats {
            checks: 10,
            cache_hits: 4,
            full_evaluations: 6,
            ..Default::default()
        });
        assert_eq!(stats.sat_checks, 10);
        assert_eq!(stats.cache_hits, 4);
        assert_eq!(stats.full_evaluations, 6);
    }

    #[test]
    fn default_budget_matches_paper_cap() {
        let b = SearchBudget::default();
        assert_eq!(b.time_limit, Duration::from_secs(86400));
    }

    #[test]
    fn budget_check_passes_within_limits() {
        let b = SearchBudget::default();
        assert!(b.check(0, Instant::now()).is_ok());
        assert!(b.check(1000, Instant::now()).is_ok());
    }

    #[test]
    fn budget_check_fails_on_cancel() {
        let flag = CancelFlag::new();
        let b = SearchBudget::default().with_cancel(flag.clone());
        assert!(b.check(0, Instant::now()).is_ok());
        flag.cancel();
        assert!(matches!(
            b.check(0, Instant::now()),
            Err(PlanError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn budget_check_fails_past_deadline() {
        let b = SearchBudget::default().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(matches!(
            b.check(0, Instant::now()),
            Err(PlanError::BudgetExceeded { .. })
        ));
        let ok = SearchBudget::default().with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(ok.check(0, Instant::now()).is_ok());
    }

    #[test]
    fn cancel_flag_is_shared_across_clones() {
        let a = CancelFlag::new();
        let b = a.clone();
        assert!(a.same_flag(&b));
        b.cancel();
        assert!(a.is_cancelled());
        assert!(!CancelFlag::new().same_flag(&a));
    }
}
