//! The Klotski planners (§4.3–§4.4).
//!
//! Both planners search the pruned, compacted state space: states are
//! compact count vectors `V` over operation-block action types, and the
//! search graph's edges are "perform the next canonical block of type `a`".
//!
//! - [`DpPlanner`] (Algorithm 1) sweeps the whole box `[0, V*]` in ascending
//!   total-action order and computes the exact optimum by recurrence —
//!   polynomial in `|L|`, but it must visit every state.
//! - [`AStarPlanner`] (Algorithm 2) expands states best-first under the
//!   domain-specific priority `f = g + h` with the remaining-action-type
//!   lower bound as `h` and the finished-action count as secondary priority,
//!   returning as soon as the target is popped.

mod astar;
mod dp;

pub use astar::AStarPlanner;
pub use dp::DpPlanner;

use crate::error::PlanError;
use crate::migration::MigrationSpec;
use crate::plan::MigrationPlan;
use crate::satcheck::SatStats;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Search counters reported by every planner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PlanStats {
    /// States processed (popped / swept).
    pub states_visited: u64,
    /// Successor states generated.
    pub states_generated: u64,
    /// Satisfiability queries issued.
    pub sat_checks: u64,
    /// Queries served from the ESC cache.
    pub cache_hits: u64,
    /// Queries that ran the full evaluation.
    pub full_evaluations: u64,
    /// Wall-clock planning time.
    pub planning_time: Duration,
}

impl PlanStats {
    /// Folds a checker's counters in.
    pub fn absorb_sat(&mut self, s: SatStats) {
        self.sat_checks = s.checks;
        self.cache_hits = s.cache_hits;
        self.full_evaluations = s.full_evaluations;
    }
}

/// A successful planning result.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanOutcome {
    /// The optimal plan found.
    pub plan: MigrationPlan,
    /// Its cost under the planner's cost model.
    pub cost: f64,
    /// Search counters.
    pub stats: PlanStats,
}

/// Common planner interface (Klotski planners and baselines alike).
pub trait Planner {
    /// Short name for reports ("klotski-a*", "klotski-dp", "mrc", "janus").
    fn name(&self) -> &'static str;

    /// Computes a migration plan for `spec`.
    fn plan(&self, spec: &MigrationSpec) -> Result<PlanOutcome, PlanError>;
}

/// Shared resource budget. The paper caps planners at 24 hours; benches use
/// much tighter limits so ablation failures ("cross" marks in Figures 9–11)
/// surface quickly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchBudget {
    /// Maximum states to process before giving up.
    pub max_states: u64,
    /// Wall-clock limit.
    pub time_limit: Duration,
}

impl Default for SearchBudget {
    fn default() -> Self {
        Self {
            max_states: 50_000_000,
            time_limit: Duration::from_secs(24 * 3600),
        }
    }
}

impl SearchBudget {
    /// A tight budget for tests and benches.
    pub fn tight(max_states: u64, time_limit: Duration) -> Self {
        Self {
            max_states,
            time_limit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_absorb_sat_counters() {
        let mut stats = PlanStats::default();
        stats.absorb_sat(SatStats {
            checks: 10,
            cache_hits: 4,
            full_evaluations: 6,
        });
        assert_eq!(stats.sat_checks, 10);
        assert_eq!(stats.cache_hits, 4);
        assert_eq!(stats.full_evaluations, 6);
    }

    #[test]
    fn default_budget_matches_paper_cap() {
        let b = SearchBudget::default();
        assert_eq!(b.time_limit, Duration::from_secs(86400));
    }
}
