//! The A\* search planner (§4.4, Algorithm 2).
//!
//! Search states are `(V, last action type)`. Successors apply every action
//! type's next canonical block; only successors whose topology satisfies the
//! demand and port constraints enter the priority queue. The priority is
//! `f(n) = g(n) + h(n)` — existing cost plus the remaining-action-type lower
//! bound (Eq. 9 / the admissible refinement, see [`crate::cost`]) — with the
//! number of finished actions as secondary priority: among equal-`f` states,
//! the one closer to the target expands first. A\* returns the moment the
//! target state is popped, which is why it visits far fewer states than the
//! DP sweep in practice.

use crate::action::ActionTypeId;
use crate::compact::CompactState;
use crate::cost::{CostModel, HeuristicMode};
use crate::error::PlanError;
use crate::migration::MigrationSpec;
use crate::plan::{MigrationPlan, PlanStep};
use crate::planner::{
    emit_ensemble_trace, flush_ensemble_metrics, flush_search_metrics, PlanOutcome, PlanStats,
    Planner, SearchBudget,
};
use crate::satcheck::{EscMode, SatChecker};
use klotski_parallel::WorkerPool;
use klotski_telemetry::{log_event, span};
use klotski_topology::NetState;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// Key of a search state: dense index of `V` in the target box, plus the
/// last action type (`u8::MAX` = origin).
type StateKey = (u32, u8);

const NO_LAST: u8 = u8::MAX;

/// Heap entry. `BinaryHeap` is a max-heap, so `Ord` is inverted on `f` and,
/// when the secondary priority is enabled, kept natural on `finished` (more
/// finished actions = closer to the target = expand first). The insertion
/// sequence number makes tie-breaking deterministic.
struct HeapEntry {
    f: f64,
    finished: u32,
    seq: u64,
    key: StateKey,
    g: f64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: "greater" = should pop first = smaller f.
        other
            .f
            .total_cmp(&self.f)
            .then(self.finished.cmp(&other.finished))
            .then(other.seq.cmp(&self.seq))
    }
}

/// The Klotski A\* planner.
#[derive(Debug, Clone)]
pub struct AStarPlanner {
    /// Cost model (α).
    pub cost: CostModel,
    /// ESC cache mode.
    pub esc: EscMode,
    /// Cost-to-go estimate.
    pub heuristic: HeuristicMode,
    /// Whether equal-`f` states are ordered by finished-action count.
    pub secondary_priority: bool,
    /// State/time budget.
    pub budget: SearchBudget,
    /// Shared satisfiability worker pool. `None` builds a private pool per
    /// `plan` call; long-lived callers (the planning service) pass one pool
    /// so its threads are reused across jobs.
    pub pool: Option<Arc<WorkerPool>>,
}

impl Default for AStarPlanner {
    fn default() -> Self {
        Self {
            cost: CostModel::default(),
            esc: EscMode::Compact,
            heuristic: HeuristicMode::Admissible,
            secondary_priority: true,
            budget: SearchBudget::default(),
            pool: None,
        }
    }
}

impl AStarPlanner {
    /// Planner with a given α, defaults elsewhere.
    pub fn with_alpha(alpha: f64) -> Self {
        Self {
            cost: CostModel::new(alpha),
            ..Self::default()
        }
    }
}

impl Planner for AStarPlanner {
    fn name(&self) -> &'static str {
        "klotski-a*"
    }

    fn plan(&self, spec: &MigrationSpec) -> Result<PlanOutcome, PlanError> {
        let mut guard = span!("astar.plan", "migration" = spec.name.as_str());
        let result = self.plan_inner(spec);
        match &result {
            Ok(outcome) => {
                guard
                    .field("outcome", "done")
                    .field("expansions", outcome.stats.states_visited)
                    .field("cost", outcome.cost);
                flush_search_metrics("astar", &outcome.stats);
                if let Some(ens) = &outcome.ensemble {
                    emit_ensemble_trace("astar", ens);
                    flush_ensemble_metrics("astar", ens);
                }
            }
            Err(PlanError::BudgetExceeded { .. }) => {
                guard.field("outcome", "budget");
            }
            Err(_) => {
                guard.field("outcome", "infeasible");
            }
        }
        result
    }
}

impl AStarPlanner {
    fn plan_inner(&self, spec: &MigrationSpec) -> Result<PlanOutcome, PlanError> {
        let start = Instant::now();
        // Expansion interval between `astar.progress` events, configured
        // per instance via `MigrationOptions::progress_every`.
        let progress_every = spec.progress_every.max(1);
        let target = &spec.target_counts;
        let num_types = spec.num_types();
        let mut checker = match &self.pool {
            Some(pool) => SatChecker::with_pool(spec, self.esc, Arc::clone(pool)),
            None => SatChecker::new(spec, self.esc),
        };
        let mut stats = PlanStats::default();

        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        let mut best_g: HashMap<StateKey, f64> = HashMap::new();
        let mut parents: HashMap<StateKey, StateKey> = HashMap::new();
        let mut seq = 0u64;

        let origin = CompactState::origin(num_types);
        let origin_key: StateKey = (origin.dense_index(target) as u32, NO_LAST);
        let h0 = self
            .cost
            .heuristic(self.heuristic, &origin.remaining(target), None);
        best_g.insert(origin_key, 0.0);
        heap.push(HeapEntry {
            f: h0,
            finished: 0,
            seq,
            key: origin_key,
            g: 0.0,
        });

        while let Some(entry) = heap.pop() {
            let (dense, last_raw) = entry.key;
            // Stale entry: a better g was found after this was pushed.
            match best_g.get(&entry.key) {
                Some(&g) if entry.g > g + 1e-12 => {
                    stats.states_deduped += 1;
                    continue;
                }
                _ => {}
            }
            stats.states_visited += 1;
            if stats.states_visited % progress_every == 0 {
                log_event!(
                    "astar.progress",
                    "expansions" = stats.states_visited,
                    "frontier" = heap.len() as u64,
                    "f" = entry.f,
                );
            }
            // Per-expansion budget gate: state count, time limit, absolute
            // deadline, and cooperative cancellation all stop the search
            // here, before any successor work.
            self.budget.check(stats.states_visited, start)?;

            let v = decode(dense, target);
            if v.is_target(target) {
                stats.absorb_sat(checker.stats());
                stats.planning_time = start.elapsed();
                let plan = rebuild_plan(spec, &parents, entry.key, target);
                let ensemble =
                    (!spec.extra_demands.is_empty()).then(|| checker.ensemble_breakdown().clone());
                return Ok(PlanOutcome {
                    plan,
                    cost: entry.g,
                    stats,
                    ensemble,
                });
            }

            let last = (last_raw != NO_LAST).then_some(ActionTypeId(last_raw));
            // Reconstruct this state's activation overlay once, generate
            // every applicable successor, then batch their satisfiability
            // checks through the checker's worker pool. Verdicts come back
            // in generation order, so the push sequence (and the plan) is
            // identical to checking one by one.
            let state = spec.state_for(&v);
            let mut cand: Vec<(ActionTypeId, CompactState, NetState)> = Vec::new();
            for a in spec.actions.ids() {
                if v.count(a) >= target.count(a) {
                    continue;
                }
                let mut next_state = state.clone();
                spec.apply_next(&mut next_state, &v, a);
                stats.states_generated += 1;
                cand.push((a, v.advanced(a), next_state));
            }
            let verdicts = {
                let refs: Vec<_> = cand.iter().map(|(a, nv, ns)| (nv, ns, Some(*a))).collect();
                let t0 = Instant::now();
                // Handing over the popped state lets the incremental checker
                // re-route only the destinations each block's toggles touch.
                let verdicts = checker.check_batch_from(spec, Some((&v, &state)), &refs);
                stats.satcheck_time += t0.elapsed();
                verdicts
            };
            for ((a, nv, _), ok) in cand.into_iter().zip(verdicts) {
                if !ok {
                    stats.states_pruned += 1;
                    continue;
                }
                let g = entry.g + self.cost.step_cost(last, a);
                let key: StateKey = (nv.dense_index(target) as u32, a.0);
                let improved = match best_g.get(&key) {
                    Some(&old) => g < old - 1e-12,
                    None => true,
                };
                if !improved {
                    stats.states_deduped += 1;
                    continue;
                }
                best_g.insert(key, g);
                parents.insert(key, entry.key);
                let h = self
                    .cost
                    .heuristic(self.heuristic, &nv.remaining(target), Some(a));
                seq += 1;
                heap.push(HeapEntry {
                    f: g + h,
                    finished: if self.secondary_priority {
                        nv.total() as u32
                    } else {
                        0
                    },
                    seq,
                    key,
                    g,
                });
            }
        }

        Err(PlanError::NoFeasiblePlan)
    }
}

/// Decodes a dense index back into counts (inverse of
/// [`CompactState::dense_index`]).
fn decode(mut dense: u32, target: &CompactState) -> CompactState {
    let mut counts = vec![0u16; target.num_types()];
    for i in (0..target.num_types()).rev() {
        let radix = target.counts()[i] as u32 + 1;
        counts[i] = (dense % radix) as u16;
        dense /= radix;
    }
    CompactState::from_counts(counts)
}

/// Walks the parent chain from the target back to the origin, materializing
/// the block-level steps (the canonical block of each type transition).
fn rebuild_plan(
    spec: &MigrationSpec,
    parents: &HashMap<StateKey, StateKey>,
    mut key: StateKey,
    target: &CompactState,
) -> MigrationPlan {
    let mut rev_steps = Vec::new();
    while key.1 != NO_LAST {
        let kind = ActionTypeId(key.1);
        let v = decode(key.0, target);
        // The step consumed block index v[kind] - 1 of its type.
        let idx = v.count(kind) - 1;
        rev_steps.push(PlanStep {
            kind,
            block: spec.blocks_by_type[kind.index()][idx as usize],
        });
        key = *parents
            .get(&key)
            .expect("every non-origin key has a parent");
    }
    rev_steps.reverse();
    MigrationPlan::new(rev_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::{MigrationBuilder, MigrationOptions};
    use crate::plan::validate_plan;
    use klotski_topology::presets::{self, PresetId};
    use std::time::Duration;

    fn spec() -> MigrationSpec {
        MigrationBuilder::hgrid_v1_to_v2(&presets::build(PresetId::A), &MigrationOptions::default())
            .unwrap()
    }

    #[test]
    fn progress_interval_is_configurable_per_spec() {
        use klotski_telemetry as telemetry;
        // Subscribe to the event bus on a private stream: isolated from
        // every other test in this binary, and no global sink needed.
        let count_progress = |spec: &MigrationSpec| {
            let stream = telemetry::bus().next_stream_id();
            let sub = telemetry::bus().subscribe(stream, 1 << 16);
            let _tag = telemetry::tag_stream(stream);
            let outcome = AStarPlanner::default().plan(spec).unwrap();
            let mut progress = 0u64;
            while let Some(line) = sub.try_recv() {
                if let Ok(telemetry::Record::Event { name, .. }) = telemetry::parse_line(&line) {
                    if name == "astar.progress" {
                        progress += 1;
                    }
                }
            }
            (outcome.stats.states_visited, progress)
        };

        // Preset A visits far fewer than 4096 states: the default interval
        // emits nothing, a 1-expansion interval emits one event per visit.
        let (visited, coarse) = count_progress(&spec());
        assert!(visited < 4096, "preset A stays tiny: {visited}");
        assert_eq!(coarse, 0, "default interval stays quiet on preset A");

        let mut fine_spec = spec();
        fine_spec.progress_every = 1;
        let (visited, fine) = count_progress(&fine_spec);
        assert_eq!(fine, visited, "one progress event per expansion");
    }

    #[test]
    fn finds_a_valid_plan_on_preset_a() {
        let spec = spec();
        let outcome = AStarPlanner::default().plan(&spec).unwrap();
        validate_plan(&spec, &outcome.plan).unwrap();
        assert_eq!(outcome.plan.num_steps(), spec.num_blocks());
        assert!(
            outcome.cost >= 2.0,
            "at least one drain + one undrain phase"
        );
        assert!((outcome.plan.cost(&CostModel::default()) - outcome.cost).abs() < 1e-9);
    }

    #[test]
    fn decode_inverts_dense_index() {
        let target = CompactState::from_counts(vec![3, 2, 4]);
        for a in 0..=3u16 {
            for b in 0..=2u16 {
                for c in 0..=4u16 {
                    let v = CompactState::from_counts(vec![a, b, c]);
                    let dense = v.dense_index(&target) as u32;
                    assert_eq!(decode(dense, &target), v);
                }
            }
        }
    }

    #[test]
    fn all_heuristic_modes_agree_on_cost() {
        let spec = spec();
        let mut costs = Vec::new();
        for heuristic in [
            HeuristicMode::Admissible,
            HeuristicMode::PaperEq9,
            HeuristicMode::None,
        ] {
            let planner = AStarPlanner {
                heuristic,
                ..AStarPlanner::default()
            };
            costs.push(planner.plan(&spec).unwrap().cost);
        }
        assert!((costs[0] - costs[2]).abs() < 1e-9, "admissible vs UCS");
        // Eq. 9 is near-admissible here; flag if it ever degrades the plan.
        assert!((costs[1] - costs[0]).abs() < 1e-9, "Eq.9 result differs");
    }

    #[test]
    fn heuristic_prunes_work() {
        let spec = spec();
        let guided = AStarPlanner::default().plan(&spec).unwrap();
        let blind = AStarPlanner {
            heuristic: HeuristicMode::None,
            ..AStarPlanner::default()
        }
        .plan(&spec)
        .unwrap();
        assert!(
            guided.stats.states_visited <= blind.stats.states_visited,
            "guided {} vs blind {}",
            guided.stats.states_visited,
            blind.stats.states_visited
        );
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let spec = spec();
        let planner = AStarPlanner {
            budget: SearchBudget::tight(2, Duration::from_secs(3600)),
            ..AStarPlanner::default()
        };
        assert!(matches!(
            planner.plan(&spec),
            Err(PlanError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn cancelled_search_reports_budget_not_partial_plan() {
        use crate::planner::CancelFlag;
        let spec = spec();
        let flag = CancelFlag::new();
        flag.cancel(); // cancelled before the search even starts
        let planner = AStarPlanner {
            budget: SearchBudget::default().with_cancel(flag),
            ..AStarPlanner::default()
        };
        assert!(matches!(
            planner.plan(&spec),
            Err(PlanError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn expired_deadline_reports_budget() {
        let spec = spec();
        let planner = AStarPlanner {
            budget: SearchBudget::default().with_deadline(Instant::now()),
            ..AStarPlanner::default()
        };
        assert!(matches!(
            planner.plan(&spec),
            Err(PlanError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn shared_pool_reproduces_owned_pool_plan() {
        let spec = spec();
        let owned = AStarPlanner::default().plan(&spec).unwrap();
        let pool = Arc::new(WorkerPool::new(2));
        let planner = AStarPlanner {
            pool: Some(Arc::clone(&pool)),
            ..AStarPlanner::default()
        };
        // Same pool reused across two jobs; plans stay identical.
        for _ in 0..2 {
            let shared = planner.plan(&spec).unwrap();
            assert_eq!(shared.plan, owned.plan);
            assert!((shared.cost - owned.cost).abs() < 1e-12);
        }
    }

    #[test]
    fn alpha_increases_cost() {
        let spec = spec();
        let base = AStarPlanner::default().plan(&spec).unwrap().cost;
        let alpha = AStarPlanner::with_alpha(0.5).plan(&spec).unwrap().cost;
        assert!(alpha > base, "alpha must charge same-type continuations");
    }

    #[test]
    fn esc_modes_agree() {
        let spec = spec();
        let compact = AStarPlanner::default().plan(&spec).unwrap();
        for esc in [EscMode::FullTopology, EscMode::Off] {
            let other = AStarPlanner {
                esc,
                ..AStarPlanner::default()
            }
            .plan(&spec)
            .unwrap();
            assert!((other.cost - compact.cost).abs() < 1e-9);
        }
    }

    #[test]
    fn esc_saves_full_evaluations() {
        let spec = spec();
        let cached = AStarPlanner::default().plan(&spec).unwrap();
        let uncached = AStarPlanner {
            esc: EscMode::Off,
            ..AStarPlanner::default()
        }
        .plan(&spec)
        .unwrap();
        assert!(cached.stats.full_evaluations <= uncached.stats.full_evaluations);
    }
}
