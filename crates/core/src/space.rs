//! Space and power constraints (§2.4, §7.2).
//!
//! "We need to remove/decommission the old switches first to create space
//! for the new switches in the same location" (§2.4) — and "the old and new
//! hardware generations often share the same space and power. In some cases
//! there are additional space and power available to support transient
//! state but that could be limited. We consider such constraints when
//! generating intermediate states in Klotski" (§7.2).
//!
//! The model: every operation block changes the floor-space footprint when
//! it executes — drains of old hardware free space, installs of new
//! hardware consume it — and the total footprint of any intermediate state
//! must stay within the site budget. Footprint is linear in the finished
//! actions, so for compact state `V` it evaluates in O(|A|) via per-type
//! prefix sums, keeping satisfiability checking cheap.

use crate::compact::CompactState;
use serde::{Deserialize, Serialize};

/// Linear space model over a migration's operation blocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceModel {
    /// Site budget in rack units.
    pub budget: f64,
    /// Footprint before any action.
    pub initial_used: f64,
    /// `prefix[a][v]` = cumulative footprint delta after `v` finished
    /// actions of type `a` (`prefix[a][0] == 0`).
    prefix: Vec<Vec<f64>>,
}

impl SpaceModel {
    /// Builds a model from per-block deltas: `deltas[a][i]` is the footprint
    /// change when the `i`-th block of type `a` executes (negative for
    /// drains of old hardware, positive for installs).
    pub fn from_deltas(budget: f64, initial_used: f64, deltas: &[Vec<f64>]) -> Self {
        assert!(budget.is_finite() && budget >= 0.0, "budget must be finite");
        assert!(
            initial_used.is_finite() && initial_used >= 0.0,
            "initial footprint must be finite"
        );
        let prefix = deltas
            .iter()
            .map(|d| {
                let mut acc = 0.0;
                let mut p = Vec::with_capacity(d.len() + 1);
                p.push(0.0);
                for &x in d {
                    assert!(x.is_finite(), "space deltas must be finite");
                    acc += x;
                    p.push(acc);
                }
                p
            })
            .collect();
        Self {
            budget,
            initial_used,
            prefix,
        }
    }

    /// Footprint of a compact state.
    pub fn used(&self, v: &CompactState) -> f64 {
        let mut used = self.initial_used;
        for (a, p) in self.prefix.iter().enumerate() {
            used += p[v.counts()[a] as usize];
        }
        used
    }

    /// True iff the state fits the site budget (with float tolerance so an
    /// exactly-full site is legal).
    pub fn fits(&self, v: &CompactState) -> bool {
        self.used(v) <= self.budget + 1e-9
    }

    /// The model for the residual migration after `progress` actions: the
    /// current footprint becomes the initial one and only the remaining
    /// blocks' deltas are kept (used by the §7.1 replanning path).
    pub fn residual(&self, progress: &CompactState) -> SpaceModel {
        let initial_used = self.used(progress);
        let prefix = self
            .prefix
            .iter()
            .enumerate()
            .map(|(a, p)| {
                let done = progress.counts()[a] as usize;
                p[done..].iter().map(|x| x - p[done]).collect()
            })
            .collect();
        SpaceModel {
            budget: self.budget,
            initial_used,
            prefix,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two types: type 0 drains free 1.0 each, type 1 installs use 0.5 each.
    fn model() -> SpaceModel {
        SpaceModel::from_deltas(
            3.5,
            3.0,
            &[vec![-1.0, -1.0, -1.0], vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.5]],
        )
    }

    #[test]
    fn origin_uses_initial_footprint() {
        let m = model();
        let origin = CompactState::origin(2);
        assert_eq!(m.used(&origin), 3.0);
        assert!(m.fits(&origin));
    }

    #[test]
    fn installs_consume_and_drains_free() {
        let m = model();
        let v = CompactState::from_counts(vec![1, 2]);
        assert!((m.used(&v) - 3.0).abs() < 1e-12); // 3 - 1 + 1
        assert!(m.fits(&v));
    }

    #[test]
    fn overfull_state_rejected() {
        let m = model();
        // No drains, two installs: 3 + 1.0 = 4.0 > 3.5.
        let v = CompactState::from_counts(vec![0, 2]);
        assert!(!m.fits(&v));
        // One install fits exactly at the transient slack.
        assert!(m.fits(&CompactState::from_counts(vec![0, 1])));
    }

    #[test]
    fn target_state_fits_by_construction() {
        let m = model();
        // All drained, all installed: 3 - 3 + 3 = 3 <= 3.5.
        assert!(m.fits(&CompactState::from_counts(vec![3, 6])));
    }

    #[test]
    fn exactly_full_is_legal() {
        let m = SpaceModel::from_deltas(1.0, 0.0, &[vec![1.0]]);
        assert!(m.fits(&CompactState::from_counts(vec![1])));
    }

    #[test]
    #[should_panic(expected = "budget must be finite")]
    fn bad_budget_rejected() {
        SpaceModel::from_deltas(f64::NAN, 0.0, &[]);
    }

    #[test]
    fn residual_shifts_the_origin() {
        let m = model();
        let progress = CompactState::from_counts(vec![1, 1]);
        let r = m.residual(&progress);
        assert!((r.initial_used - m.used(&progress)).abs() < 1e-12);
        // One more drain and one more install in residual coordinates
        // equals two drains and two installs in original coordinates.
        let rv = CompactState::from_counts(vec![1, 1]);
        let ov = CompactState::from_counts(vec![2, 2]);
        assert!((r.used(&rv) - m.used(&ov)).abs() < 1e-12);
        assert_eq!(r.fits(&rv), m.fits(&ov));
    }
}
