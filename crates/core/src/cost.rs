//! The operational cost model (Eq. 1, Eq. 9, §5).
//!
//! Cost counts *serial phases*: consecutive actions of the same type are
//! executed by operators in parallel, while a type change forces a new
//! serial phase. The generalized cost function of §5 adds a per-extra-action
//! overhead: operating `x` blocks of one type in one phase costs
//! `f_cost(x) = 1 + α(x−1)` with `α ∈ [0, 1]` (α = 0 by default).
//!
//! The A\* heuristic is derived here too. The paper's Eq. 9 sums
//! `1 + α(N_a − 1)` over types with remaining actions. When the *current*
//! run's type still has remaining actions, that sum overestimates by up to
//! `1 − α` (the remaining actions of the open type can extend the current
//! phase at cost α each, with no new phase). [`CostModel::heuristic`]
//! therefore charges the open type `α·N_a` instead, which is a true lower
//! bound; the literal Eq. 9 variant is kept as
//! [`HeuristicMode::PaperEq9`] for the ablation benches.

use crate::action::ActionTypeId;
use serde::{Deserialize, Serialize};

/// Which cost-to-go estimate the A\* planner uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeuristicMode {
    /// Rigorous lower bound (default): the type of the open run contributes
    /// `α·N_a`, every other remaining type `1 + α(N_a − 1)`.
    Admissible,
    /// Literal Eq. 9: every remaining type contributes `1 + α(N_a − 1)`.
    /// Marginally inadmissible when the open run's type has actions left;
    /// kept for fidelity comparisons.
    PaperEq9,
    /// No guidance (h ≡ 0): degrades A\* to uniform-cost search. Used by the
    /// "Klotski w/o A\*" ablation (Figure 10).
    None,
}

/// Cost model with the §5 parallel-overhead parameter α.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Extra cost per same-type action beyond the first in a phase.
    pub alpha: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self { alpha: 0.0 }
    }
}

impl CostModel {
    /// Creates a model with the given α.
    ///
    /// # Panics
    /// Panics if α is outside `[0, 1]` (§5 defines it on that interval).
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        Self { alpha }
    }

    /// Incremental cost of appending an action of type `next` after `prev`
    /// (`None` = start of the sequence).
    #[inline]
    pub fn step_cost(&self, prev: Option<ActionTypeId>, next: ActionTypeId) -> f64 {
        if prev == Some(next) {
            self.alpha
        } else {
            1.0
        }
    }

    /// Cost of operating `x ≥ 1` blocks of one type in one phase:
    /// `f_cost(x) = 1 + α(x−1)`.
    #[inline]
    pub fn phase_cost(&self, x: usize) -> f64 {
        assert!(x >= 1, "a phase holds at least one action");
        1.0 + self.alpha * (x as f64 - 1.0)
    }

    /// Total cost of an action-type sequence (Eq. 1 generalized).
    pub fn sequence_cost(&self, types: &[ActionTypeId]) -> f64 {
        let mut prev = None;
        let mut total = 0.0;
        for &t in types {
            total += self.step_cost(prev, t);
            prev = Some(t);
        }
        total
    }

    /// Cost-to-go lower bound `h(n)` given per-type remaining counts and the
    /// type of the last finished action.
    pub fn heuristic(
        &self,
        mode: HeuristicMode,
        remaining: &[u16],
        last: Option<ActionTypeId>,
    ) -> f64 {
        match mode {
            HeuristicMode::None => 0.0,
            HeuristicMode::PaperEq9 => remaining
                .iter()
                .filter(|&&n| n > 0)
                .map(|&n| self.phase_cost(n as usize))
                .sum(),
            HeuristicMode::Admissible => {
                let mut h = 0.0;
                for (i, &n) in remaining.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    if last == Some(ActionTypeId(i as u8)) {
                        // The open run can absorb these at α each.
                        h += self.alpha * n as f64;
                    } else {
                        h += self.phase_cost(n as usize);
                    }
                }
                h
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const A0: ActionTypeId = ActionTypeId(0);
    const A1: ActionTypeId = ActionTypeId(1);

    #[test]
    fn eq1_counts_type_changes_plus_one() {
        let m = CostModel::default();
        // (0,0,1,1,0): three runs -> cost 3 = two changes + 1.
        let seq = [A0, A0, A1, A1, A0];
        assert_eq!(m.sequence_cost(&seq), 3.0);
        assert_eq!(m.sequence_cost(&[A0]), 1.0);
        assert_eq!(m.sequence_cost(&[]), 0.0);
    }

    #[test]
    fn alpha_charges_same_type_continuations() {
        let m = CostModel::new(0.25);
        // Runs of length 2 and 2: (1+0.25) + (1+0.25) = 2.5.
        assert!((m.sequence_cost(&[A0, A0, A1, A1]) - 2.5).abs() < 1e-12);
        assert!((m.phase_cost(3) - 1.5).abs() < 1e-12);
        assert_eq!(m.phase_cost(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn alpha_out_of_range_rejected() {
        CostModel::new(1.5);
    }

    #[test]
    fn heuristic_counts_remaining_types_when_alpha_zero() {
        let m = CostModel::default();
        let h = m.heuristic(HeuristicMode::Admissible, &[3, 0, 2], None);
        assert_eq!(h, 2.0);
        assert_eq!(m.heuristic(HeuristicMode::None, &[3, 0, 2], None), 0.0);
    }

    #[test]
    fn admissible_discounts_the_open_run() {
        let m = CostModel::default();
        // Last action was type 0 and type 0 has remaining actions: with
        // alpha = 0 they are free continuations.
        let h_adm = m.heuristic(HeuristicMode::Admissible, &[2, 1], Some(A0));
        let h_paper = m.heuristic(HeuristicMode::PaperEq9, &[2, 1], Some(A0));
        assert_eq!(h_adm, 1.0);
        assert_eq!(h_paper, 2.0, "Eq.9 overcounts the open run");
    }

    #[test]
    fn heuristic_equals_true_cost_for_single_type() {
        let m = CostModel::new(0.5);
        // 4 remaining actions of a fresh type: optimum is one phase of 4.
        let h = m.heuristic(HeuristicMode::Admissible, &[4], None);
        assert!((h - m.phase_cost(4)).abs() < 1e-12);
    }

    proptest! {
        /// h is admissible: for any remaining multiset and any completion
        /// order, h <= actual cost of that completion.
        #[test]
        fn prop_admissible_heuristic_is_lower_bound(
            remaining in proptest::collection::vec(0u16..4, 1..4),
            shuffle_seed in 0u64..1000,
            last_raw in 0usize..4,
        ) {
            let m = CostModel::new(0.3);
            let last = if last_raw < remaining.len() {
                Some(ActionTypeId(last_raw as u8))
            } else {
                None
            };
            // Build an arbitrary completion order of the remaining actions.
            let mut seq: Vec<ActionTypeId> = remaining
                .iter()
                .enumerate()
                .flat_map(|(i, &n)| std::iter::repeat_n(ActionTypeId(i as u8), n as usize))
                .collect();
            // Cheap deterministic shuffle.
            let len = seq.len();
            if len > 1 {
                for i in 0..len {
                    let j = (shuffle_seed as usize + i * 7919) % len;
                    seq.swap(i, j);
                }
            }
            // Actual cost of this completion, continuing from `last`.
            let mut prev = last;
            let mut actual = 0.0;
            for &t in &seq {
                actual += m.step_cost(prev, t);
                prev = Some(t);
            }
            let h = m.heuristic(HeuristicMode::Admissible, &remaining, last);
            prop_assert!(
                h <= actual + 1e-9,
                "h = {h} exceeds actual completion cost {actual} for {remaining:?} last={last:?}"
            );
        }
    }
}
