//! Error types for migration specification and planning.

use std::fmt;
use std::time::Duration;

/// Errors from building a [`MigrationSpec`](crate::migration::MigrationSpec)
/// or running a planner over one.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The preset/topology lacks the elements this migration type needs
    /// (e.g. a DMAG migration without an MA layer in the union graph).
    MissingElements(String),
    /// The initial world already violates the constraints; no plan can start.
    InitialInfeasible(String),
    /// The target world violates the constraints; no plan can finish.
    TargetInfeasible(String),
    /// No action sequence satisfies the constraints (Figure 11's 0.25×E).
    NoFeasiblePlan,
    /// The planner exceeded its state budget or wall-clock limit
    /// (the paper caps planners at 24 h; ours is configurable).
    BudgetExceeded {
        states_visited: u64,
        elapsed: Duration,
    },
    /// This planner cannot handle this migration type (MRC and Janus cannot
    /// plan topology-changing migrations, §6.3).
    UnsupportedMigration(String),
    /// The traffic-ensemble specification is invalid or could not be
    /// realized against the instance (K=0, bad parameters, matrices
    /// incompatible with the topology).
    InvalidEnsemble(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::MissingElements(what) => {
                write!(f, "topology lacks required elements: {what}")
            }
            PlanError::InitialInfeasible(why) => {
                write!(f, "initial topology violates constraints: {why}")
            }
            PlanError::TargetInfeasible(why) => {
                write!(f, "target topology violates constraints: {why}")
            }
            PlanError::NoFeasiblePlan => write!(f, "no feasible action sequence exists"),
            PlanError::BudgetExceeded {
                states_visited,
                elapsed,
            } => write!(
                f,
                "planner budget exceeded after {states_visited} states in {elapsed:?}"
            ),
            PlanError::UnsupportedMigration(why) => {
                write!(f, "planner cannot handle this migration: {why}")
            }
            PlanError::InvalidEnsemble(why) => {
                write!(f, "invalid traffic ensemble: {why}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(PlanError::NoFeasiblePlan.to_string().contains("feasible"));
        let e = PlanError::BudgetExceeded {
            states_visited: 42,
            elapsed: Duration::from_secs(3),
        };
        assert!(e.to_string().contains("42"));
        assert!(PlanError::UnsupportedMigration("dmag".into())
            .to_string()
            .contains("dmag"));
    }
}
