//! OPEX cost model (§7.2, "OPEX savings").
//!
//! "Physical migration requires sending workforce to the site to perform
//! manual work. Different sequences of steps could have different costs in
//! terms of human efficiency. Indeed, we are adding a cost model to Klotski
//! which can optimize for OPEX spending." — this module is that extension.
//!
//! The model prices a plan in dollars: every serial phase pays a fixed
//! mobilization cost (crews travel to the site, circuits are staged and
//! audited), and the work inside a phase is executed by a bounded crew pool,
//! so a phase of `x` switch-level operations takes `ceil(x / crews)`
//! crew-days. The abstract cost function `f_cost(x) = 1 + α(x−1)` of §5 is
//! the linearization of exactly this shape, and
//! [`OpexModel::recommended_alpha`] derives the α that makes the planner's
//! objective a faithful proxy for dollars.

use crate::action::BlockClass;
use crate::migration::MigrationSpec;
use crate::plan::MigrationPlan;
use serde::{Deserialize, Serialize};

/// Workforce cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpexModel {
    /// Fixed mobilization cost per serial phase (travel, staging, audits).
    pub phase_setup_cost: f64,
    /// Cost of one crew working one day.
    pub crew_day_cost: f64,
    /// Crews available in parallel within one phase.
    pub crews: usize,
    /// Crew-days of manual work per switch-level operation of each class.
    pub fa_grid_days_per_op: f64,
    pub ssw_days_per_op: f64,
    pub ma_days_per_op: f64,
    pub circuit_bundle_days_per_op: f64,
}

impl Default for OpexModel {
    fn default() -> Self {
        Self {
            phase_setup_cost: 25_000.0,
            crew_day_cost: 4_000.0,
            crews: 4,
            fa_grid_days_per_op: 1.0,
            ssw_days_per_op: 1.0,
            ma_days_per_op: 0.6,
            circuit_bundle_days_per_op: 0.1,
        }
    }
}

/// Priced breakdown of one plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpexReport {
    /// Serial phases in the plan.
    pub phases: usize,
    /// Total crew-days of manual work.
    pub crew_days: f64,
    /// Wall-clock working days (phases execute serially, crews in parallel).
    pub duration_days: f64,
    /// Mobilization spend.
    pub setup_cost: f64,
    /// Labor spend.
    pub labor_cost: f64,
    /// Total dollars.
    pub total_cost: f64,
}

impl OpexModel {
    fn days_per_op(&self, class: BlockClass) -> f64 {
        match class {
            BlockClass::FaGrid => self.fa_grid_days_per_op,
            BlockClass::Ssw => self.ssw_days_per_op,
            BlockClass::Ma => self.ma_days_per_op,
            BlockClass::DirectCircuit => self.circuit_bundle_days_per_op,
        }
    }

    /// Prices a plan.
    pub fn price(&self, spec: &MigrationSpec, plan: &MigrationPlan) -> OpexReport {
        assert!(self.crews > 0, "need at least one crew");
        let phases = plan.phases();
        let mut crew_days = 0.0;
        let mut duration_days = 0.0;
        for phase in &phases {
            let work: f64 = phase
                .blocks
                .iter()
                .map(|&b| {
                    let block = &spec.blocks[b.index()];
                    let class = spec.actions.kind(block.kind).class;
                    block.action_weight() as f64 * self.days_per_op(class)
                })
                .sum();
            crew_days += work;
            // Crews parallelize within a phase; phases are serial.
            duration_days += (work / self.crews as f64).ceil().max(1.0);
        }
        let setup_cost = phases.len() as f64 * self.phase_setup_cost;
        let labor_cost = crew_days * self.crew_day_cost;
        OpexReport {
            phases: phases.len(),
            crew_days,
            duration_days,
            setup_cost,
            labor_cost,
            total_cost: setup_cost + labor_cost,
        }
    }

    /// The α that makes the §5 cost function a faithful proxy for this
    /// model: the marginal cost of keeping an extra action inside a phase,
    /// relative to the cost of opening a new phase.
    ///
    /// Opening a phase costs `phase_setup_cost` (+ one crew-day batch);
    /// extending it costs about one op's labor share,
    /// `days_per_op · crew_day_cost / crews`. Total labor is
    /// plan-invariant, so the α-weighted objective orders plans by exactly
    /// the spend the planner can influence.
    pub fn recommended_alpha(&self, dominant_class: BlockClass) -> f64 {
        let extend = self.days_per_op(dominant_class) * self.crew_day_cost / self.crews as f64;
        let open = self.phase_setup_cost + extend;
        (extend / open).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::{MigrationBuilder, MigrationOptions};
    use crate::planner::{AStarPlanner, Planner};
    use klotski_topology::presets::{self, PresetId};

    fn spec() -> MigrationSpec {
        MigrationBuilder::hgrid_v1_to_v2(&presets::build(PresetId::A), &MigrationOptions::default())
            .unwrap()
    }

    #[test]
    fn price_decomposes_into_setup_plus_labor() {
        let spec = spec();
        let plan = AStarPlanner::default().plan(&spec).unwrap().plan;
        let model = OpexModel::default();
        let report = model.price(&spec, &plan);
        assert_eq!(report.phases, plan.num_phases());
        assert!((report.total_cost - report.setup_cost - report.labor_cost).abs() < 1e-9);
        // Labor is plan-invariant: 45 switch ops x 1 crew-day x $4k.
        assert!((report.crew_days - spec.num_switch_actions() as f64).abs() < 1e-9);
        assert!(report.duration_days >= report.crew_days / model.crews as f64);
    }

    #[test]
    fn fewer_phases_cost_less_at_equal_work() {
        let spec = spec();
        let optimal = AStarPlanner::default().plan(&spec).unwrap().plan;
        // A maximally fragmented plan: same blocks, alternating as much as
        // the constraints allow is not needed — compare against any plan
        // with more phases by re-pricing a hypothetical split: simulate by
        // pricing the same plan with double setup cost instead.
        let model = OpexModel::default();
        let base = model.price(&spec, &optimal);
        let alpha1 = AStarPlanner::with_alpha(1.0).plan(&spec).unwrap().plan;
        let alt = model.price(&spec, &alpha1);
        // Labor identical; total ordering decided purely by phase counts.
        assert!((base.labor_cost - alt.labor_cost).abs() < 1e-9);
        if alt.phases > base.phases {
            assert!(alt.total_cost > base.total_cost);
        }
    }

    #[test]
    fn recommended_alpha_is_marginal_ratio() {
        let model = OpexModel {
            phase_setup_cost: 9_000.0,
            crew_day_cost: 4_000.0,
            crews: 4,
            ..OpexModel::default()
        };
        // extend = 1.0 * 4000 / 4 = 1000; open = 9000 + 1000; alpha = 0.1.
        let alpha = model.recommended_alpha(BlockClass::FaGrid);
        assert!((alpha - 0.1).abs() < 1e-9);
        assert!(model.recommended_alpha(BlockClass::DirectCircuit) < alpha);
    }

    #[test]
    fn planning_with_recommended_alpha_never_costs_more_dollars() {
        let spec = spec();
        let model = OpexModel::default();
        let alpha = model.recommended_alpha(BlockClass::FaGrid);
        let tuned = AStarPlanner::with_alpha(alpha).plan(&spec).unwrap().plan;
        let naive = AStarPlanner::with_alpha(1.0).plan(&spec).unwrap().plan;
        let tuned_cost = model.price(&spec, &tuned).total_cost;
        let naive_cost = model.price(&spec, &naive).total_cost;
        assert!(
            tuned_cost <= naive_cost + 1e-9,
            "tuned ${tuned_cost} vs naive ${naive_cost}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one crew")]
    fn zero_crews_rejected() {
        let spec = spec();
        let plan = AStarPlanner::default().plan(&spec).unwrap().plan;
        OpexModel {
            crews: 0,
            ..OpexModel::default()
        }
        .price(&spec, &plan);
    }
}
