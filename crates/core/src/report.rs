//! Human-readable plan reports: the per-phase safety timeline operators
//! review before a plan ships (§7.2 adds "extra audits and safety checks to
//! Klotski's plans during operation" — this is the pre-flight audit sheet).

use crate::compact::CompactState;
use crate::migration::MigrationSpec;
use crate::plan::MigrationPlan;
use klotski_routing::{evaluate_with, EcmpRouter, LoadMap};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Safety snapshot after one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseAudit {
    /// 1-based phase number.
    pub index: usize,
    /// Action-type label.
    pub action: String,
    /// Blocks operated in parallel.
    pub blocks: usize,
    /// Switch-level operations.
    pub switch_ops: usize,
    /// Peak circuit utilization after the phase.
    pub max_utilization: f64,
    /// Name of the hottest circuit's endpoints.
    pub worst_circuit: Option<String>,
    /// Minimum free-port slack across switches (ports − active degree).
    pub min_port_slack: usize,
    /// Floor space used / budget, if the migration carries a space model.
    pub space_used: Option<f64>,
}

/// Full pre-flight audit of a plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanAudit {
    /// Migration instance name.
    pub migration: String,
    /// Utilization bound θ the phases are audited against.
    pub theta: f64,
    /// Per-phase snapshots, in execution order.
    pub phases: Vec<PhaseAudit>,
}

impl PlanAudit {
    /// Highest utilization any phase reaches.
    pub fn peak_utilization(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| p.max_utilization)
            .fold(0.0, f64::max)
    }

    /// Headroom to θ at the tightest moment of the whole migration.
    pub fn min_headroom(&self) -> f64 {
        self.theta - self.peak_utilization()
    }
}

impl fmt::Display for PlanAudit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan audit for {} (theta = {:.0}%)",
            self.migration,
            self.theta * 100.0
        )?;
        for p in &self.phases {
            writeln!(
                f,
                "  phase {:>2}: {:<22} {:>2} block(s) {:>4} ops | peak util {:>5.1}%{} | min port slack {}{}",
                p.index,
                p.action,
                p.blocks,
                p.switch_ops,
                p.max_utilization * 100.0,
                p.worst_circuit
                    .as_deref()
                    .map(|w| format!(" ({w})"))
                    .unwrap_or_default(),
                p.min_port_slack,
                p.space_used
                    .map(|s| format!(" | space {s:.2}"))
                    .unwrap_or_default(),
            )?;
        }
        writeln!(
            f,
            "  tightest headroom to theta: {:.1} percentage points",
            self.min_headroom() * 100.0
        )
    }
}

/// Audits a plan: replays it phase by phase, recording utilization, port
/// slack, and space footprint after each phase.
pub fn audit_plan(spec: &MigrationSpec, plan: &MigrationPlan) -> PlanAudit {
    let topo = &spec.topology;
    let mut router = EcmpRouter::with_policy(topo, spec.split);
    let mut loads = LoadMap::new(topo);
    let mut state = spec.initial.clone();
    let mut v = CompactState::origin(spec.num_types());
    let mut phases = Vec::new();

    for (i, phase) in plan.phases().iter().enumerate() {
        let mut switch_ops = 0;
        for &b in &phase.blocks {
            switch_ops += spec.blocks[b.index()].action_weight();
            spec.apply_next(&mut state, &v, phase.kind);
            v = v.advanced(phase.kind);
        }
        let outcome = evaluate_with(
            &mut router,
            &mut loads,
            topo,
            &state,
            &spec.demands,
            spec.theta,
        );
        let worst_circuit = outcome.report.worst_circuit.map(|c| {
            let ck = topo.circuit(c);
            format!("{} <-> {}", topo.switch(ck.a).name, topo.switch(ck.b).name)
        });
        let min_port_slack = topo
            .switches()
            .iter()
            .filter(|s| state.switch_up(s.id))
            .map(|s| (s.max_ports as usize).saturating_sub(state.active_degree(topo, s.id)))
            .min()
            .unwrap_or(0);
        phases.push(PhaseAudit {
            index: i + 1,
            action: spec.actions.kind(phase.kind).to_string(),
            blocks: phase.blocks.len(),
            switch_ops,
            max_utilization: outcome.report.max_utilization,
            worst_circuit,
            min_port_slack,
            space_used: spec.space.as_ref().map(|m| m.used(&v)),
        });
    }

    PlanAudit {
        migration: spec.name.clone(),
        theta: spec.theta,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::{MigrationBuilder, MigrationOptions};
    use crate::planner::{AStarPlanner, Planner};
    use klotski_topology::presets::{self, PresetId};

    fn audited() -> (MigrationSpec, PlanAudit) {
        let spec = MigrationBuilder::hgrid_v1_to_v2(
            &presets::build(PresetId::A),
            &MigrationOptions::default(),
        )
        .unwrap();
        let plan = AStarPlanner::default().plan(&spec).unwrap().plan;
        let audit = audit_plan(&spec, &plan);
        (spec, audit)
    }

    #[test]
    fn audit_covers_every_phase_and_stays_under_theta() {
        let (spec, audit) = audited();
        assert!(!audit.phases.is_empty());
        assert_eq!(audit.theta, spec.theta);
        for p in &audit.phases {
            assert!(
                p.max_utilization <= spec.theta + 1e-9,
                "phase {} exceeds theta",
                p.index
            );
            assert!(p.blocks > 0 && p.switch_ops > 0);
        }
        assert!(audit.min_headroom() >= -1e-9);
        // Total ops across phases equal the migration's workload.
        let total: usize = audit.phases.iter().map(|p| p.switch_ops).sum();
        assert_eq!(total, spec.num_switch_actions());
    }

    #[test]
    fn space_column_present_for_in_place_swaps() {
        let (_, audit) = audited();
        assert!(audit.phases.iter().all(|p| p.space_used.is_some()));
    }

    #[test]
    fn display_is_one_line_per_phase() {
        let (_, audit) = audited();
        let shown = audit.to_string();
        // header + phases + headroom footer
        assert_eq!(shown.lines().count(), audit.phases.len() + 2);
        assert!(shown.contains("peak util"));
    }
}
