//! Symmetry blocks and operation blocks (§4.1, §5).
//!
//! *Symmetry blocks* follow Janus's notion of equivalent switches: switches
//! with the same role/generation connecting to the same neighbor set are
//! interchangeable, so their internal operation order never matters. The
//! paper's observation is that in Meta's complex DCNs each symmetry block
//! holds at most two switches — far too little pruning on its own.
//!
//! *Operation blocks* add the locality insight: neighboring switches
//! (a whole HGRID grid; a group of SSWs on one plane; the MAs under one EB)
//! can be operated together with little extra operational cost and little
//! impact on safety. The organization policy (§5) merges symmetry blocks
//! into these units; the planners then sequence operation blocks, not
//! switches.

use crate::action::ActionTypeId;
use klotski_topology::{CircuitId, NetState, SwitchId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Dense index of an operation block within one migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk{}", self.0)
    }
}

/// A group of switches and/or circuits operated as one action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperationBlock {
    /// Dense id within the owning migration spec.
    pub id: BlockId,
    /// The action type of operating this block.
    pub kind: ActionTypeId,
    /// Switches operated (drained or undrained) by this block.
    pub switches: Vec<SwitchId>,
    /// Circuits operated directly (beyond those implied by switch drains);
    /// used by DMAG's direct-circuit bundles.
    pub circuits: Vec<CircuitId>,
    /// Human-readable label, e.g. `drain-fa-grid-v1/g3`.
    pub label: String,
}

impl OperationBlock {
    /// Number of switch-level actions this block represents (the unit of
    /// Table 3's "Actions" column). Circuit bundles count as one.
    pub fn action_weight(&self) -> usize {
        if self.switches.is_empty() {
            1
        } else {
            self.switches.len()
        }
    }

    /// Applies the block to a state: drains clear elements, undrains
    /// restore them (circuits only come back when both endpoints are up).
    pub fn apply(&self, topo: &Topology, state: &mut NetState, drain: bool) {
        if drain {
            for &s in &self.switches {
                state.drain_switch(topo, s);
            }
            for &c in &self.circuits {
                state.set_circuit(c, false);
            }
        } else {
            for &s in &self.switches {
                state.undrain_switch(topo, s);
            }
            for &c in &self.circuits {
                let ck = topo.circuit(c);
                if state.switch_up(ck.a) && state.switch_up(ck.b) {
                    state.set_circuit(c, true);
                }
            }
        }
    }
}

/// Groups `candidates` into symmetry blocks: switches are equivalent iff
/// they share (role, generation) and the same neighbor set in the union
/// graph. Returns blocks in first-seen order; singletons are blocks of one.
pub fn symmetry_blocks(topo: &Topology, candidates: &[SwitchId]) -> Vec<Vec<SwitchId>> {
    // Signature: (role, generation, sorted neighbor ids). Neighbor multiset
    // collapses parallel circuits — they do not break interchangeability.
    let mut groups: BTreeMap<(u8, u8, Vec<u32>), Vec<SwitchId>> = BTreeMap::new();
    let mut order: Vec<(u8, u8, Vec<u32>)> = Vec::new();
    for &s in candidates {
        let sw = topo.switch(s);
        let mut neighbors: Vec<u32> = topo.neighbors(s).iter().map(|&(_, far)| far.0).collect();
        neighbors.sort_unstable();
        neighbors.dedup();
        let key = (sw.role.layer(), sw.generation.0, neighbors);
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(s);
    }
    order
        .into_iter()
        .map(|k| groups.remove(&k).unwrap())
        .collect()
}

/// Splits `items` into `parts` contiguous chunks as evenly as possible
/// (first chunks get the remainder). Used by the organization policy's
/// block-scale sweeps (Figure 11).
pub fn split_even<T: Clone>(items: &[T], parts: usize) -> Vec<Vec<T>> {
    assert!(parts > 0, "cannot split into zero parts");
    let parts = parts.min(items.len()).max(1);
    let base = items.len() / parts;
    let rem = items.len() % parts;
    let mut out = Vec::with_capacity(parts);
    let mut idx = 0;
    for p in 0..parts {
        let take = base + usize::from(p < rem);
        out.push(items[idx..idx + take].to_vec());
        idx += take;
    }
    out
}

/// Merges consecutive groups of `groups` into `ceil(len/factor)` larger
/// groups of `factor` originals each (Figure 11's 0.25×/0.5× settings).
pub fn merge_groups<T: Clone>(groups: &[Vec<T>], factor: usize) -> Vec<Vec<T>> {
    assert!(factor > 0, "merge factor must be positive");
    groups
        .chunks(factor)
        .map(|chunk| chunk.iter().flatten().cloned().collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_topology::{
        graph::{SwitchSpec, TopologyBuilder},
        DcId, Generation, SwitchRole,
    };

    /// Two FAUUs sharing the same two FADU neighbors (equivalent), plus one
    /// FADU pair with distinct neighbors (each its own block).
    fn grid() -> (Topology, Vec<SwitchId>) {
        let mut b = TopologyBuilder::new("g");
        let spec = |r| SwitchSpec::new(r, Generation::V1, DcId(0), 32);
        let fd0 = b.add_switch(spec(SwitchRole::Fadu));
        let fd1 = b.add_switch(spec(SwitchRole::Fadu));
        let fu0 = b.add_switch(spec(SwitchRole::Fauu));
        let fu1 = b.add_switch(spec(SwitchRole::Fauu));
        let ssw0 = b.add_switch(spec(SwitchRole::Ssw));
        let ssw1 = b.add_switch(spec(SwitchRole::Ssw));
        for fd in [fd0, fd1] {
            for fu in [fu0, fu1] {
                b.add_circuit(fd, fu, 100.0).unwrap();
            }
        }
        // FADUs face *different* SSWs -> not equivalent.
        b.add_circuit(ssw0, fd0, 100.0).unwrap();
        b.add_circuit(ssw1, fd1, 100.0).unwrap();
        (b.build(), vec![fd0, fd1, fu0, fu1])
    }

    #[test]
    fn equivalent_switches_group_together() {
        let (t, cands) = grid();
        let blocks = symmetry_blocks(&t, &cands);
        // fd0 and fd1 are singletons; fu0+fu1 share neighbors {fd0, fd1}.
        assert_eq!(blocks.len(), 3);
        let sizes: Vec<usize> = blocks.iter().map(|b| b.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 4);
        assert!(sizes.contains(&2), "the FAUU pair must merge: {blocks:?}");
        // Matches the paper's observation: symmetry blocks hold <= 2 switches.
        assert!(sizes.iter().all(|&s| s <= 2));
    }

    #[test]
    fn different_roles_never_merge() {
        let (t, cands) = grid();
        for block in symmetry_blocks(&t, &cands) {
            let roles: std::collections::HashSet<_> =
                block.iter().map(|&s| t.switch(s).role).collect();
            assert_eq!(roles.len(), 1);
        }
    }

    #[test]
    fn parallel_circuits_do_not_break_equivalence() {
        let mut b = TopologyBuilder::new("p");
        let spec = |r| SwitchSpec::new(r, Generation::V1, DcId(0), 32);
        let hub = b.add_switch(spec(SwitchRole::Ssw));
        let x = b.add_switch(spec(SwitchRole::Fadu));
        let y = b.add_switch(spec(SwitchRole::Fadu));
        b.add_parallel_circuits(hub, x, 100.0, 2).unwrap();
        b.add_circuit(hub, y, 100.0).unwrap();
        let t = b.build();
        let blocks = symmetry_blocks(&t, &[x, y]);
        assert_eq!(blocks.len(), 1, "x and y both see only the hub");
    }

    #[test]
    fn split_even_balances() {
        let items: Vec<u32> = (0..10).collect();
        let parts = split_even(&items, 3);
        assert_eq!(parts.len(), 3);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        let flat: Vec<u32> = parts.into_iter().flatten().collect();
        assert_eq!(flat, items);
    }

    #[test]
    fn split_even_caps_at_len() {
        let items = vec![1, 2];
        let parts = split_even(&items, 5);
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn merge_groups_combines_consecutive() {
        let groups = vec![vec![1], vec![2], vec![3], vec![4], vec![5]];
        let merged = merge_groups(&groups, 2);
        assert_eq!(merged, vec![vec![1, 2], vec![3, 4], vec![5]]);
    }

    #[test]
    fn apply_drain_and_undrain_roundtrip() {
        let (t, cands) = grid();
        let block = OperationBlock {
            id: BlockId(0),
            kind: ActionTypeId(0),
            switches: cands.clone(),
            circuits: vec![],
            label: "test".into(),
        };
        let orig = NetState::all_up(&t);
        let mut s = orig.clone();
        block.apply(&t, &mut s, true);
        for &sw in &cands {
            assert!(!s.switch_up(sw));
        }
        block.apply(&t, &mut s, false);
        assert_eq!(s, orig);
    }

    #[test]
    fn action_weight_counts_switches_or_one() {
        let b1 = OperationBlock {
            id: BlockId(0),
            kind: ActionTypeId(0),
            switches: vec![SwitchId(0), SwitchId(1)],
            circuits: vec![],
            label: "s".into(),
        };
        let b2 = OperationBlock {
            id: BlockId(1),
            kind: ActionTypeId(0),
            switches: vec![],
            circuits: vec![CircuitId(0), CircuitId(1)],
            label: "c".into(),
        };
        assert_eq!(b1.action_weight(), 2);
        assert_eq!(b2.action_weight(), 1);
    }
}
