//! Plan execution simulator with the §7 operational machinery.
//!
//! Klotski's output is a *logical* plan; actually operating a datacenter for
//! months surfaces the issues §7 describes. The executor simulates a plan
//! phase by phase against a world where:
//!
//! - demand grows organically between phases and is re-forecast (§7.1);
//! - unexpected traffic surges hit mid-migration (§7.2, the warm-storage
//!   incident);
//! - the configuration/push pipeline can fail an operation, requiring
//!   audited retries (§7.2, "Failures during operation duration");
//! - routine maintenance not controlled by Klotski can take an uninvolved
//!   switch down during a phase (§7.2, "Simultaneous operations").
//!
//! When the realized world makes the *next* phase unsafe, the executor
//! re-runs the planner on the residual migration with the updated demand —
//! exactly the production replanning loop.

use crate::compact::CompactState;
use crate::error::PlanError;
use crate::migration::MigrationSpec;
use crate::plan::{MigrationPlan, PlanPhase};
use crate::planner::Planner;
use klotski_routing::evaluate_policy;
use klotski_topology::{NetState, SwitchId};
use klotski_traffic::{surge::apply_surges, DemandMatrix, SurgeEvent};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Executor tunables.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// RNG seed for fault injection.
    pub seed: u64,
    /// Probability that one phase's push fails and must be retried.
    pub failure_prob: f64,
    /// Retries before the execution aborts.
    pub max_retries: u32,
    /// Traffic surges active by phase index.
    pub surges: Vec<SurgeEvent>,
    /// Organic demand growth per phase (e.g. 0.02 = +2%/phase, §7.1).
    pub demand_growth_per_phase: f64,
    /// Probability that routine external maintenance takes one uninvolved
    /// switch down during a phase.
    pub external_maintenance_prob: f64,
    /// Whether to replan on safety violations instead of aborting.
    pub replan_on_violation: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            seed: 23,
            failure_prob: 0.0,
            max_retries: 3,
            surges: Vec::new(),
            demand_growth_per_phase: 0.0,
            external_maintenance_prob: 0.0,
            replan_on_violation: true,
        }
    }
}

/// What happened during one executed phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Phase index in execution order (across replans).
    pub index: usize,
    /// Blocks operated.
    pub blocks_operated: usize,
    /// Push attempts needed (1 = clean).
    pub attempts: u32,
    /// Maximum circuit utilization under realized demand after the phase.
    pub realized_max_utilization: f64,
    /// Whether the post-phase state satisfied the constraints under
    /// realized demand.
    pub safe: bool,
    /// Whether an external maintenance event was active.
    pub external_maintenance: bool,
}

/// Full execution trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Per-phase records.
    pub phases: Vec<PhaseRecord>,
    /// Whether the migration reached its target.
    pub completed: bool,
    /// How many times the planner was re-invoked mid-migration.
    pub replans: usize,
    /// Why execution stopped early, if it did.
    pub abort_reason: Option<String>,
}

/// Executes `plan` for `spec`, replanning with `planner` when the realized
/// world invalidates the remaining plan.
pub fn execute(
    spec: &MigrationSpec,
    plan: &MigrationPlan,
    planner: &dyn Planner,
    cfg: &ExecutorConfig,
) -> ExecutionReport {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut report = ExecutionReport {
        phases: Vec::new(),
        completed: false,
        replans: 0,
        abort_reason: None,
    };

    // Working copies: these evolve as the world changes.
    let mut active_spec = spec.clone();
    let mut pending: Vec<PlanPhase> = plan.phases();
    let mut state = spec.initial.clone();
    let mut progress = CompactState::origin(spec.num_types());
    let mut demand_multiplier = 1.0_f64;
    let mut phase_counter = 0usize;

    'phases: while let Some(phase) = pending.first().cloned() {
        // --- Push pipeline: the operation can fail and be retried. Every
        // retry re-audits that the block is still the next canonical one.
        let mut attempts = 1u32;
        while rng.random_range(0.0..1.0) < cfg.failure_prob {
            attempts += 1;
            if attempts > cfg.max_retries {
                report.abort_reason = Some(format!(
                    "phase {phase_counter}: push failed after {attempts} attempts"
                ));
                return report;
            }
        }

        // --- Apply the phase's blocks.
        for _ in &phase.blocks {
            active_spec.apply_next(&mut state, &progress, phase.kind);
            progress = progress.advanced(phase.kind);
        }
        pending.remove(0);

        // --- Realized world: organic growth + surges (+ maintenance).
        demand_multiplier *= 1.0 + cfg.demand_growth_per_phase;
        let realized: DemandMatrix = realized_demand(
            &active_spec.demands,
            demand_multiplier,
            &cfg.surges,
            phase_counter,
        );
        let maintenance = rng.random_range(0.0..1.0) < cfg.external_maintenance_prob;
        let mut observed_state = state.clone();
        if maintenance {
            if let Some(victim) = pick_uninvolved_switch(&active_spec, &observed_state, &mut rng) {
                observed_state.drain_switch(&active_spec.topology, victim);
            }
        }

        let outcome = evaluate_policy(
            &active_spec.topology,
            &observed_state,
            &realized,
            active_spec.theta,
            active_spec.split,
        );
        report.phases.push(PhaseRecord {
            index: phase_counter,
            blocks_operated: phase.blocks.len(),
            attempts,
            realized_max_utilization: outcome.report.max_utilization,
            safe: outcome.satisfied(),
            external_maintenance: maintenance,
        });
        phase_counter += 1;

        // --- Replanning loop (§7.1): if the remaining plan's next state
        // would be unsafe under realized demand, re-run the planner on the
        // residual migration.
        if !pending.is_empty()
            && !plan_still_safe(&active_spec, &state, &progress, &pending, &realized)
        {
            if !cfg.replan_on_violation {
                report.abort_reason = Some(format!(
                    "phase {phase_counter}: remaining plan unsafe and replanning disabled"
                ));
                return report;
            }
            let residual = active_spec.residual(&progress, state.clone(), realized.clone());
            match planner.plan(&residual) {
                Ok(new_outcome) => {
                    report.replans += 1;
                    active_spec = residual;
                    progress = CompactState::origin(active_spec.num_types());
                    pending = new_outcome.plan.phases();
                    continue 'phases;
                }
                Err(PlanError::NoFeasiblePlan) | Err(PlanError::TargetInfeasible(_)) => {
                    report.abort_reason = Some(format!(
                        "phase {phase_counter}: no feasible residual plan under realized demand"
                    ));
                    return report;
                }
                Err(e) => {
                    report.abort_reason = Some(format!("replanning failed: {e}"));
                    return report;
                }
            }
        }
    }

    report.completed = progress.is_target(&active_spec.target_counts);
    report
}

/// The demand the fleet actually carries at `step`: the planning matrix
/// scaled by accumulated organic growth, with every surge active at `step`
/// applied on top. Shared by the executor and the live controller so both
/// simulate the same world.
pub fn realized_demand(
    base: &DemandMatrix,
    growth_multiplier: f64,
    surges: &[SurgeEvent],
    step: usize,
) -> DemandMatrix {
    apply_surges(&base.scaled(growth_multiplier), surges, step)
}

/// Replays the remaining phases against the realized demand; true if every
/// intermediate state stays safe.
pub fn plan_still_safe(
    spec: &MigrationSpec,
    state: &NetState,
    progress: &CompactState,
    pending: &[PlanPhase],
    realized: &DemandMatrix,
) -> bool {
    let mut s = state.clone();
    let mut v = progress.clone();
    for phase in pending {
        for _ in &phase.blocks {
            spec.apply_next(&mut s, &v, phase.kind);
            v = v.advanced(phase.kind);
            let out = evaluate_policy(&spec.topology, &s, realized, spec.theta, spec.split);
            if !out.satisfied() {
                return false;
            }
        }
    }
    true
}

/// Picks a random switch that is up, not part of any operation block —
/// routine maintenance never touches the migration's own hardware — and not
/// a demand endpoint (draining an endpoint rack would trivially void
/// reachability rather than exercise the network's headroom).
pub fn pick_uninvolved_switch(
    spec: &MigrationSpec,
    state: &NetState,
    rng: &mut SmallRng,
) -> Option<SwitchId> {
    let mut involved: std::collections::HashSet<SwitchId> = spec
        .blocks
        .iter()
        .flat_map(|b| b.switches.iter().copied())
        .collect();
    for d in spec.demands.iter() {
        involved.insert(d.src);
        involved.insert(d.dst);
    }
    let candidates: Vec<SwitchId> = state
        .switches_up()
        .filter(|s| !involved.contains(s))
        .collect();
    if candidates.is_empty() {
        return None;
    }
    Some(candidates[rng.random_range(0..candidates.len())])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::{MigrationBuilder, MigrationOptions};
    use crate::planner::{AStarPlanner, Planner};
    use klotski_topology::presets::{self, PresetId};
    use klotski_traffic::DemandClass;

    fn plan_and_spec() -> (MigrationSpec, MigrationPlan) {
        let spec = MigrationBuilder::hgrid_v1_to_v2(
            &presets::build(PresetId::A),
            &MigrationOptions::default(),
        )
        .unwrap();
        let plan = AStarPlanner::default().plan(&spec).unwrap().plan;
        (spec, plan)
    }

    #[test]
    fn clean_execution_completes() {
        let (spec, plan) = plan_and_spec();
        let report = execute(
            &spec,
            &plan,
            &AStarPlanner::default(),
            &ExecutorConfig::default(),
        );
        assert!(report.completed, "{:?}", report.abort_reason);
        assert_eq!(report.replans, 0);
        assert!(report.phases.iter().all(|p| p.safe));
        assert_eq!(report.phases.len(), plan.num_phases());
    }

    #[test]
    fn growth_triggers_replanning_or_still_completes() {
        let (spec, plan) = plan_and_spec();
        let cfg = ExecutorConfig {
            demand_growth_per_phase: 0.10,
            ..ExecutorConfig::default()
        };
        let report = execute(&spec, &plan, &AStarPlanner::default(), &cfg);
        // Growth of 10%/phase must either complete (possibly after
        // replanning) or abort with an explicit infeasibility reason.
        assert!(report.completed || report.abort_reason.is_some());
    }

    #[test]
    fn surge_mid_migration_is_survivable_with_replanning() {
        let (spec, plan) = plan_and_spec();
        let cfg = ExecutorConfig {
            surges: vec![SurgeEvent::on_class(1, 3, 1.3, DemandClass::RswToRsw)],
            ..ExecutorConfig::default()
        };
        let report = execute(&spec, &plan, &AStarPlanner::default(), &cfg);
        assert!(report.completed || report.abort_reason.is_some());
        if report.completed {
            assert!(report.phases.len() >= plan.num_phases());
        }
    }

    #[test]
    fn repeated_push_failures_abort_with_reason() {
        let (spec, plan) = plan_and_spec();
        let cfg = ExecutorConfig {
            failure_prob: 1.0,
            max_retries: 2,
            ..ExecutorConfig::default()
        };
        let report = execute(&spec, &plan, &AStarPlanner::default(), &cfg);
        assert!(!report.completed);
        assert!(report.abort_reason.unwrap().contains("push failed"));
    }

    #[test]
    fn occasional_failures_just_cost_attempts() {
        let (spec, plan) = plan_and_spec();
        let cfg = ExecutorConfig {
            failure_prob: 0.3,
            max_retries: 50,
            seed: 5,
            ..ExecutorConfig::default()
        };
        let report = execute(&spec, &plan, &AStarPlanner::default(), &cfg);
        assert!(report.completed, "{:?}", report.abort_reason);
        assert!(report.phases.iter().any(|p| p.attempts >= 1));
    }

    #[test]
    fn external_maintenance_is_recorded() {
        let (spec, plan) = plan_and_spec();
        let cfg = ExecutorConfig {
            external_maintenance_prob: 1.0,
            ..ExecutorConfig::default()
        };
        let report = execute(&spec, &plan, &AStarPlanner::default(), &cfg);
        assert!(report.phases.iter().all(|p| p.external_maintenance));
    }

    #[test]
    fn report_serializes() {
        let (spec, plan) = plan_and_spec();
        let report = execute(
            &spec,
            &plan,
            &AStarPlanner::default(),
            &ExecutorConfig::default(),
        );
        let json = serde_json::to_string(&report).unwrap();
        let back: ExecutionReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.completed, report.completed);
        assert_eq!(back.replans, report.replans);
        assert_eq!(back.phases.len(), report.phases.len());
        for (a, b) in back.phases.iter().zip(&report.phases) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.safe, b.safe);
            // serde_json's default float parser is not exact-roundtrip;
            // utilizations only need to survive within float noise.
            assert!((a.realized_max_utilization - b.realized_max_utilization).abs() < 1e-12);
        }
    }
}
