//! Migration plans: ordered action sequences and their validation.
//!
//! A plan is the action sequence `L` of the formulation, at operation-block
//! granularity. Consecutive same-type steps form one *phase* — the unit
//! operators execute in parallel and the unit the EDP-Lite pipeline receives
//! ("Klotski returns an ordered list of topology phases. Each phase
//! corresponds to one migration step", §5).

use crate::action::ActionTypeId;
use crate::blocks::BlockId;
use crate::compact::CompactState;
use crate::cost::CostModel;
use crate::migration::MigrationSpec;
use crate::satcheck::{EscMode, SatChecker};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One block-level action of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanStep {
    /// Action type executed.
    pub kind: ActionTypeId,
    /// Operation block operated.
    pub block: BlockId,
}

/// A run of consecutive same-type steps, executed in parallel by operators.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanPhase {
    /// The phase's action type.
    pub kind: ActionTypeId,
    /// Blocks operated in this phase, in order.
    pub blocks: Vec<BlockId>,
}

/// An ordered migration plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationPlan {
    steps: Vec<PlanStep>,
}

impl MigrationPlan {
    /// Wraps a step sequence.
    pub fn new(steps: Vec<PlanStep>) -> Self {
        Self { steps }
    }

    /// The block-level steps.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// Number of block-level steps `|L|`.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of serial phases (the α = 0 cost, Eq. 1).
    pub fn num_phases(&self) -> usize {
        self.phases().len()
    }

    /// Groups consecutive same-type steps into phases.
    pub fn phases(&self) -> Vec<PlanPhase> {
        let mut phases: Vec<PlanPhase> = Vec::new();
        for step in &self.steps {
            match phases.last_mut() {
                Some(p) if p.kind == step.kind => p.blocks.push(step.block),
                _ => phases.push(PlanPhase {
                    kind: step.kind,
                    blocks: vec![step.block],
                }),
            }
        }
        phases
    }

    /// Cost of the plan under a cost model (Eq. 1 / Eq. 9 generalization).
    pub fn cost(&self, model: &CostModel) -> f64 {
        let types: Vec<ActionTypeId> = self.steps.iter().map(|s| s.kind).collect();
        model.sequence_cost(&types)
    }
}

impl fmt::Display for MigrationPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, phase) in self.phases().iter().enumerate() {
            writeln!(
                f,
                "phase {}: {} x{} ({:?})",
                i + 1,
                phase.kind,
                phase.blocks.len(),
                phase.blocks.iter().map(|b| b.0).collect::<Vec<_>>()
            )?;
        }
        Ok(())
    }
}

/// Why a plan failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanViolation {
    /// A block appears zero or multiple times, or an unknown block appears
    /// (Eq. 2–3 availability constraints).
    Availability(String),
    /// Blocks of one type are not consumed in canonical order, so the
    /// compact representation would not describe the replayed states.
    NonCanonicalOrder { step: usize },
    /// An intermediate state violates the demand or port constraints.
    UnsafeState { step: usize },
    /// The final state is not the migration target.
    WrongTarget,
}

impl fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanViolation::Availability(why) => write!(f, "availability violated: {why}"),
            PlanViolation::NonCanonicalOrder { step } => {
                write!(f, "non-canonical block order at step {step}")
            }
            PlanViolation::UnsafeState { step } => {
                write!(f, "constraints violated after step {step}")
            }
            PlanViolation::WrongTarget => write!(f, "plan does not reach the target topology"),
        }
    }
}

impl std::error::Error for PlanViolation {}

/// Replays `plan` over `spec`, verifying Eq. 2–6 at every intermediate state
/// and that the final state is the target. This is the independent oracle
/// used by tests and by operators before handing a plan to deployment.
pub fn validate_plan(spec: &MigrationSpec, plan: &MigrationPlan) -> Result<(), PlanViolation> {
    // Eq. 2-3: every block exactly once.
    let mut seen = vec![false; spec.num_blocks()];
    for step in plan.steps() {
        let idx = step.block.index();
        if idx >= seen.len() {
            return Err(PlanViolation::Availability(format!(
                "unknown block {}",
                step.block
            )));
        }
        if seen[idx] {
            return Err(PlanViolation::Availability(format!(
                "block {} operated twice",
                step.block
            )));
        }
        if spec.blocks[idx].kind != step.kind {
            return Err(PlanViolation::Availability(format!(
                "block {} is not of type {}",
                step.block, step.kind
            )));
        }
        seen[idx] = true;
    }
    if !seen.iter().all(|&s| s) {
        return Err(PlanViolation::Availability(
            "some blocks never operated".into(),
        ));
    }

    // Replay with satisfiability checking at every state (Algorithm 1/2
    // check every visited state).
    let mut checker = SatChecker::new(spec, EscMode::Off);
    let mut state = spec.initial.clone();
    let mut v = CompactState::origin(spec.num_types());
    for (i, step) in plan.steps().iter().enumerate() {
        // Canonical order: the step's block must be the next unconsumed
        // block of its type.
        let expected = spec.blocks_by_type[step.kind.index()]
            .get(v.count(step.kind) as usize)
            .copied();
        if expected != Some(step.block) {
            return Err(PlanViolation::NonCanonicalOrder { step: i });
        }
        spec.apply_next(&mut state, &v, step.kind);
        v = v.advanced(step.kind);
        if !checker.check(spec, &v, &state, Some(step.kind)) {
            return Err(PlanViolation::UnsafeState { step: i });
        }
    }

    if !v.is_target(&spec.target_counts) {
        return Err(PlanViolation::WrongTarget);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::{MigrationBuilder, MigrationOptions};
    use klotski_topology::presets::{self, PresetId};

    fn spec() -> MigrationSpec {
        MigrationBuilder::hgrid_v1_to_v2(&presets::build(PresetId::A), &MigrationOptions::default())
            .unwrap()
    }

    /// Hand-built alternating plan: drain g0, undrain g0', drain g1, ...
    fn alternating(spec: &MigrationSpec) -> MigrationPlan {
        let drains = &spec.blocks_by_type[0];
        let undrains = &spec.blocks_by_type[1];
        let mut steps = Vec::new();
        for i in 0..drains.len().max(undrains.len()) {
            if i < drains.len() {
                steps.push(PlanStep {
                    kind: ActionTypeId(0),
                    block: drains[i],
                });
            }
            if i < undrains.len() {
                steps.push(PlanStep {
                    kind: ActionTypeId(1),
                    block: undrains[i],
                });
            }
        }
        MigrationPlan::new(steps)
    }

    #[test]
    fn phases_group_consecutive_types() {
        let plan = MigrationPlan::new(vec![
            PlanStep {
                kind: ActionTypeId(0),
                block: BlockId(0),
            },
            PlanStep {
                kind: ActionTypeId(0),
                block: BlockId(1),
            },
            PlanStep {
                kind: ActionTypeId(1),
                block: BlockId(2),
            },
            PlanStep {
                kind: ActionTypeId(0),
                block: BlockId(3),
            },
        ]);
        let phases = plan.phases();
        assert_eq!(plan.num_phases(), 3);
        assert_eq!(phases[0].blocks.len(), 2);
        assert_eq!(phases[1].blocks, vec![BlockId(2)]);
        assert_eq!(plan.cost(&CostModel::default()), 3.0);
        assert!((plan.cost(&CostModel::new(0.5)) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn planner_output_validates() {
        use crate::planner::Planner;
        let spec = spec();
        let plan = crate::planner::AStarPlanner::default()
            .plan(&spec)
            .unwrap()
            .plan;
        validate_plan(&spec, &plan).unwrap();
    }

    #[test]
    fn duplicate_block_rejected() {
        let spec = spec();
        let mut plan = alternating(&spec);
        let dup = plan.steps()[0];
        let mut steps = plan.steps().to_vec();
        steps[1] = dup;
        plan = MigrationPlan::new(steps);
        assert!(matches!(
            validate_plan(&spec, &plan),
            Err(PlanViolation::Availability(_))
        ));
    }

    #[test]
    fn incomplete_plan_rejected() {
        let spec = spec();
        let plan = MigrationPlan::new(alternating(&spec).steps()[..2].to_vec());
        assert!(matches!(
            validate_plan(&spec, &plan),
            Err(PlanViolation::Availability(_))
        ));
    }

    #[test]
    fn unsafe_all_drains_first_rejected() {
        let spec = spec();
        // Drain every v1 grid before any v2 undrain: violates theta.
        let mut steps = Vec::new();
        for &b in &spec.blocks_by_type[0] {
            steps.push(PlanStep {
                kind: ActionTypeId(0),
                block: b,
            });
        }
        for &b in &spec.blocks_by_type[1] {
            steps.push(PlanStep {
                kind: ActionTypeId(1),
                block: b,
            });
        }
        let plan = MigrationPlan::new(steps);
        assert!(matches!(
            validate_plan(&spec, &plan),
            Err(PlanViolation::UnsafeState { .. })
        ));
    }

    #[test]
    fn non_canonical_order_rejected() {
        let spec = spec();
        let mut steps = alternating(&spec).steps().to_vec();
        // Swap the two drain steps: same multiset, wrong canonical order.
        let drain_positions: Vec<usize> = steps
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == ActionTypeId(0))
            .map(|(i, _)| i)
            .collect();
        steps.swap(drain_positions[0], drain_positions[1]);
        assert!(matches!(
            validate_plan(&spec, &MigrationPlan::new(steps)),
            Err(PlanViolation::NonCanonicalOrder { .. })
        ));
    }

    #[test]
    fn display_shows_phases() {
        let spec = spec();
        let plan = alternating(&spec);
        let shown = plan.to_string();
        assert!(shown.contains("phase 1"));
        assert!(shown.lines().count() == plan.num_phases());
    }
}
