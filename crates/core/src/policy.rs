//! Organization policy: deriving operation blocks from symmetry + locality
//! (§4.1, §5).
//!
//! The migration builders in [`crate::migration`] group by the topology's
//! structural units directly (grids, plane groups, EB homes). This module
//! implements the derivation the paper actually describes — compute Janus
//! symmetry blocks, then merge blocks that share a *locality key* into one
//! operation block — and verifies that on grid-structured layers the
//! derivation reproduces the structural grouping. It is also the extension
//! point for topologies whose natural units are not known a priori.

use crate::blocks::symmetry_blocks;
use klotski_topology::{SwitchId, Topology};
use std::collections::BTreeMap;

/// A locality key: switches whose keys match may be operated together with
/// little extra cost and little safety impact (§4.1).
pub type LocalityKey = (u16, u16, u16);

/// Locality by HGRID grid: FA sub-switches of one grid sit in one room row.
pub fn grid_locality(topo: &Topology, s: SwitchId) -> LocalityKey {
    let sw = topo.switch(s);
    (sw.dc.0, sw.grid.map(|g| g.0).unwrap_or(u16::MAX), 0)
}

/// Locality by (datacenter, plane): SSWs of one plane share rows.
pub fn plane_locality(topo: &Topology, s: SwitchId) -> LocalityKey {
    let sw = topo.switch(s);
    (sw.dc.0, sw.plane.map(|p| p.0).unwrap_or(u16::MAX), 0)
}

/// Derives operation-block switch groups for `candidates`:
/// 1. partition into symmetry blocks (equivalent switches, after Janus);
/// 2. merge symmetry blocks whose members share one locality key.
///
/// Returns groups ordered by locality key; each group's switches keep
/// symmetry-block order. Blocks whose members straddle locality keys are
/// assigned by their first member (generators never produce such blocks).
pub fn derive_groups(
    topo: &Topology,
    candidates: &[SwitchId],
    locality: impl Fn(&Topology, SwitchId) -> LocalityKey,
) -> Vec<Vec<SwitchId>> {
    let blocks = symmetry_blocks(topo, candidates);
    let mut merged: BTreeMap<LocalityKey, Vec<SwitchId>> = BTreeMap::new();
    for block in blocks {
        let key = locality(topo, block[0]);
        merged.entry(key).or_default().extend(block);
    }
    merged.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_topology::presets::{self, PresetId};

    #[test]
    fn derivation_reproduces_grid_grouping() {
        // The §5 policy: "one grid contains multiple near symmetry blocks
        // and is set as one operation block."
        let preset = presets::build(PresetId::A);
        let topo = &preset.topology;
        let candidates = preset.handles.hgrid_v1_switches();
        let derived = derive_groups(topo, &candidates, grid_locality);
        let expected: Vec<Vec<SwitchId>> = (0..preset.handles.hgrid_v1.num_grids())
            .map(|g| preset.handles.hgrid_v1.grid_switches(g))
            .collect();
        assert_eq!(derived.len(), expected.len());
        for (d, e) in derived.iter().zip(&expected) {
            let mut ds = d.clone();
            let mut es = e.clone();
            ds.sort_unstable();
            es.sort_unstable();
            assert_eq!(ds, es);
        }
    }

    #[test]
    fn symmetry_blocks_alone_are_tiny() {
        // The paper's observation driving the whole design: "each symmetry
        // block consists of at most two switches for our three real-world
        // migration types" — merging by locality is what prunes the space.
        let preset = presets::build(PresetId::B);
        let topo = &preset.topology;
        let candidates = preset.handles.hgrid_v1_switches();
        let blocks = symmetry_blocks(topo, &candidates);
        let largest = blocks.iter().map(|b| b.len()).max().unwrap();
        assert!(
            largest <= 2,
            "symmetry blocks should hold at most 2 switches, got {largest}"
        );
        let merged = derive_groups(topo, &candidates, grid_locality);
        assert!(
            merged.len() < blocks.len(),
            "locality merge must actually prune"
        );
    }

    #[test]
    fn plane_locality_groups_ssws_by_plane() {
        let preset = presets::build_for_bench(PresetId::ESsw);
        let topo = &preset.topology;
        let v1 = &preset.handles.fabrics[0].ssws;
        let flat: Vec<SwitchId> = v1.iter().flatten().copied().collect();
        let derived = derive_groups(topo, &flat, plane_locality);
        assert_eq!(derived.len(), v1.len(), "one group per plane");
        for group in &derived {
            let planes: std::collections::HashSet<_> =
                group.iter().map(|&s| topo.switch(s).plane).collect();
            assert_eq!(planes.len(), 1);
        }
    }

    #[test]
    fn derivation_covers_every_candidate_exactly_once() {
        let preset = presets::build(PresetId::A);
        let topo = &preset.topology;
        let candidates = preset.handles.hgrid_v2_switches();
        let derived = derive_groups(topo, &candidates, grid_locality);
        let mut all: Vec<SwitchId> = derived.into_iter().flatten().collect();
        all.sort_unstable();
        let mut expected = candidates.clone();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }
}
