//! The ordering-agnostic compact topology representation (§4.2).
//!
//! Definition 1 of the paper: two search states are *equivalent* when they
//! share the same network topology. Because blocks of one action type are
//! consumed in a fixed canonical order (Algorithm 2's `GetBlock` returns the
//! first unfinished block of the requested type), the intermediate topology
//! is a pure function of *how many* actions of each type finished — so a
//! state is represented by the vector `V = (v_i)` of per-type finished-action
//! counts. This collapses every interleaving with the same counts into a
//! single satisfiability lookup.

use crate::action::ActionTypeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-action-type finished counts, `V = (v_i)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CompactState {
    counts: Vec<u16>,
}

impl CompactState {
    /// The origin state: nothing finished, for `num_types` action types.
    pub fn origin(num_types: usize) -> Self {
        Self {
            counts: vec![0; num_types],
        }
    }

    /// Builds directly from counts.
    pub fn from_counts(counts: Vec<u16>) -> Self {
        Self { counts }
    }

    /// Count of finished actions of type `a`.
    #[inline]
    pub fn count(&self, a: ActionTypeId) -> u16 {
        self.counts[a.index()]
    }

    /// Number of action types.
    #[inline]
    pub fn num_types(&self) -> usize {
        self.counts.len()
    }

    /// Total finished actions `Σ v_i`.
    #[inline]
    pub fn total(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }

    /// Raw counts slice.
    #[inline]
    pub fn counts(&self) -> &[u16] {
        &self.counts
    }

    /// Successor state after one more action of type `a`.
    pub fn advanced(&self, a: ActionTypeId) -> Self {
        let mut next = self.clone();
        next.counts[a.index()] += 1;
        next
    }

    /// Predecessor state before the last action of type `a`
    /// (Eq. 8: `v*_a = v_a − 1`). Returns `None` if `v_a` is zero.
    pub fn receded(&self, a: ActionTypeId) -> Option<Self> {
        if self.counts[a.index()] == 0 {
            return None;
        }
        let mut prev = self.clone();
        prev.counts[a.index()] -= 1;
        Some(prev)
    }

    /// True when every count matches the target's.
    pub fn is_target(&self, target: &CompactState) -> bool {
        self == target
    }

    /// Componentwise `<=` against the target (sanity invariant: the search
    /// never overshoots a type's block supply).
    pub fn within(&self, target: &CompactState) -> bool {
        self.counts.iter().zip(&target.counts).all(|(a, b)| a <= b)
    }

    /// Per-type remaining counts against a target.
    pub fn remaining(&self, target: &CompactState) -> Vec<u16> {
        self.counts
            .iter()
            .zip(&target.counts)
            .map(|(done, all)| all - done)
            .collect()
    }

    /// Mixed-radix dense index of this state within the box `[0, target]`,
    /// used by the DP planner's dense tables.
    pub fn dense_index(&self, target: &CompactState) -> usize {
        let mut idx = 0usize;
        for (i, &v) in self.counts.iter().enumerate() {
            idx = idx * (target.counts[i] as usize + 1) + v as usize;
        }
        idx
    }

    /// Size of the dense box `Π (v*_i + 1)` for a target state, saturating
    /// at `usize::MAX` (the DP planner refuses oversized boxes).
    pub fn box_size(target: &CompactState) -> usize {
        target
            .counts
            .iter()
            .fold(1usize, |acc, &v| acc.saturating_mul(v as usize + 1))
    }
}

impl fmt::Display for CompactState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn origin_is_zero() {
        let v = CompactState::origin(3);
        assert_eq!(v.total(), 0);
        assert_eq!(v.num_types(), 3);
        assert_eq!(v.to_string(), "(0,0,0)");
    }

    #[test]
    fn advance_and_recede_are_inverse() {
        let v = CompactState::origin(2).advanced(ActionTypeId(1));
        assert_eq!(v.count(ActionTypeId(1)), 1);
        assert_eq!(v.receded(ActionTypeId(1)).unwrap(), CompactState::origin(2));
        assert_eq!(v.receded(ActionTypeId(0)), None);
    }

    #[test]
    fn target_and_within() {
        let target = CompactState::from_counts(vec![2, 1]);
        let mid = CompactState::from_counts(vec![1, 1]);
        assert!(mid.within(&target));
        assert!(!mid.is_target(&target));
        assert!(target.is_target(&target));
        assert_eq!(mid.remaining(&target), vec![1, 0]);
        let over = CompactState::from_counts(vec![3, 0]);
        assert!(!over.within(&target));
    }

    #[test]
    fn dense_index_is_a_bijection_over_the_box() {
        let target = CompactState::from_counts(vec![2, 3, 1]);
        let size = CompactState::box_size(&target);
        assert_eq!(size, 3 * 4 * 2);
        let mut seen = vec![false; size];
        for a in 0..=2u16 {
            for b in 0..=3u16 {
                for c in 0..=1u16 {
                    let idx = CompactState::from_counts(vec![a, b, c]).dense_index(&target);
                    assert!(idx < size);
                    assert!(!seen[idx], "collision at {idx}");
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn box_size_saturates() {
        let huge = CompactState::from_counts(vec![u16::MAX; 8]);
        assert_eq!(CompactState::box_size(&huge), usize::MAX);
    }

    proptest! {
        /// Equivalence-by-counts: any permutation of the same action multiset
        /// reaches the same compact state (Definition 1 of the paper).
        #[test]
        fn prop_order_does_not_matter(seq in proptest::collection::vec(0u8..4, 0..30)) {
            let mut forward = CompactState::origin(4);
            for &a in &seq {
                forward = forward.advanced(ActionTypeId(a));
            }
            let mut reversed = CompactState::origin(4);
            for &a in seq.iter().rev() {
                reversed = reversed.advanced(ActionTypeId(a));
            }
            let mut sorted_seq = seq.clone();
            sorted_seq.sort_unstable();
            let mut sorted = CompactState::origin(4);
            for &a in &sorted_seq {
                sorted = sorted.advanced(ActionTypeId(a));
            }
            prop_assert_eq!(&forward, &reversed);
            prop_assert_eq!(&forward, &sorted);
            prop_assert_eq!(forward.total(), seq.len());
        }

        #[test]
        fn prop_dense_index_within_bounds(
            counts in proptest::collection::vec(0u16..5, 1..5)
        ) {
            let target = CompactState::from_counts(counts.clone());
            let idx = target.dense_index(&target);
            prop_assert_eq!(idx, CompactState::box_size(&target) - 1);
            let origin = CompactState::origin(counts.len());
            prop_assert_eq!(origin.dense_index(&target), 0);
        }
    }
}
