//! Migration specifications: the full problem instance handed to planners.
//!
//! A [`MigrationSpec`] bundles the union topology, the initial activation
//! state, the operation blocks with their action types, the demand matrix,
//! and the constraint parameters (θ, port checking, funneling headroom).
//! [`MigrationBuilder`] constructs specs for the paper's three production
//! migration types (§2.4) from a topology preset, applying the organization
//! policy of §5:
//!
//! - **HGRID v1→v2**: one operation block per grid (Figure 5); drain v1
//!   grids, undrain v2 grids.
//! - **SSW forklift**: each plane's SSWs split into a few blocks; drain v1
//!   SSW groups, undrain their v2 twins.
//! - **DMAG**: drain the direct FAUU–EB circuit bundles grouped by EB,
//!   undrain the MA groups homed under each EB.
//!
//! The `block_scale` option merges (×<1) or splits (×>1) the default blocks
//! for the Figure 11 sweep.

use crate::action::{ActionKind, ActionTable, ActionTypeId, BlockClass, OpType};
use crate::blocks::{merge_groups, split_even, BlockId, OperationBlock};
use crate::compact::CompactState;
use crate::error::PlanError;
use crate::space::SpaceModel;
use klotski_routing::{
    evaluate_policy, scale_to_target_utilization_on, FunnelingModel, SplitPolicy,
};
use klotski_topology::{
    presets::Preset, CircuitId, Generation, NetState, SwitchId, SwitchRole, Topology,
};
use klotski_traffic::{generate, DemandGenConfig, DemandMatrix, EnsembleSpec};
use std::sync::Arc;

/// The three production migration types of §2.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MigrationType {
    /// Replace the FA layer's hardware generation (Figure 3a).
    HgridV1V2,
    /// Forklift-upgrade all SSWs of one datacenter (Figure 3b).
    SswForklift,
    /// Insert the MA (DMAG) layer between FAUUs and EBs (Figure 3c).
    Dmag,
}

impl MigrationType {
    /// True when the migration changes the topology's structure (adds a
    /// layer) rather than swapping hardware in place. MRC and Janus cannot
    /// plan these (§6.3).
    pub fn changes_topology(self) -> bool {
        matches!(self, MigrationType::Dmag)
    }
}

impl std::fmt::Display for MigrationType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MigrationType::HgridV1V2 => "hgrid-v1-to-v2",
            MigrationType::SswForklift => "ssw-forklift",
            MigrationType::Dmag => "dmag",
        })
    }
}

/// Tunables for building a migration spec.
#[derive(Debug, Clone)]
pub struct MigrationOptions {
    /// Utilization bound θ (Eq. 5). Default 0.75 (§6.1).
    pub theta: f64,
    /// Demand generator parameters.
    pub demand_cfg: DemandGenConfig,
    /// Calibrated initial utilization of the migrated layer, as a fraction
    /// of capacity. Sized so that draining roughly half of the old
    /// generation saturates θ, which is what forces plans to interleave.
    pub initial_layer_utilization: f64,
    /// Operation-block scale factor: 1.0 = the §5 default policy, <1 merges
    /// blocks, >1 splits them (Figure 11).
    pub block_scale: f64,
    /// How many operation blocks each SSW plane splits into (§5: "We split
    /// SSWs on a plane into several operation blocks").
    pub ssw_groups_per_plane: usize,
    /// Traffic-funneling headroom model (§7.2). Disabled by default to match
    /// the evaluation; the executor examples enable it.
    pub funneling: FunnelingModel,
    /// Whether to enforce the port constraints (Eq. 6).
    pub check_ports: bool,
    /// Derive realistic per-switch port budgets from the migration itself
    /// (see [`MigrationOptions::port_headroom`]). When false, the preset's
    /// static budgets are used as-is.
    pub auto_ports: bool,
    /// Fraction of the old↔new overlap each shared switch can host
    /// transiently. Chassis are sized for the old world, the new world, and
    /// a bounded overlap — not for both generations fully cabled at once.
    /// Smaller values force more interleaving between drains and undrains.
    pub port_headroom: f64,
    /// Flow-split policy override. `None` uses the per-migration-type
    /// default: plain ECMP (§5) for in-place swaps, WCMP for DMAG — the
    /// backbone side of a DMAG migration runs centralized traffic
    /// engineering (§2.4), which capacity-proportional splitting stands in
    /// for.
    pub split: Option<SplitPolicy>,
    /// Raise the capacity of circuits outside the migration scope until
    /// they carry their endpoint-state loads with headroom (a working
    /// production network satisfies this by definition; synthetic
    /// generators must be made to).
    pub normalize_capacity: bool,
    /// Transient floor-space slack as a fraction of the old hardware's
    /// footprint (§2.4/§7.2: new hardware goes in the old hardware's
    /// location; only a limited extra footprint supports the transient).
    /// Applies to in-place swaps (HGRID, SSW forklift); layer insertions
    /// (DMAG) get their own racks and carry no space model.
    pub space_headroom: f64,
    /// Execution lanes for parallel satisfiability evaluation. Defaults to
    /// the machine's available parallelism; `1` reproduces the sequential
    /// checker exactly (results are bit-identical at every thread count —
    /// only wall-clock differs).
    pub threads: usize,
    /// Delta-aware incremental satisfiability: planners hand the checker the
    /// parent state each child was expanded from, and routing re-runs only
    /// for destinations whose paths a block's circuit toggles can touch.
    /// Verdicts and loads stay bit-identical to full evaluation; disable to
    /// fall back to from-scratch routing on every check.
    pub incremental: bool,
    /// Maximum number of entries retained in the evaluated-state cache
    /// (ESC); oldest entries are evicted FIFO beyond this. The default is
    /// generous — far above what any preset search visits — so eviction only
    /// matters for deliberately capped memory budgets.
    pub esc_cache_cap: usize,
    /// Expansion interval between `astar.progress` / `dp.progress` trace
    /// events. The default ([`DEFAULT_PROGRESS_EVERY`]) is frequent enough
    /// to watch a long search move and rare enough to be invisible in the
    /// profile; live SSE streams and tests dial it down for finer-grained
    /// feedback. Clamped to ≥ 1.
    pub progress_every: u64,
    /// Traffic-ensemble specification: when set, every satisfiability
    /// verdict is the AND over the realized ensemble (the calibrated base
    /// forecast plus K−1 EWMA/surge variants, seeded and deduplicated).
    /// `None` checks the single planning matrix, exactly as before.
    pub ensemble: Option<EnsembleSpec>,
}

/// Default planner progress-event interval, in expansions.
pub const DEFAULT_PROGRESS_EVERY: u64 = 4096;

impl Default for MigrationOptions {
    fn default() -> Self {
        Self {
            theta: 0.75,
            demand_cfg: DemandGenConfig::default(),
            initial_layer_utilization: 0.42,
            block_scale: 1.0,
            ssw_groups_per_plane: 3,
            funneling: FunnelingModel::disabled(),
            check_ports: true,
            auto_ports: true,
            port_headroom: 0.4,
            split: None,
            normalize_capacity: true,
            space_headroom: 0.2,
            threads: klotski_parallel::default_lanes(),
            incremental: true,
            esc_cache_cap: 1 << 20,
            progress_every: DEFAULT_PROGRESS_EVERY,
            ensemble: None,
        }
    }
}

/// A complete migration planning instance.
#[derive(Debug, Clone)]
pub struct MigrationSpec {
    /// Instance name (topology + migration type).
    pub name: String,
    /// Which of the §2.4 migration types this is.
    pub migration_type: MigrationType,
    /// The union graph.
    pub topology: Arc<Topology>,
    /// Forecasted demand set `D` — the base (index-0) ensemble matrix.
    pub demands: DemandMatrix,
    /// Extra ensemble matrices (indices 1..K), sharing `demands`' exact
    /// endpoint structure — only the rates differ. Empty when no ensemble
    /// is configured; satisfiability is then single-matrix.
    pub extra_demands: Vec<DemandMatrix>,
    /// Human-readable labels for all K ensemble matrices (index-aligned,
    /// `ensemble_labels[0]` = base). Empty when no ensemble.
    pub ensemble_labels: Vec<String>,
    /// The ensemble specification the matrices were realized from, kept so
    /// residual (replanning) instances re-realize against updated demand.
    pub ensemble: Option<EnsembleSpec>,
    /// Activation state before any action.
    pub initial: NetState,
    /// All operation blocks (`S_opt` grouped by the organization policy).
    pub blocks: Vec<OperationBlock>,
    /// The action-type set `A`.
    pub actions: ActionTable,
    /// Canonical per-type block order: `blocks_by_type[a][i]` is the i-th
    /// block consumed when the (i+1)-th action of type `a` executes.
    pub blocks_by_type: Vec<Vec<BlockId>>,
    /// Target compact state: every count at its type's block total.
    pub target_counts: CompactState,
    /// Utilization bound θ.
    pub theta: f64,
    /// Funneling headroom model.
    pub funneling: FunnelingModel,
    /// Whether Eq. 6 port constraints are enforced.
    pub check_ports: bool,
    /// Space/power footprint model (§7.2); `None` for layer insertions.
    pub space: Option<SpaceModel>,
    /// Flow-split policy the constraints are evaluated under.
    pub split: SplitPolicy,
    /// Execution lanes for parallel satisfiability evaluation (≥ 1).
    pub threads: usize,
    /// Whether checkers evaluate incrementally from the parent state.
    pub incremental: bool,
    /// Entry cap for the evaluated-state cache (≥ 1).
    pub esc_cache_cap: usize,
    /// Planner progress-event interval, expansions (≥ 1).
    pub progress_every: u64,
}

impl MigrationSpec {
    /// Number of operation blocks (block-level actions `|L|`).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of action types `|A|`.
    pub fn num_types(&self) -> usize {
        self.actions.len()
    }

    /// Switch-level action count (Table 3's "Actions" column).
    pub fn num_switch_actions(&self) -> usize {
        self.blocks.iter().map(|b| b.action_weight()).sum()
    }

    /// The block consumed by the `idx`-th action of type `a`.
    pub fn block_for(&self, a: ActionTypeId, idx: u16) -> &OperationBlock {
        let bid = self.blocks_by_type[a.index()][idx as usize];
        &self.blocks[bid.index()]
    }

    /// True if actions of type `a` drain elements.
    pub fn kind_is_drain(&self, a: ActionTypeId) -> bool {
        self.actions.kind(a).op == OpType::Drain
    }

    /// Applies the next action of type `a` from compact state `v` onto
    /// `state`, returning the block that was operated.
    pub fn apply_next<'a>(
        &'a self,
        state: &mut NetState,
        v: &CompactState,
        a: ActionTypeId,
    ) -> &'a OperationBlock {
        let block = self.block_for(a, v.count(a));
        block.apply(&self.topology, state, self.kind_is_drain(a));
        block
    }

    /// Reconstructs the unique activation state of a compact state by
    /// replaying the canonical block order (Definition 1 of the paper makes
    /// this well-defined).
    pub fn state_for(&self, v: &CompactState) -> NetState {
        let mut state = self.initial.clone();
        for a in self.actions.ids() {
            let drain = self.kind_is_drain(a);
            for i in 0..v.count(a) {
                let block = self.block_for(a, i);
                block.apply(&self.topology, &mut state, drain);
            }
        }
        state
    }

    /// The activation state after all blocks are operated.
    pub fn target_state(&self) -> NetState {
        self.state_for(&self.target_counts)
    }

    /// Builds the *residual* instance after `progress` actions finished:
    /// same topology and constraints, the current activation state as the
    /// new initial state, only the unfinished blocks (re-indexed), and a
    /// fresh demand matrix. This is the §7.1 replanning path: "we re-run the
    /// migration planning with the updated demand during the migration."
    pub fn residual(
        &self,
        progress: &CompactState,
        current: NetState,
        demands: DemandMatrix,
    ) -> MigrationSpec {
        assert!(
            progress.within(&self.target_counts),
            "progress exceeds block supply"
        );
        let mut blocks = Vec::new();
        for a in self.actions.ids() {
            for &bid in &self.blocks_by_type[a.index()][progress.count(a) as usize..] {
                let mut block = self.blocks[bid.index()].clone();
                block.id = BlockId(blocks.len() as u32);
                blocks.push(block);
            }
        }
        let mut blocks_by_type: Vec<Vec<BlockId>> = vec![Vec::new(); self.actions.len()];
        for b in &blocks {
            blocks_by_type[b.kind.index()].push(b.id);
        }
        let target_counts =
            CompactState::from_counts(blocks_by_type.iter().map(|v| v.len() as u16).collect());
        // Re-realize the ensemble against the *updated* demand matrix: the
        // §7.1 replanning path re-forecasts, so its robustness variants must
        // derive from the new forecast, not the stale one. Realization is
        // deterministic in the stored spec's seed.
        let (extra_demands, ensemble_labels) = match &self.ensemble {
            Some(spec) => match spec.realize(&demands) {
                Ok(ens) => (ens.extras().to_vec(), ens.labels().to_vec()),
                Err(_) => (Vec::new(), Vec::new()),
            },
            None => (Vec::new(), Vec::new()),
        };
        MigrationSpec {
            name: format!("{}/residual@{}", self.name, progress),
            migration_type: self.migration_type,
            topology: Arc::clone(&self.topology),
            demands,
            extra_demands,
            ensemble_labels,
            ensemble: self.ensemble.clone(),
            initial: current,
            blocks,
            actions: self.actions.clone(),
            blocks_by_type,
            target_counts,
            theta: self.theta,
            funneling: self.funneling,
            check_ports: self.check_ports,
            space: self.space.as_ref().map(|m| m.residual(progress)),
            split: self.split,
            threads: self.threads,
            incremental: self.incremental,
            esc_cache_cap: self.esc_cache_cap,
            progress_every: self.progress_every,
        }
    }

    /// Validates that the instance is well-posed: the initial and target
    /// worlds must satisfy the constraints.
    pub fn validate(&self) -> Result<(), PlanError> {
        let initial = evaluate_policy(
            &self.topology,
            &self.initial,
            &self.demands,
            self.theta,
            self.split,
        );
        if !initial.satisfied() {
            return Err(PlanError::InitialInfeasible(format!(
                "{} unreachable, max util {:.3}",
                initial.unreachable_demands, initial.report.max_utilization
            )));
        }
        if !self.topology.port_violations(&self.initial).is_empty() {
            return Err(PlanError::InitialInfeasible("port violations".into()));
        }
        let target_state = self.target_state();
        let target = evaluate_policy(
            &self.topology,
            &target_state,
            &self.demands,
            self.theta,
            self.split,
        );
        if !target.satisfied() {
            return Err(PlanError::TargetInfeasible(format!(
                "{} unreachable, max util {:.3}",
                target.unreachable_demands, target.report.max_utilization
            )));
        }
        if !self.topology.port_violations(&target_state).is_empty() {
            return Err(PlanError::TargetInfeasible("port violations".into()));
        }
        Ok(())
    }
}

/// Builds [`MigrationSpec`]s from topology presets.
pub struct MigrationBuilder;

impl MigrationBuilder {
    /// Dispatches on the preset's union contents: DMAG if an MA layer is
    /// embedded, SSW forklift if v2 SSWs are embedded, HGRID otherwise.
    pub fn for_preset(
        preset: &Preset,
        opts: &MigrationOptions,
    ) -> Result<MigrationSpec, PlanError> {
        if preset.handles.ma.is_some() {
            Self::dmag(preset, opts)
        } else if !preset.handles.ssw_v2_switches().is_empty() {
            Self::ssw_forklift(preset, opts)
        } else {
            Self::hgrid_v1_to_v2(preset, opts)
        }
    }

    /// HGRID v1→v2 migration (Figure 3a): drain every v1 grid, undrain every
    /// v2 grid. One operation block per grid (Figure 5), scaled by
    /// `opts.block_scale`.
    pub fn hgrid_v1_to_v2(
        preset: &Preset,
        opts: &MigrationOptions,
    ) -> Result<MigrationSpec, PlanError> {
        let h2 = preset
            .handles
            .hgrid_v2
            .as_ref()
            .ok_or_else(|| PlanError::MissingElements("no v2 HGRID layer in union".into()))?;

        // Natural groups: one per grid, split *vertically* when the block
        // scale asks for finer blocks — each sub-block takes a proportional
        // strided slice of the grid's FADUs and FAUUs. A horizontal split
        // (all FADUs in one sub-block, all FAUUs in another) would create
        // capacity-dead intermediate blocks and deadlock the search.
        let grid_slices =
            |fadus: &[Vec<SwitchId>], fauus: &[Vec<SwitchId>]| -> Vec<Vec<SwitchId>> {
                let parts = if opts.block_scale > 1.0 {
                    opts.block_scale.round() as usize
                } else {
                    1
                };
                let mut groups = Vec::new();
                for (gf, gu) in fadus.iter().zip(fauus) {
                    for part in 0..parts {
                        let mut slice: Vec<SwitchId> =
                            gf.iter().skip(part).step_by(parts).copied().collect();
                        slice.extend(gu.iter().skip(part).step_by(parts).copied());
                        if !slice.is_empty() {
                            groups.push(slice);
                        }
                    }
                }
                if opts.block_scale < 1.0 {
                    merge_groups(&groups, (1.0 / opts.block_scale).round() as usize)
                } else {
                    groups
                }
            };
        let v1_groups = grid_slices(
            &preset.handles.hgrid_v1.fadus,
            &preset.handles.hgrid_v1.fauus,
        );
        let v2_groups = grid_slices(&h2.fadus, &h2.fauus);

        let mut actions = ActionTable::new();
        let drain = actions.intern(ActionKind::new(
            BlockClass::FaGrid,
            Generation::V1,
            OpType::Drain,
        ));
        let undrain = actions.intern(ActionKind::new(
            BlockClass::FaGrid,
            Generation::V2,
            OpType::Undrain,
        ));

        let mut blocks = Vec::new();
        push_switch_blocks(&mut blocks, v1_groups, drain, "drain-fa-v1");
        push_switch_blocks(&mut blocks, v2_groups, undrain, "undrain-fa-v2");

        // Initially the v2 layer is not installed.
        let absent: Vec<SwitchId> = preset.handles.hgrid_v2_switches();
        let space = in_place_space_model(&blocks, &actions, opts.space_headroom);
        finish_spec(
            preset,
            MigrationType::HgridV1V2,
            actions,
            blocks,
            absent,
            vec![],
            Some(space),
            opts,
        )
    }

    /// SSW forklift migration (Figure 3b): upgrade all SSWs of the
    /// forklifted datacenters. Each plane's SSWs split into
    /// `opts.ssw_groups_per_plane` blocks (§5), scaled by `opts.block_scale`.
    pub fn ssw_forklift(
        preset: &Preset,
        opts: &MigrationOptions,
    ) -> Result<MigrationSpec, PlanError> {
        if preset.handles.ssw_v2_switches().is_empty() {
            return Err(PlanError::MissingElements(
                "no v2 SSWs in union graph".into(),
            ));
        }
        let mut v1_groups: Vec<Vec<SwitchId>> = Vec::new();
        let mut v2_groups: Vec<Vec<SwitchId>> = Vec::new();
        for (dc_idx, per_plane_v2) in preset.handles.ssw_v2.iter().enumerate() {
            if per_plane_v2.is_empty() {
                continue;
            }
            let fab = &preset.handles.fabrics[dc_idx];
            for (plane_v1, plane_v2) in fab.ssws.iter().zip(per_plane_v2) {
                v1_groups.extend(split_even(plane_v1, opts.ssw_groups_per_plane));
                v2_groups.extend(split_even(plane_v2, opts.ssw_groups_per_plane));
            }
        }

        let mut actions = ActionTable::new();
        let drain = actions.intern(ActionKind::new(
            BlockClass::Ssw,
            Generation::V1,
            OpType::Drain,
        ));
        let undrain = actions.intern(ActionKind::new(
            BlockClass::Ssw,
            Generation::V2,
            OpType::Undrain,
        ));

        let mut blocks = Vec::new();
        push_switch_blocks(
            &mut blocks,
            scale_groups(&v1_groups, opts.block_scale),
            drain,
            "drain-ssw-v1",
        );
        push_switch_blocks(
            &mut blocks,
            scale_groups(&v2_groups, opts.block_scale),
            undrain,
            "undrain-ssw-v2",
        );

        let absent = preset.handles.ssw_v2_switches();
        let space = in_place_space_model(&blocks, &actions, opts.space_headroom);
        finish_spec(
            preset,
            MigrationType::SswForklift,
            actions,
            blocks,
            absent,
            vec![],
            Some(space),
            opts,
        )
    }

    /// DMAG migration (Figure 3c): drain the direct FAUU–EB circuits and
    /// undrain the MA groups homed under each EB (§5).
    ///
    /// Substitution note: the paper groups the drained circuits by EB,
    /// because the production backbone's centralized traffic engineering
    /// spreads traffic over MA paths as soon as they exist. Under this
    /// repo's hop-count ECMP substrate, direct FAUU–EB paths are strictly
    /// shorter than MA paths, so a per-EB drain order funnels all egress
    /// onto the last surviving EB's circuits — an unavoidable θ violation.
    /// Draining per FAUU *grid* instead makes each grid switch to its MA
    /// paths atomically, preserving the migration's safety structure
    /// without a TE model (documented in DESIGN.md).
    pub fn dmag(preset: &Preset, opts: &MigrationOptions) -> Result<MigrationSpec, PlanError> {
        let ma = preset
            .handles
            .ma
            .as_ref()
            .ok_or_else(|| PlanError::MissingElements("no MA layer in union".into()))?;

        let mut actions = ActionTable::new();
        let drain = actions.intern(ActionKind::new(
            BlockClass::DirectCircuit,
            Generation::V1,
            OpType::Drain,
        ));
        let undrain = actions.intern(ActionKind::new(
            BlockClass::Ma,
            Generation::V1,
            OpType::Undrain,
        ));

        // Direct FAUU->EB circuits, grouped by the FAUU's grid.
        let topo = &preset.topology;
        let hgrid = &preset.handles.hgrid_v1;
        let natural_groups: Vec<Vec<CircuitId>> = (0..hgrid.num_grids())
            .map(|g| {
                hgrid.fauus[g]
                    .iter()
                    .flat_map(|&fu| {
                        topo.neighbors(fu)
                            .iter()
                            .filter(|&&(_, far)| topo.switch(far).role == SwitchRole::Eb)
                            .map(|&(c, _)| c)
                    })
                    .collect()
            })
            .collect();
        let circuit_groups: Vec<Vec<CircuitId>> = scale_groups(&natural_groups, opts.block_scale)
            .into_iter()
            .filter(|g| !g.is_empty())
            .collect();
        let ma_groups: Vec<Vec<SwitchId>> = scale_groups(&ma.mas_by_eb, opts.block_scale)
            .into_iter()
            .filter(|g| !g.is_empty())
            .collect();

        let mut blocks = Vec::new();
        for (i, group) in circuit_groups.iter().enumerate() {
            blocks.push(OperationBlock {
                id: BlockId(blocks.len() as u32),
                kind: drain,
                switches: vec![],
                circuits: group.clone(),
                label: format!("drain-direct-eb{i}"),
            });
        }
        for (i, group) in ma_groups.iter().enumerate() {
            blocks.push(OperationBlock {
                id: BlockId(blocks.len() as u32),
                kind: undrain,
                switches: vec![],
                circuits: vec![],
                label: format!("undrain-ma-eb{i}"),
            });
            let idx = blocks.len() - 1;
            blocks[idx].switches = group.clone();
        }

        let absent = ma.all_mas();
        // DMAG inserts a new layer in its own racks: no in-place space
        // coupling; interleaving is driven by port budgets instead.
        finish_spec(
            preset,
            MigrationType::Dmag,
            actions,
            blocks,
            absent,
            vec![],
            None,
            opts,
        )
    }
}

/// Applies the block-scale factor to natural groups: ≥1 splits each group
/// into `round(scale)` parts, <1 merges `round(1/scale)` consecutive groups.
fn scale_groups<T: Clone>(groups: &[Vec<T>], scale: f64) -> Vec<Vec<T>> {
    assert!(scale > 0.0, "block scale must be positive");
    if (scale - 1.0).abs() < f64::EPSILON {
        return groups.to_vec();
    }
    if scale > 1.0 {
        let parts = scale.round() as usize;
        groups
            .iter()
            .flat_map(|g| split_even(g, parts))
            .filter(|g| !g.is_empty())
            .collect()
    } else {
        let factor = (1.0 / scale).round() as usize;
        merge_groups(groups, factor)
    }
}

/// Appends one switch block per group.
fn push_switch_blocks(
    blocks: &mut Vec<OperationBlock>,
    groups: Vec<Vec<SwitchId>>,
    kind: ActionTypeId,
    label_prefix: &str,
) {
    for (i, group) in groups.into_iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        blocks.push(OperationBlock {
            id: BlockId(blocks.len() as u32),
            kind,
            switches: group,
            circuits: vec![],
            label: format!("{label_prefix}/{i}"),
        });
    }
}

/// Space model for in-place hardware swaps: the old generation's footprint
/// is normalized to 1.0 rack unit; drains free a block's proportional share
/// of it and installs consume a share of the same unit (the new hardware
/// fits exactly where the old one stood, §2.4). The budget allows a
/// transient overshoot of `headroom`.
fn in_place_space_model(
    blocks: &[OperationBlock],
    actions: &ActionTable,
    headroom: f64,
) -> SpaceModel {
    assert!((0.0..=1.0).contains(&headroom), "space headroom in [0, 1]");
    let mut deltas: Vec<Vec<f64>> = vec![Vec::new(); actions.len()];
    let mut totals = vec![0usize; actions.len()];
    for b in blocks {
        totals[b.kind.index()] += b.action_weight();
    }
    for b in blocks {
        let share = b.action_weight() as f64 / totals[b.kind.index()] as f64;
        let signed = if actions.kind(b.kind).op == OpType::Drain {
            -share
        } else {
            share
        };
        deltas[b.kind.index()].push(signed);
    }
    SpaceModel::from_deltas(1.0 + headroom, 1.0, &deltas)
}

/// Shared tail of every builder: initial state, demand calibration, canonical
/// per-type ordering, and well-posedness validation.
#[allow(clippy::too_many_arguments)]
fn finish_spec(
    preset: &Preset,
    migration_type: MigrationType,
    actions: ActionTable,
    blocks: Vec<OperationBlock>,
    initially_absent_switches: Vec<SwitchId>,
    initially_absent_circuits: Vec<CircuitId>,
    space: Option<SpaceModel>,
    opts: &MigrationOptions,
) -> Result<MigrationSpec, PlanError> {
    assert!(!blocks.is_empty(), "migration needs at least one block");
    let split = opts.split.unwrap_or(match migration_type {
        MigrationType::Dmag => SplitPolicy::Wcmp,
        _ => SplitPolicy::Ecmp,
    });
    let mut owned_topology = preset.topology.clone();

    let mut initial = NetState::all_up(&owned_topology);
    for s in initially_absent_switches {
        initial.drain_switch(&owned_topology, s);
    }
    for c in initially_absent_circuits {
        initial.set_circuit(c, false);
    }

    // Target state: apply every block once to the initial state.
    let mut target = initial.clone();
    for b in &blocks {
        let is_drain = actions.kind(b.kind).op == OpType::Drain;
        b.apply(&owned_topology, &mut target, is_drain);
    }

    // Derive realistic port budgets: each switch is sized for
    // max(initial degree, target degree) plus a bounded fraction of the
    // old<->new overlap it will transiently host. This is what makes the
    // Eq. 6 constraints bind mid-migration and force drain/undrain
    // interleaving, matching the §2.3 port narrative.
    if opts.auto_ports {
        assert!(
            (0.0..=1.0).contains(&opts.port_headroom),
            "port headroom must be in [0, 1]"
        );
        for idx in 0..owned_topology.num_switches() {
            let s = SwitchId::from_index(idx);
            let union_deg = owned_topology.degree(s);
            let init_deg = initial.active_degree(&owned_topology, s);
            let tgt_deg = target.active_degree(&owned_topology, s);
            let overlap = (union_deg - init_deg).min(union_deg - tgt_deg);
            // Layer insertions (DMAG) are additive on the *uplink* side:
            // FAUUs ship with spare ports provisioned for the MA layer, so
            // they get the full transient overlap. EBs do not — "we group
            // the MAs/circuits by EBs to release more ports with one
            // action" (§5) — and in-place swaps compete for the same ports
            // everywhere; both get only the configured fraction.
            let headroom = if migration_type == MigrationType::Dmag
                && owned_topology.switch(s).role == SwitchRole::Fauu
            {
                1.0
            } else {
                opts.port_headroom
            };
            let slack = ((headroom * overlap as f64).round() as usize).max(1);
            let ports = (init_deg.max(tgt_deg) + slack).min(u16::MAX as usize) as u16;
            owned_topology.set_max_ports(s, ports);
        }
    }

    // Demands, calibrated so the *migration-affected* circuits — those
    // incident to any operated switch, plus directly operated circuit
    // bundles — start at the configured utilization. Calibrating on an
    // unaffected layer (fabric or backbone) would leave the Eq. 5
    // constraints slack through the whole migration.
    let mut affected_circuit = vec![false; owned_topology.num_circuits()];
    for b in &blocks {
        for &s in &b.switches {
            for &(c, _) in owned_topology.neighbors(s) {
                affected_circuit[c.index()] = true;
            }
        }
        for &c in &b.circuits {
            affected_circuit[c.index()] = true;
        }
    }
    let raw = generate(&owned_topology, &opts.demand_cfg);
    let factor = scale_to_target_utilization_on(
        &owned_topology,
        &initial,
        &raw,
        opts.initial_layer_utilization,
        split,
        |c| affected_circuit[c.index()],
    );

    // Normalize the capacity of circuits *outside* the migration scope so
    // they carry their initial- and target-state loads with headroom. A
    // working production network satisfies this by definition; synthetic
    // generators must be made to. Without it, a hot rack-edge or backbone
    // trunk would mask the constraints the evaluation actually studies.
    if opts.normalize_capacity {
        let mut router = klotski_routing::EcmpRouter::with_policy(&owned_topology, split);
        let mut init_loads = klotski_routing::LoadMap::new(&owned_topology);
        router.route(&owned_topology, &initial, &raw, &mut init_loads);
        let mut tgt_loads = klotski_routing::LoadMap::new(&owned_topology);
        router.route(&owned_topology, &target, &raw, &mut tgt_loads);
        // New hardware is design-sized close to its bound (0.85 theta);
        // circuits outside the migration scope get a wider margin so that
        // legitimate mid-migration traffic shifts never make THEM the
        // binding constraint.
        let ceiling_new = 0.85 * opts.theta;
        let ceiling_unaffected = 0.60 * opts.theta;
        let undrain_blocks = blocks
            .iter()
            .filter(|b| actions.kind(b.kind).op == OpType::Undrain)
            .count()
            .max(1);
        for (idx, &affected) in affected_circuit.iter().enumerate() {
            let c = CircuitId::from_index(idx);
            // The old generation's circuits (affected and live from the
            // start) keep their generator capacity: their mid-migration
            // stress is the object of study. Unaffected circuits are
            // normalized to their worst endpoint-state load; new-hardware
            // circuits (affected but initially absent) are design-sized for
            // the target load they were installed to carry.
            if affected && initial.circuit_usable(&owned_topology, c) {
                // Old-generation circuits keep their capacity (their
                // mid-migration stress is the object of study), but under
                // WCMP they get a routing weight equal to their designed
                // (initial-state) share so neither direction over-attracts
                // during the coexistence window.
                if split == SplitPolicy::Wcmp {
                    let w = factor * init_loads.max_direction(c) / ceiling_new;
                    owned_topology.set_routing_weight(c, w.max(0.01));
                }
                continue;
            }
            let load = factor * init_loads.max_direction(c).max(tgt_loads.max_direction(c));
            let new_hardware = affected;
            let needed = load
                / if new_hardware {
                    ceiling_new
                } else {
                    ceiling_unaffected
                };
            if new_hardware && split == SplitPolicy::Wcmp {
                // Under WCMP the capacity IS the routing weight, so the new
                // layer is sized to its designed (target-state) share, or it
                // would attract traffic it cannot deliver. Fan-in circuits
                // (FAUU->MA) additionally get worst-case concentration
                // allowance: while only one MA group is deployed, a
                // drained grid's whole fan-out funnels over that group.
                let ck = owned_topology.circuit(c);
                let roles = (
                    owned_topology.switch(ck.a).role,
                    owned_topology.switch(ck.b).role,
                );
                let fan_in = matches!(
                    roles,
                    (SwitchRole::Fauu, SwitchRole::Ma) | (SwitchRole::Ma, SwitchRole::Fauu)
                );
                if fan_in {
                    // Physical capacity covers the worst-case concentration
                    // (one live MA group absorbing a whole grid's fan-out).
                    // The WCMP weight is epsilon: MA paths are backup-grade
                    // for a FAUU until its own direct circuits drain, at
                    // which point they carry everything regardless of
                    // weight. This mirrors the production make-before-break
                    // routing configs of §7.1.
                    let allowance = undrain_blocks as f64;
                    owned_topology.set_capacity(c, (needed * allowance).max(1.0));
                    owned_topology.set_routing_weight(c, needed.max(1.0));
                } else {
                    // MA->EB trunks: design share as routing weight, with a
                    // bounded 2x allowance in physical capacity for the
                    // partial-deployment window (few MA groups carrying a
                    // disproportionate share while the rollout catches up).
                    owned_topology.set_capacity(c, (needed * 2.0).max(1.0));
                    owned_topology.set_routing_weight(c, needed.max(0.01));
                }
            } else if new_hardware {
                // New hardware under plain ECMP also gets the 2x
                // partial-deployment allowance: a freshly undrained slice
                // attracts its full per-circuit ECMP share while only part
                // of the new layer's internal paths are up.
                let sized = needed * 2.0;
                if sized > owned_topology.circuit(c).capacity_gbps {
                    owned_topology.set_capacity(c, sized);
                }
            } else if needed > owned_topology.circuit(c).capacity_gbps {
                owned_topology.set_capacity(c, needed);
            }
        }
    }

    let topology = Arc::new(owned_topology);
    let demands = raw.scaled(factor);

    // Realize the traffic ensemble (if configured) against the *calibrated*
    // base matrix, so every variant inherits the utilization calibration.
    // All realized matrices share the base's exact endpoint structure; only
    // rates differ, which is what lets checkers share routing structure.
    let (extra_demands, ensemble_labels) = match &opts.ensemble {
        Some(spec) => {
            let ens = spec
                .realize(&demands)
                .map_err(|e| PlanError::InvalidEnsemble(e.to_string()))?;
            ens.validate_against(topology.num_switches())
                .map_err(|e| PlanError::InvalidEnsemble(e.to_string()))?;
            (ens.extras().to_vec(), ens.labels().to_vec())
        }
        None => (Vec::new(), Vec::new()),
    };

    // Canonical per-type block order = block insertion order.
    let mut blocks_by_type: Vec<Vec<BlockId>> = vec![Vec::new(); actions.len()];
    for b in &blocks {
        blocks_by_type[b.kind.index()].push(b.id);
    }
    let target_counts = CompactState::from_counts(
        blocks_by_type
            .iter()
            .map(|v| u16::try_from(v.len()).expect("more than 65535 blocks of one type"))
            .collect(),
    );

    let spec = MigrationSpec {
        name: format!("{}/{}", preset.topology.name(), migration_type),
        migration_type,
        topology,
        demands,
        extra_demands,
        ensemble_labels,
        ensemble: opts.ensemble.clone(),
        initial,
        blocks,
        actions,
        blocks_by_type,
        target_counts,
        theta: opts.theta,
        funneling: opts.funneling,
        check_ports: opts.check_ports,
        space,
        split,
        threads: opts.threads.max(1),
        incremental: opts.incremental,
        esc_cache_cap: opts.esc_cache_cap.max(1),
        progress_every: opts.progress_every.max(1),
    };
    spec.validate()?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_topology::presets::{self, PresetId};

    fn preset_a() -> Preset {
        presets::build(PresetId::A)
    }

    #[test]
    fn hgrid_spec_builds_and_validates() {
        let spec =
            MigrationBuilder::hgrid_v1_to_v2(&preset_a(), &MigrationOptions::default()).unwrap();
        assert_eq!(spec.migration_type, MigrationType::HgridV1V2);
        assert_eq!(spec.num_types(), 2);
        // 3 v1 grids + 6 v2 grids at default scale.
        assert_eq!(spec.num_blocks(), 9);
        assert_eq!(spec.target_counts.counts(), &[3, 6]);
        // Switch-level actions: 15 v1 + 30 v2 (Table 3's ~50 for topo A).
        assert_eq!(spec.num_switch_actions(), 45);
    }

    #[test]
    fn initial_state_has_v2_absent_and_v1_present() {
        let p = preset_a();
        let spec = MigrationBuilder::hgrid_v1_to_v2(&p, &MigrationOptions::default()).unwrap();
        for s in p.handles.hgrid_v2_switches() {
            assert!(!spec.initial.switch_up(s));
        }
        for s in p.handles.hgrid_v1_switches() {
            assert!(spec.initial.switch_up(s));
        }
    }

    #[test]
    fn target_state_swaps_generations() {
        let p = preset_a();
        let spec = MigrationBuilder::hgrid_v1_to_v2(&p, &MigrationOptions::default()).unwrap();
        let target = spec.target_state();
        for s in p.handles.hgrid_v1_switches() {
            assert!(!target.switch_up(s), "v1 must end drained");
        }
        for s in p.handles.hgrid_v2_switches() {
            assert!(target.switch_up(s), "v2 must end live");
        }
    }

    #[test]
    fn state_for_is_order_agnostic_by_construction() {
        let spec =
            MigrationBuilder::hgrid_v1_to_v2(&preset_a(), &MigrationOptions::default()).unwrap();
        let v = CompactState::from_counts(vec![2, 1]);
        // state_for replays canonically; applying in a different
        // interleaving must land on the same state.
        let canonical = spec.state_for(&v);
        let mut manual = spec.initial.clone();
        let mut progress = CompactState::origin(2);
        for a in [ActionTypeId(1), ActionTypeId(0), ActionTypeId(0)] {
            spec.apply_next(&mut manual, &progress, a);
            progress = progress.advanced(a);
        }
        assert_eq!(canonical, manual);
    }

    #[test]
    fn block_scale_merges_and_splits() {
        let p = preset_a();
        let base = MigrationBuilder::hgrid_v1_to_v2(&p, &MigrationOptions::default()).unwrap();
        let split = MigrationBuilder::hgrid_v1_to_v2(
            &p,
            &MigrationOptions {
                block_scale: 3.0,
                ..MigrationOptions::default()
            },
        )
        .unwrap();
        assert!(split.num_blocks() > base.num_blocks());
        // Same total switch-level work regardless of blocking.
        assert_eq!(split.num_switch_actions(), base.num_switch_actions());
        let merged = MigrationBuilder::hgrid_v1_to_v2(
            &p,
            &MigrationOptions {
                block_scale: 1.0 / 3.0,
                ..MigrationOptions::default()
            },
        );
        // Merging 3 grids into one block may make the plan infeasible
        // (too much capacity down at once) - either outcome is acceptable
        // here; spec construction itself must not panic.
        if let Ok(m) = merged {
            assert!(m.num_blocks() < base.num_blocks());
            assert_eq!(m.num_switch_actions(), base.num_switch_actions());
        }
    }

    #[test]
    fn dmag_spec_builds_with_circuit_bundles() {
        let p = presets::build_for_bench(PresetId::EDmag);
        let spec = MigrationBuilder::for_preset(&p, &MigrationOptions::default()).unwrap();
        assert_eq!(spec.migration_type, MigrationType::Dmag);
        assert!(spec.migration_type.changes_topology());
        // Drain blocks hold circuits, undrain blocks hold MA switches.
        let drain_blocks: Vec<_> = spec
            .blocks
            .iter()
            .filter(|b| spec.kind_is_drain(b.kind))
            .collect();
        assert!(!drain_blocks.is_empty());
        assert!(drain_blocks.iter().all(|b| !b.circuits.is_empty()));
        let undrain_blocks: Vec<_> = spec
            .blocks
            .iter()
            .filter(|b| !spec.kind_is_drain(b.kind))
            .collect();
        assert!(undrain_blocks.iter().all(|b| !b.switches.is_empty()));
    }

    #[test]
    fn forklift_spec_builds() {
        let p = presets::build_for_bench(PresetId::ESsw);
        let spec = MigrationBuilder::for_preset(&p, &MigrationOptions::default()).unwrap();
        assert_eq!(spec.migration_type, MigrationType::SswForklift);
        assert!(!spec.migration_type.changes_topology());
        // 8 planes x 3 groups per plane, both generations.
        assert_eq!(spec.target_counts.counts(), &[24, 24]);
    }

    #[test]
    fn hgrid_spec_rejected_without_v2_layer() {
        let p = presets::build_for_bench(PresetId::EDmag); // no v2 HGRID
        let err = MigrationBuilder::hgrid_v1_to_v2(&p, &MigrationOptions::default()).unwrap_err();
        assert!(matches!(err, PlanError::MissingElements(_)));
    }

    #[test]
    fn calibration_pins_layer_utilization() {
        let spec =
            MigrationBuilder::hgrid_v1_to_v2(&preset_a(), &MigrationOptions::default()).unwrap();
        // Re-derive the utilization of the >= SSW layer on the initial state.
        let topo = &spec.topology;
        let mut router = klotski_routing::EcmpRouter::new(topo);
        let mut loads = klotski_routing::LoadMap::new(topo);
        router.route(topo, &spec.initial, &spec.demands, &mut loads);
        let mut max_util = 0.0_f64;
        for c in topo.circuits() {
            let above = |s: SwitchId| topo.switch(s).role.layer() >= SwitchRole::Ssw.layer();
            if spec.initial.circuit_usable(topo, c.id) && above(c.a) && above(c.b) {
                max_util = max_util.max(loads.utilization(topo, c.id));
            }
        }
        assert!(
            (max_util - MigrationOptions::default().initial_layer_utilization).abs() < 1e-6,
            "calibrated utilization = {max_util}"
        );
    }

    #[test]
    fn full_drain_of_v1_violates_theta() {
        // The calibration must make "drain everything first" unsafe,
        // otherwise the planning problem is trivial.
        let p = preset_a();
        let spec = MigrationBuilder::hgrid_v1_to_v2(&p, &MigrationOptions::default()).unwrap();
        let drained_all_v1 = spec.state_for(&CompactState::from_counts(vec![
            spec.target_counts.counts()[0],
            0,
        ]));
        let out = evaluate_policy(
            &spec.topology,
            &drained_all_v1,
            &spec.demands,
            spec.theta,
            spec.split,
        );
        assert!(
            !out.satisfied(),
            "draining every v1 grid with no v2 up must be unsafe"
        );
    }
}
