//! Strongly-typed identifiers for topology elements.
//!
//! All identifiers are dense indices into the owning [`Topology`]'s element
//! vectors, so lookups are O(1) and id values are stable for the lifetime of
//! the topology. Newtypes keep switch/circuit/DC indices from being mixed up
//! at compile time.
//!
//! [`Topology`]: crate::graph::Topology

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $repr:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $repr);

        impl $name {
            /// Returns the raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw index.
            ///
            /// # Panics
            /// Panics if `index` does not fit the underlying representation.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                assert!(
                    index <= <$repr>::MAX as usize,
                    concat!(stringify!($name), " index overflow: {}"),
                    index
                );
                Self(index as $repr)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of a switch within a [`Topology`](crate::graph::Topology).
    SwitchId,
    u32,
    "sw"
);
define_id!(
    /// Identifier of a circuit (bidirectional link) within a topology.
    CircuitId,
    u32,
    "ckt"
);
define_id!(
    /// Identifier of a datacenter building within a region.
    DcId,
    u16,
    "dc"
);
define_id!(
    /// Identifier of a spine plane within a datacenter fabric.
    PlaneId,
    u16,
    "plane"
);
define_id!(
    /// Identifier of a pod (deployment unit of RSWs + FSWs) within a fabric.
    PodId,
    u16,
    "pod"
);
define_id!(
    /// Identifier of an HGRID grid (group of FADU/FAUU sub-switches).
    GridId,
    u16,
    "grid"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(SwitchId(3).to_string(), "sw3");
        assert_eq!(CircuitId(12).to_string(), "ckt12");
        assert_eq!(DcId(0).to_string(), "dc0");
        assert_eq!(PlaneId(7).to_string(), "plane7");
        assert_eq!(PodId(2).to_string(), "pod2");
        assert_eq!(GridId(1).to_string(), "grid1");
    }

    #[test]
    fn roundtrip_index() {
        let id = SwitchId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    #[should_panic(expected = "index overflow")]
    fn from_index_overflow_panics() {
        let _ = DcId::from_index(usize::MAX);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(SwitchId(1));
        set.insert(SwitchId(1));
        set.insert(SwitchId(2));
        assert_eq!(set.len(), 2);
        assert!(SwitchId(1) < SwitchId(2));
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&SwitchId(9)).unwrap();
        assert_eq!(json, "9");
        let back: SwitchId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, SwitchId(9));
    }
}
