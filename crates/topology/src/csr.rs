//! Flattened CSR (compressed-sparse-row) view of a [`Topology`].
//!
//! Routing hot loops — per-destination BFS, reverse flow sweeps, and the
//! incremental engine's toggle classification — only ever ask four things
//! about the graph: a switch's incident circuits, a circuit's endpoints, its
//! hop weight, and its WCMP split weight. Answering those from the object
//! graph (`Vec<Vec<(CircuitId, SwitchId)>>` adjacency plus a `Circuit`
//! struct lookup per edge) costs two dependent loads per edge visit and
//! scatters the working set across per-switch heap allocations.
//!
//! [`CsrGraph`] bakes the answers into four flat arrays built once per
//! topology: a classic offsets/edges CSR adjacency whose [`CsrEdge`] entries
//! carry the circuit id, the far switch, the *directional load slot*, and
//! the hop weight — everything the inner loops need in one 16-byte record —
//! plus per-circuit endpoint, hop, and WCMP-weight arrays for the toggle
//! classifier. One graph is shared (`Arc`) by every routing engine and every
//! worker lane; it is immutable after build, matching the union-graph design
//! (migrations flip activation bits, never edges).
//!
//! Edge order within a switch's slice is exactly the `Topology::neighbors`
//! insertion order. Routing determinism depends on this: downhill lists are
//! collected in neighbor-scan order and f64 flow shares are summed in that
//! order, so the CSR view must reproduce it bit-for-bit.

use crate::graph::Topology;

/// One directed adjacency record: everything the routing inner loops need
/// about visiting circuit `circuit` from its near endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrEdge {
    /// Dense circuit index.
    pub circuit: u32,
    /// Far endpoint's dense switch index.
    pub far: u32,
    /// Directional load slot for flow *leaving the near endpoint* over this
    /// circuit — precomputed `LoadMap::directed_slot`: `circuit * 2`, plus 1
    /// when the near endpoint is the circuit's `b` side.
    pub slot: u32,
    /// Hop weight (`Circuit::hop_weight` widened for distance arithmetic).
    pub hop: u32,
}

/// Immutable flat-array view of one topology, shared by all routing engines.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// `offsets[u]..offsets[u + 1]` indexes `edges` for switch `u`.
    offsets: Vec<u32>,
    /// Adjacency records, per switch in `Topology::neighbors` order.
    edges: Vec<CsrEdge>,
    /// Per-circuit hop weight (for toggle classification off the hot path).
    hop: Vec<u32>,
    /// Per-circuit endpoints as dense switch indices `(a, b)`.
    ends: Vec<(u32, u32)>,
    /// Per-circuit WCMP split weight: the configured routing weight, falling
    /// back to the physical capacity — precomputed so the sweep never
    /// touches the `Circuit` structs.
    wcmp: Vec<f64>,
}

impl CsrGraph {
    /// Flattens `topo`. Edge order within each switch's slice equals the
    /// `Topology::neighbors` insertion order (a determinism invariant, see
    /// the module docs).
    pub fn build(topo: &Topology) -> Self {
        let n = topo.num_switches();
        let m = topo.num_circuits();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::with_capacity(2 * m);
        offsets.push(0u32);
        for u in 0..n {
            for &(c, far) in topo.neighbors(crate::SwitchId::from_index(u)) {
                let ck = topo.circuit(c);
                let dir = if ck.a.index() == u { 0 } else { 1 };
                edges.push(CsrEdge {
                    circuit: c.index() as u32,
                    far: far.0,
                    slot: (c.index() * 2 + dir) as u32,
                    hop: ck.hop_weight as u32,
                });
            }
            offsets.push(edges.len() as u32);
        }
        let mut hop = Vec::with_capacity(m);
        let mut ends = Vec::with_capacity(m);
        let mut wcmp = Vec::with_capacity(m);
        for i in 0..m {
            let ck = topo.circuit(crate::CircuitId::from_index(i));
            hop.push(ck.hop_weight as u32);
            ends.push((ck.a.0, ck.b.0));
            wcmp.push(ck.routing_weight.unwrap_or(ck.capacity_gbps));
        }
        Self {
            offsets,
            edges,
            hop,
            ends,
            wcmp,
        }
    }

    /// Number of switches.
    #[inline]
    pub fn num_switches(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of circuits.
    #[inline]
    pub fn num_circuits(&self) -> usize {
        self.hop.len()
    }

    /// Adjacency slice of switch `u`, in `Topology::neighbors` order.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[CsrEdge] {
        &self.edges[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// Hop weight of circuit `c`.
    #[inline]
    pub fn hop(&self, c: u32) -> u32 {
        self.hop[c as usize]
    }

    /// Endpoints of circuit `c` as dense switch indices.
    #[inline]
    pub fn ends(&self, c: u32) -> (u32, u32) {
        self.ends[c as usize]
    }

    /// WCMP split weight of circuit `c`.
    #[inline]
    pub fn wcmp_weight(&self, c: u32) -> f64 {
        self.wcmp[c as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{self, PresetId};
    use crate::{CircuitId, SwitchId};

    #[test]
    fn csr_mirrors_topology_adjacency() {
        let p = presets::build(PresetId::A);
        let t = &p.topology;
        let g = CsrGraph::build(t);
        assert_eq!(g.num_switches(), t.num_switches());
        assert_eq!(g.num_circuits(), t.num_circuits());
        for u in 0..t.num_switches() {
            let adj = t.neighbors(SwitchId::from_index(u));
            let csr = g.neighbors(u as u32);
            assert_eq!(adj.len(), csr.len(), "degree of switch {u}");
            for (&(c, far), e) in adj.iter().zip(csr) {
                assert_eq!(e.circuit as usize, c.index());
                assert_eq!(e.far, far.0);
                let ck = t.circuit(c);
                assert_eq!(e.hop, ck.hop_weight as u32);
                let dir = if ck.a.index() == u { 0 } else { 1 };
                assert_eq!(e.slot as usize, c.index() * 2 + dir);
            }
        }
    }

    #[test]
    fn per_circuit_arrays_match_circuit_structs() {
        let p = presets::build(PresetId::A);
        let t = &p.topology;
        let g = CsrGraph::build(t);
        for i in 0..t.num_circuits() {
            let ck = t.circuit(CircuitId::from_index(i));
            assert_eq!(g.hop(i as u32), ck.hop_weight as u32);
            assert_eq!(g.ends(i as u32), (ck.a.0, ck.b.0));
            let w = ck.routing_weight.unwrap_or(ck.capacity_gbps);
            assert_eq!(g.wcmp_weight(i as u32).to_bits(), w.to_bits());
        }
    }
}
