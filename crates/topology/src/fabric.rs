//! Datacenter fabric generator: pods of RSWs + FSWs under spine planes.
//!
//! Follows §2.1 of the paper: a rack of servers connects to a rack switch
//! (RSW); RSWs are interconnected by fabric switches (FSWs), which in turn
//! connect to spine switches (SSWs). The smallest deployment unit is a *pod*
//! (the pod's FSWs plus the RSWs under them); a disjoint end-to-end slice of
//! the fabric served by one set of SSWs and FSWs is a *plane*.
//!
//! Wiring: pod `p` has one FSW per plane; the RSWs of pod `p` connect to all
//! of the pod's FSWs; the FSW of (pod `p`, plane `i`) connects to every SSW
//! of plane `i`.

use crate::graph::{SwitchSpec, TopologyBuilder};
use crate::ids::{DcId, PlaneId, PodId, SwitchId};
use crate::switch::{Generation, SwitchRole};
use serde::{Deserialize, Serialize};

/// Parameters of one datacenter fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Number of pods.
    pub pods: usize,
    /// RSWs per pod.
    pub rsws_per_pod: usize,
    /// Number of spine planes; also the number of FSWs per pod.
    pub planes: usize,
    /// SSWs per plane (up to 36 in production, §2.4).
    pub ssws_per_plane: usize,
    /// Capacity of each RSW–FSW circuit, Gbps.
    pub rsw_fsw_gbps: f64,
    /// Capacity of each FSW–SSW circuit, Gbps.
    pub fsw_ssw_gbps: f64,
    /// Port budgets per role.
    pub rsw_ports: u16,
    pub fsw_ports: u16,
    pub ssw_ports: u16,
    /// Hardware generation of the SSW layer (v1 unless mid-forklift).
    pub ssw_generation: Generation,
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self {
            pods: 4,
            rsws_per_pod: 4,
            planes: 4,
            ssws_per_plane: 4,
            rsw_fsw_gbps: 400.0,
            fsw_ssw_gbps: 800.0,
            rsw_ports: 64,
            fsw_ports: 128,
            ssw_ports: 256,
            ssw_generation: Generation::V1,
        }
    }
}

/// Ids of the switches created for one fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricHandles {
    /// The DC this fabric belongs to.
    pub dc: DcId,
    /// All rack switches, pod-major order.
    pub rsws: Vec<SwitchId>,
    /// Fabric switches indexed as `fsws[pod][plane]`.
    pub fsws: Vec<Vec<SwitchId>>,
    /// Spine switches indexed as `ssws[plane][i]`.
    pub ssws: Vec<Vec<SwitchId>>,
}

impl FabricHandles {
    /// Flat list of all SSW ids, plane-major.
    pub fn all_ssws(&self) -> Vec<SwitchId> {
        self.ssws.iter().flatten().copied().collect()
    }
}

/// Builds one fabric into `b` for datacenter `dc`.
pub fn build_fabric(b: &mut TopologyBuilder, dc: DcId, cfg: &FabricConfig) -> FabricHandles {
    assert!(cfg.pods > 0 && cfg.planes > 0, "fabric must be non-empty");

    // Spine planes first.
    let mut ssws = Vec::with_capacity(cfg.planes);
    for plane in 0..cfg.planes {
        let mut row = Vec::with_capacity(cfg.ssws_per_plane);
        for _ in 0..cfg.ssws_per_plane {
            row.push(
                b.add_switch(
                    SwitchSpec::new(SwitchRole::Ssw, cfg.ssw_generation, dc, cfg.ssw_ports)
                        .plane(PlaneId(plane as u16)),
                ),
            );
        }
        ssws.push(row);
    }

    // Pods: FSWs (one per plane) then RSWs.
    let mut fsws = Vec::with_capacity(cfg.pods);
    let mut rsws = Vec::with_capacity(cfg.pods * cfg.rsws_per_pod);
    for pod in 0..cfg.pods {
        let pod_id = PodId(pod as u16);
        let mut pod_fsws = Vec::with_capacity(cfg.planes);
        for (plane, plane_ssws) in ssws.iter().enumerate() {
            let fsw = b.add_switch(
                SwitchSpec::new(SwitchRole::Fsw, Generation::V1, dc, cfg.fsw_ports)
                    .plane(PlaneId(plane as u16))
                    .pod(pod_id),
            );
            // FSW of plane `i` connects to every SSW of plane `i`.
            for &ssw in plane_ssws {
                b.add_circuit(fsw, ssw, cfg.fsw_ssw_gbps)
                    .expect("fsw-ssw circuit");
            }
            pod_fsws.push(fsw);
        }
        for _ in 0..cfg.rsws_per_pod {
            let rsw = b.add_switch(
                SwitchSpec::new(SwitchRole::Rsw, Generation::V1, dc, cfg.rsw_ports).pod(pod_id),
            );
            for &fsw in &pod_fsws {
                b.add_circuit(rsw, fsw, cfg.rsw_fsw_gbps)
                    .expect("rsw-fsw circuit");
            }
            rsws.push(rsw);
        }
        fsws.push(pod_fsws);
    }

    FabricHandles {
        dc,
        rsws,
        fsws,
        ssws,
    }
}

/// Expected switch count for a config (for preset calibration).
pub fn fabric_switch_count(cfg: &FabricConfig) -> usize {
    cfg.planes * cfg.ssws_per_plane + cfg.pods * (cfg.planes + cfg.rsws_per_pod)
}

/// Expected circuit count for a config (for preset calibration).
pub fn fabric_circuit_count(cfg: &FabricConfig) -> usize {
    cfg.pods * cfg.planes * cfg.ssws_per_plane + cfg.pods * cfg.rsws_per_pod * cfg.planes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netstate::NetState;

    fn small() -> FabricConfig {
        FabricConfig {
            pods: 2,
            rsws_per_pod: 3,
            planes: 2,
            ssws_per_plane: 2,
            ..FabricConfig::default()
        }
    }

    #[test]
    fn counts_match_formulas() {
        let cfg = small();
        let mut b = TopologyBuilder::new("f");
        let h = build_fabric(&mut b, DcId(0), &cfg);
        assert_eq!(b.num_switches(), fabric_switch_count(&cfg));
        assert_eq!(b.num_circuits(), fabric_circuit_count(&cfg));
        assert_eq!(h.rsws.len(), 6);
        assert_eq!(h.fsws.len(), 2);
        assert_eq!(h.fsws[0].len(), 2);
        assert_eq!(h.ssws.len(), 2);
        assert_eq!(h.all_ssws().len(), 4);
    }

    #[test]
    fn wiring_is_plane_aligned() {
        let cfg = small();
        let mut b = TopologyBuilder::new("f");
        let h = build_fabric(&mut b, DcId(0), &cfg);
        let t = b.build();
        // FSW (pod 0, plane 1) connects to both SSWs of plane 1 and none of plane 0.
        let fsw = h.fsws[0][1];
        for &ssw in &h.ssws[1] {
            assert_eq!(t.circuits_between(fsw, ssw).len(), 1);
        }
        for &ssw in &h.ssws[0] {
            assert_eq!(t.circuits_between(fsw, ssw).len(), 0);
        }
        // RSWs connect to all FSWs of their own pod only.
        let rsw = h.rsws[0]; // pod 0
        for &fsw in &h.fsws[0] {
            assert_eq!(t.circuits_between(rsw, fsw).len(), 1);
        }
        for &fsw in &h.fsws[1] {
            assert_eq!(t.circuits_between(rsw, fsw).len(), 0);
        }
    }

    #[test]
    fn fabric_respects_port_budgets() {
        let mut b = TopologyBuilder::new("f");
        build_fabric(&mut b, DcId(0), &FabricConfig::default());
        b.build().validate_standalone().unwrap();
    }

    #[test]
    fn planes_partition_ssws() {
        let mut b = TopologyBuilder::new("f");
        let h = build_fabric(&mut b, DcId(0), &small());
        let t = b.build();
        for (plane, row) in h.ssws.iter().enumerate() {
            for &ssw in row {
                assert_eq!(t.switch(ssw).plane, Some(PlaneId(plane as u16)));
            }
        }
    }

    #[test]
    fn full_fabric_is_connected_when_all_up() {
        let mut b = TopologyBuilder::new("f");
        let h = build_fabric(&mut b, DcId(0), &small());
        let t = b.build();
        let state = NetState::all_up(&t);
        // BFS from the first RSW must reach every switch.
        let mut seen = vec![false; t.num_switches()];
        let mut queue = std::collections::VecDeque::from([h.rsws[0]]);
        seen[h.rsws[0].index()] = true;
        while let Some(u) = queue.pop_front() {
            for &(c, far) in t.neighbors(u) {
                if state.circuit_usable(&t, c) && !seen[far.index()] {
                    seen[far.index()] = true;
                    queue.push_back(far);
                }
            }
        }
        assert!(seen.iter().all(|&x| x), "fabric must be connected");
    }
}
