//! Switch roles, hardware generations, and the switch record itself.
//!
//! The role taxonomy follows §2.1 of the paper: a Meta-style DCN stacks rack
//! switches (RSW), fabric switches (FSW), and spine switches (SSW) inside a
//! building; the disaggregated fabric-aggregation layer (HGRID) splits into
//! downlink (FADU) and uplink (FAUU) sub-switch groups; the metro aggregation
//! layer (MA / "DMAG") interconnects nearby regions; and EB, DR, and EBB
//! routers form the boundary to and the core of the wide-area backbone.

use crate::ids::{DcId, GridId, PlaneId, PodId, SwitchId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Role of a switch in the multi-layer DCN (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SwitchRole {
    /// Rack switch: top-of-rack, one per server rack.
    Rsw,
    /// Fabric switch: interconnects RSWs within a pod.
    Fsw,
    /// Spine switch: interconnects FSWs across pods; grouped into planes.
    Ssw,
    /// Fabric Aggregate Downlink Unit: HGRID sub-switch facing the fabric.
    Fadu,
    /// Fabric Aggregate Uplink Unit: HGRID sub-switch facing the backbone.
    Fauu,
    /// Metro aggregation switch (DMAG layer) interconnecting nearby regions.
    Ma,
    /// Backbone-side border router connecting to DRs.
    Eb,
    /// Datacenter router at the datacenter/backbone boundary.
    Dr,
    /// Express backbone router at the WAN core.
    Ebb,
}

impl SwitchRole {
    /// All roles, bottom-up.
    pub const ALL: [SwitchRole; 9] = [
        SwitchRole::Rsw,
        SwitchRole::Fsw,
        SwitchRole::Ssw,
        SwitchRole::Fadu,
        SwitchRole::Fauu,
        SwitchRole::Ma,
        SwitchRole::Eb,
        SwitchRole::Dr,
        SwitchRole::Ebb,
    ];

    /// Layer index, bottom-up: RSW is 0, EBB is 8.
    pub fn layer(self) -> u8 {
        match self {
            SwitchRole::Rsw => 0,
            SwitchRole::Fsw => 1,
            SwitchRole::Ssw => 2,
            SwitchRole::Fadu => 3,
            SwitchRole::Fauu => 4,
            SwitchRole::Ma => 5,
            SwitchRole::Eb => 6,
            SwitchRole::Dr => 7,
            SwitchRole::Ebb => 8,
        }
    }

    /// True for the three intra-building fabric roles.
    pub fn is_fabric(self) -> bool {
        matches!(self, SwitchRole::Rsw | SwitchRole::Fsw | SwitchRole::Ssw)
    }

    /// True for the two HGRID (fabric-aggregation) sub-switch roles.
    pub fn is_fa(self) -> bool {
        matches!(self, SwitchRole::Fadu | SwitchRole::Fauu)
    }

    /// Short uppercase name used in switch names and NPD files.
    pub fn as_str(self) -> &'static str {
        match self {
            SwitchRole::Rsw => "RSW",
            SwitchRole::Fsw => "FSW",
            SwitchRole::Ssw => "SSW",
            SwitchRole::Fadu => "FADU",
            SwitchRole::Fauu => "FAUU",
            SwitchRole::Ma => "MA",
            SwitchRole::Eb => "EB",
            SwitchRole::Dr => "DR",
            SwitchRole::Ebb => "EBB",
        }
    }
}

impl fmt::Display for SwitchRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing an unknown switch-role name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRoleError(pub String);

impl fmt::Display for ParseRoleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown switch role: {:?}", self.0)
    }
}

impl std::error::Error for ParseRoleError {}

impl FromStr for SwitchRole {
    type Err = ParseRoleError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "RSW" => Ok(SwitchRole::Rsw),
            "FSW" => Ok(SwitchRole::Fsw),
            "SSW" => Ok(SwitchRole::Ssw),
            "FADU" => Ok(SwitchRole::Fadu),
            "FAUU" => Ok(SwitchRole::Fauu),
            "MA" | "DMAG" => Ok(SwitchRole::Ma),
            "EB" => Ok(SwitchRole::Eb),
            "DR" => Ok(SwitchRole::Dr),
            "EBB" => Ok(SwitchRole::Ebb),
            other => Err(ParseRoleError(other.to_string())),
        }
    }
}

/// Hardware generation of a switch. Multiple generations coexist during a
/// migration (§2.2, "Consider different generations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Generation(pub u8);

impl Generation {
    /// First-generation hardware.
    pub const V1: Generation = Generation(1);
    /// Second-generation hardware.
    pub const V2: Generation = Generation(2);
}

impl fmt::Display for Generation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A switch record in the union topology.
///
/// Position fields (`plane`, `pod`, `grid`) are optional because they only
/// apply to some roles; they drive symmetry detection and the operation-block
/// organization policy in `klotski-core`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Switch {
    /// Dense identifier within the owning topology.
    pub id: SwitchId,
    /// Layer role.
    pub role: SwitchRole,
    /// Hardware generation.
    pub generation: Generation,
    /// Datacenter building this switch lives in.
    pub dc: DcId,
    /// Spine plane, for plane-aligned roles (FSW, SSW, and plane-aligned FA).
    pub plane: Option<PlaneId>,
    /// Pod, for pod-local roles (RSW, FSW).
    pub pod: Option<PodId>,
    /// HGRID grid, for FA sub-switches (FADU, FAUU) and MAs.
    pub grid: Option<GridId>,
    /// Physical port budget of the chassis (Eq. 6 hard constraint).
    pub max_ports: u16,
    /// Human-readable name, e.g. `dc0/SSW-p2-3` or `dc1/FADU-v2-g0-1`.
    pub name: String,
}

impl Switch {
    /// Formats a canonical switch name from its coordinates.
    pub fn canonical_name(
        dc: DcId,
        role: SwitchRole,
        generation: Generation,
        plane: Option<PlaneId>,
        pod: Option<PodId>,
        grid: Option<GridId>,
        ordinal: usize,
    ) -> String {
        let mut name = format!("{dc}/{role}-{generation}");
        if let Some(p) = plane {
            name.push_str(&format!("-p{}", p.0));
        }
        if let Some(p) = pod {
            name.push_str(&format!("-pod{}", p.0));
        }
        if let Some(g) = grid {
            name.push_str(&format!("-g{}", g.0));
        }
        name.push_str(&format!("-{ordinal}"));
        name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layers_are_bottom_up_and_distinct() {
        let mut layers: Vec<u8> = SwitchRole::ALL.iter().map(|r| r.layer()).collect();
        let sorted = layers.clone();
        layers.sort_unstable();
        assert_eq!(layers, sorted, "ALL must be listed bottom-up");
        layers.dedup();
        assert_eq!(layers.len(), SwitchRole::ALL.len());
    }

    #[test]
    fn role_roundtrips_through_str() {
        for role in SwitchRole::ALL {
            let parsed: SwitchRole = role.as_str().parse().unwrap();
            assert_eq!(parsed, role);
            // Parsing is case-insensitive.
            let parsed_lower: SwitchRole = role.as_str().to_ascii_lowercase().parse().unwrap();
            assert_eq!(parsed_lower, role);
        }
    }

    #[test]
    fn dmag_aliases_ma() {
        assert_eq!("DMAG".parse::<SwitchRole>().unwrap(), SwitchRole::Ma);
    }

    #[test]
    fn unknown_role_is_an_error() {
        let err = "TOR".parse::<SwitchRole>().unwrap_err();
        assert!(err.to_string().contains("TOR"));
    }

    #[test]
    fn fabric_and_fa_classification() {
        assert!(SwitchRole::Rsw.is_fabric());
        assert!(SwitchRole::Ssw.is_fabric());
        assert!(!SwitchRole::Fadu.is_fabric());
        assert!(SwitchRole::Fadu.is_fa());
        assert!(SwitchRole::Fauu.is_fa());
        assert!(!SwitchRole::Eb.is_fa());
    }

    #[test]
    fn generation_display() {
        assert_eq!(Generation::V1.to_string(), "v1");
        assert_eq!(Generation::V2.to_string(), "v2");
        assert!(Generation::V1 < Generation::V2);
    }

    #[test]
    fn canonical_name_includes_coordinates() {
        let name = Switch::canonical_name(
            DcId(1),
            SwitchRole::Fadu,
            Generation::V2,
            None,
            None,
            Some(GridId(3)),
            7,
        );
        assert_eq!(name, "dc1/FADU-v2-g3-7");
    }
}
