//! A compact fixed-capacity bit set used for activation overlays.
//!
//! [`NetState`](crate::netstate::NetState) tracks which switches and circuits
//! are currently active with two of these. The set is sized once at creation
//! and never grows, matching the immutable union-graph design: during a
//! migration the element universe is fixed, only activation flips.

use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// A fixed-capacity bit set backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a bit set with `len` bits, all cleared.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Creates a bit set with `len` bits, all set.
    pub fn new_all_set(len: usize) -> Self {
        let mut s = Self::new(len);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.clear_tail();
        s
    }

    /// Number of bits this set holds (set or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the set holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the value of bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// The backing words, least-significant bit first. Bits past `len` in
    /// the final word are always zero, so word-level intersection tests
    /// (e.g. footprint prefilters) need no tail masking.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi * WORD_BITS;
            BitIter { word: w, base }
        })
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if the sets have different lengths.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "BitSet length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    /// Panics if the sets have different lengths.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "BitSet length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self &= !other`).
    ///
    /// # Panics
    /// Panics if the sets have different lengths.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "BitSet length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// True if every set bit of `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "BitSet length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Clears all bits.
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Masks out bits beyond `len` in the last word so equality and popcount
    /// stay canonical.
    fn clear_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_is_all_clear() {
        let s = BitSet::new(130);
        assert_eq!(s.len(), 130);
        assert_eq!(s.count_ones(), 0);
        assert!(!s.get(0));
        assert!(!s.get(129));
    }

    #[test]
    fn new_all_set_counts_exactly_len() {
        for len in [0, 1, 63, 64, 65, 127, 128, 130] {
            let s = BitSet::new_all_set(len);
            assert_eq!(s.count_ones(), len, "len={len}");
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut s = BitSet::new(100);
        s.set(0, true);
        s.set(63, true);
        s.set(64, true);
        s.set(99, true);
        assert!(s.get(0) && s.get(63) && s.get(64) && s.get(99));
        assert!(!s.get(1) && !s.get(65));
        s.set(63, false);
        assert!(!s.get(63));
        assert_eq!(s.count_ones(), 3);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut s = BitSet::new(200);
        for i in [3, 64, 65, 199] {
            s.set(i, true);
        }
        let ones: Vec<usize> = s.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 65, 199]);
    }

    #[test]
    fn union_intersect_difference() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.set(1, true);
        a.set(65, true);
        b.set(65, true);
        b.set(2, true);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![1, 2, 65]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter_ones().collect::<Vec<_>>(), vec![65]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn subset_relation() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.set(3, true);
        b.set(3, true);
        b.set(5, true);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let s = BitSet::new(8);
        let _ = s.get(8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn union_length_mismatch_panics() {
        let mut a = BitSet::new(8);
        let b = BitSet::new(9);
        a.union_with(&b);
    }

    #[test]
    fn equality_is_canonical_after_clear_all() {
        let mut a = BitSet::new_all_set(70);
        a.clear_all();
        assert_eq!(a, BitSet::new(70));
    }

    proptest! {
        #[test]
        fn prop_set_then_get(indices in proptest::collection::vec(0usize..500, 0..64)) {
            let mut s = BitSet::new(500);
            for &i in &indices {
                s.set(i, true);
            }
            for &i in &indices {
                prop_assert!(s.get(i));
            }
            let mut expect: Vec<usize> = indices.clone();
            expect.sort_unstable();
            expect.dedup();
            prop_assert_eq!(s.count_ones(), expect.len());
            prop_assert_eq!(s.iter_ones().collect::<Vec<_>>(), expect);
        }

        #[test]
        fn prop_union_count_ge_parts(
            xs in proptest::collection::vec(0usize..200, 0..40),
            ys in proptest::collection::vec(0usize..200, 0..40),
        ) {
            let mut a = BitSet::new(200);
            let mut b = BitSet::new(200);
            for &x in &xs { a.set(x, true); }
            for &y in &ys { b.set(y, true); }
            let ca = a.count_ones();
            let cb = b.count_ones();
            let mut u = a.clone();
            u.union_with(&b);
            prop_assert!(u.count_ones() >= ca.max(cb));
            prop_assert!(u.count_ones() <= ca + cb);
            prop_assert!(a.is_subset_of(&u));
            prop_assert!(b.is_subset_of(&u));
        }
    }
}
