//! Regional/metro aggregation (MA, "DMAG") and backbone attachment (EB/DR/EBB).
//!
//! Above the FA layer the paper introduces the MA (Metro Aggregation) layer
//! providing connectivity between regions in geographic proximity, also
//! disaggregated ("DMAG"). The backbone boundary consists of DRs (datacenter
//! routers), EB routers on the backbone side, and EBB routers at the WAN core
//! (§2.1). The DMAG migration (§2.4, Figure 3(c)) inserts MAs between FAUUs
//! and EBs, draining the direct FAUU–EB circuits.

use crate::graph::{SwitchSpec, TopologyBuilder};
use crate::ids::{CircuitId, DcId, GridId, SwitchId};
use crate::switch::{Generation, SwitchRole};
use serde::{Deserialize, Serialize};

/// Parameters of the backbone attachment of a region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackboneConfig {
    /// Number of EB border routers.
    pub ebs: usize,
    /// Number of DR datacenter routers.
    pub drs: usize,
    /// Number of EBB express-backbone routers.
    pub ebbs: usize,
    /// Capacity of each FAUU–EB circuit, Gbps.
    pub fauu_eb_gbps: f64,
    /// Capacity of each EB–DR circuit, Gbps.
    pub eb_dr_gbps: f64,
    /// Capacity of each DR–EBB circuit, Gbps.
    pub dr_ebb_gbps: f64,
    /// Port budgets.
    pub eb_ports: u16,
    pub dr_ports: u16,
    pub ebb_ports: u16,
}

impl Default for BackboneConfig {
    fn default() -> Self {
        Self {
            ebs: 4,
            drs: 2,
            ebbs: 2,
            fauu_eb_gbps: 400.0,
            eb_dr_gbps: 3200.0,
            dr_ebb_gbps: 6400.0,
            eb_ports: 512,
            dr_ports: 512,
            ebb_ports: 512,
        }
    }
}

/// Ids of the backbone routers of a region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackboneHandles {
    pub ebs: Vec<SwitchId>,
    pub drs: Vec<SwitchId>,
    pub ebbs: Vec<SwitchId>,
}

/// Builds EB → DR → EBB routers with full meshes between adjacent layers.
pub fn build_backbone(b: &mut TopologyBuilder, dc: DcId, cfg: &BackboneConfig) -> BackboneHandles {
    assert!(
        cfg.ebs > 0 && cfg.drs > 0 && cfg.ebbs > 0,
        "backbone must be non-empty"
    );
    let ebs: Vec<SwitchId> = (0..cfg.ebs)
        .map(|_| {
            b.add_switch(SwitchSpec::new(
                SwitchRole::Eb,
                Generation::V1,
                dc,
                cfg.eb_ports,
            ))
        })
        .collect();
    let drs: Vec<SwitchId> = (0..cfg.drs)
        .map(|_| {
            b.add_switch(SwitchSpec::new(
                SwitchRole::Dr,
                Generation::V1,
                dc,
                cfg.dr_ports,
            ))
        })
        .collect();
    let ebbs: Vec<SwitchId> = (0..cfg.ebbs)
        .map(|_| {
            b.add_switch(SwitchSpec::new(
                SwitchRole::Ebb,
                Generation::V1,
                dc,
                cfg.ebb_ports,
            ))
        })
        .collect();
    for &eb in &ebs {
        for &dr in &drs {
            b.add_circuit(eb, dr, cfg.eb_dr_gbps).expect("eb-dr");
        }
    }
    for &dr in &drs {
        for &ebb in &ebbs {
            b.add_circuit(dr, ebb, cfg.dr_ebb_gbps).expect("dr-ebb");
        }
    }
    BackboneHandles { ebs, drs, ebbs }
}

/// Connects a set of FAUUs directly to the EBs (pre-DMAG connectivity).
/// Returns the created circuits; the DMAG migration drains exactly these.
pub fn connect_fauus_to_ebs(
    b: &mut TopologyBuilder,
    fauus: &[SwitchId],
    ebs: &[SwitchId],
    gbps: f64,
) -> Vec<CircuitId> {
    let mut circuits = Vec::with_capacity(fauus.len() * ebs.len());
    for &fu in fauus {
        for &eb in ebs {
            circuits.push(b.add_circuit(fu, eb, gbps).expect("fauu-eb"));
        }
    }
    circuits
}

/// Parameters of the MA (DMAG) layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaConfig {
    /// Number of MA switches.
    pub mas: usize,
    /// How many EBs each MA wires to (consecutive from its home EB).
    /// Spreading over several EBs keeps a partially-deployed MA layer from
    /// funneling all its traffic into one border router.
    pub ebs_per_ma: usize,
    /// Capacity of each FAUU–MA circuit, Gbps.
    pub fauu_ma_gbps: f64,
    /// Capacity of each MA–EB circuit, Gbps.
    pub ma_eb_gbps: f64,
    /// Port budget.
    pub ma_ports: u16,
}

impl Default for MaConfig {
    fn default() -> Self {
        Self {
            mas: 4,
            ebs_per_ma: 2,
            fauu_ma_gbps: 400.0,
            ma_eb_gbps: 400.0,
            ma_ports: 512,
        }
    }
}

/// Ids and circuits of a DMAG insertion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaHandles {
    /// The MA switches, grouped by the EB they are organized under
    /// (the §5 organization policy groups MAs/circuits by EB).
    pub mas_by_eb: Vec<Vec<SwitchId>>,
    /// All FAUU–MA circuits.
    pub fauu_ma_circuits: Vec<CircuitId>,
    /// All MA–EB circuits.
    pub ma_eb_circuits: Vec<CircuitId>,
}

impl MaHandles {
    /// Flat list of all MA switches.
    pub fn all_mas(&self) -> Vec<SwitchId> {
        self.mas_by_eb.iter().flatten().copied().collect()
    }
}

/// Builds the MA layer between `fauus` and `ebs`.
///
/// MAs are distributed round-robin over EBs: MA `i` homes under EB
/// `i mod ebs.len()`, connects to that EB, and to every FAUU. The grid
/// coordinate records the home EB's index, which the organization policy in
/// `klotski-core` uses to group MAs by EB (§5).
pub fn build_ma_layer(
    b: &mut TopologyBuilder,
    dc: DcId,
    fauus: &[SwitchId],
    ebs: &[SwitchId],
    cfg: &MaConfig,
) -> MaHandles {
    assert!(cfg.mas > 0 && !ebs.is_empty(), "ma layer must be non-empty");
    let mut mas_by_eb: Vec<Vec<SwitchId>> = vec![Vec::new(); ebs.len()];
    let mut fauu_ma = Vec::new();
    let mut ma_eb = Vec::new();
    for i in 0..cfg.mas {
        let home = i % ebs.len();
        let ma = b.add_switch(
            SwitchSpec::new(SwitchRole::Ma, Generation::V1, dc, cfg.ma_ports)
                .grid(GridId(home as u16)),
        );
        // MA circuits are transparent relays: the two-circuit FAUU->MA->EB
        // path must cost one ordinary hop, or ECMP would never share it
        // with the direct FAUU->EB circuits during the DMAG transition.
        for k in 0..cfg.ebs_per_ma.clamp(1, ebs.len()) {
            let eb = ebs[(home + k) % ebs.len()];
            let eb_ckt = b.add_circuit(ma, eb, cfg.ma_eb_gbps).expect("ma-eb");
            b.set_half_hop(eb_ckt);
            ma_eb.push(eb_ckt);
        }
        for &fu in fauus {
            let c = b.add_circuit(fu, ma, cfg.fauu_ma_gbps).expect("fauu-ma");
            b.set_half_hop(c);
            fauu_ma.push(c);
        }
        mas_by_eb[home].push(ma);
    }
    MaHandles {
        mas_by_eb,
        fauu_ma_circuits: fauu_ma,
        ma_eb_circuits: ma_eb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fauus(b: &mut TopologyBuilder, n: usize) -> Vec<SwitchId> {
        (0..n)
            .map(|_| {
                b.add_switch(SwitchSpec::new(
                    SwitchRole::Fauu,
                    Generation::V1,
                    DcId(0),
                    512,
                ))
            })
            .collect()
    }

    #[test]
    fn backbone_full_meshes() {
        let mut b = TopologyBuilder::new("bb");
        let cfg = BackboneConfig {
            ebs: 3,
            drs: 2,
            ebbs: 2,
            ..BackboneConfig::default()
        };
        let h = build_backbone(&mut b, DcId(0), &cfg);
        assert_eq!(h.ebs.len(), 3);
        assert_eq!(b.num_circuits(), 3 * 2 + 2 * 2);
        let t = b.build();
        for &eb in &h.ebs {
            for &dr in &h.drs {
                assert_eq!(t.circuits_between(eb, dr).len(), 1);
            }
        }
    }

    #[test]
    fn fauu_eb_direct_connectivity() {
        let mut b = TopologyBuilder::new("bb");
        let fu = fauus(&mut b, 2);
        let h = build_backbone(&mut b, DcId(0), &BackboneConfig::default());
        let circuits = connect_fauus_to_ebs(&mut b, &fu, &h.ebs, 400.0);
        assert_eq!(circuits.len(), 2 * 4);
        let t = b.build();
        assert_eq!(t.circuits_between(fu[0], h.ebs[0]).len(), 1);
    }

    #[test]
    fn ma_layer_homes_round_robin() {
        let mut b = TopologyBuilder::new("ma");
        let fu = fauus(&mut b, 3);
        let bb = build_backbone(&mut b, DcId(0), &BackboneConfig::default());
        let cfg = MaConfig {
            mas: 6,
            ..MaConfig::default()
        };
        let h = build_ma_layer(&mut b, DcId(0), &fu, &bb.ebs, &cfg);
        assert_eq!(h.all_mas().len(), 6);
        // 6 MAs over 4 EBs: homes 0,1,2,3,0,1.
        assert_eq!(h.mas_by_eb[0].len(), 2);
        assert_eq!(h.mas_by_eb[3].len(), 1);
        assert_eq!(h.fauu_ma_circuits.len(), 6 * 3);
        // 6 MAs x 2 EBs each (default ebs_per_ma).
        assert_eq!(h.ma_eb_circuits.len(), 12);
        let t = b.build();
        // MA home is recorded in the grid coordinate.
        for (eb_idx, group) in h.mas_by_eb.iter().enumerate() {
            for &ma in group {
                assert_eq!(t.switch(ma).grid, Some(GridId(eb_idx as u16)));
                assert_eq!(t.circuits_between(ma, bb.ebs[eb_idx]).len(), 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_backbone_panics() {
        let mut b = TopologyBuilder::new("bb");
        build_backbone(
            &mut b,
            DcId(0),
            &BackboneConfig {
                ebs: 0,
                ..BackboneConfig::default()
            },
        );
    }
}
