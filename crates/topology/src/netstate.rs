//! Activation overlay over the immutable union topology.
//!
//! A [`NetState`] records which switches and circuits are currently *up*.
//! Draining a switch clears its bit; its circuits keep their own bits but
//! become unusable because a circuit is only usable when both endpoints and
//! the circuit itself are up. Migration actions are pure bit-flips, so
//! applying the same multiset of actions always yields the same state —
//! the invariant behind the paper's ordering-agnostic compact representation
//! (Definition 1, §4.2).

use crate::bitset::BitSet;
use crate::graph::Topology;
use crate::ids::{CircuitId, SwitchId};
use serde::{Deserialize, Serialize};

/// Which switches/circuits of a union topology are currently active.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NetState {
    switch_up: BitSet,
    circuit_up: BitSet,
}

impl NetState {
    /// All switches and circuits up.
    pub fn all_up(topo: &Topology) -> Self {
        Self {
            switch_up: BitSet::new_all_set(topo.num_switches()),
            circuit_up: BitSet::new_all_set(topo.num_circuits()),
        }
    }

    /// All switches and circuits down.
    pub fn all_down(topo: &Topology) -> Self {
        Self {
            switch_up: BitSet::new(topo.num_switches()),
            circuit_up: BitSet::new(topo.num_circuits()),
        }
    }

    /// True if the switch's own bit is up.
    #[inline]
    pub fn switch_up(&self, id: SwitchId) -> bool {
        self.switch_up.get(id.index())
    }

    /// True if the circuit's own bit is up (endpoints not considered).
    #[inline]
    pub fn circuit_up(&self, id: CircuitId) -> bool {
        self.circuit_up.get(id.index())
    }

    /// A circuit is *usable* iff its own bit and both endpoint switches are up.
    #[inline]
    pub fn circuit_usable(&self, topo: &Topology, id: CircuitId) -> bool {
        if !self.circuit_up(id) {
            return false;
        }
        let c = topo.circuit(id);
        self.switch_up(c.a) && self.switch_up(c.b)
    }

    /// Sets a switch up or down.
    #[inline]
    pub fn set_switch(&mut self, id: SwitchId, up: bool) {
        self.switch_up.set(id.index(), up);
    }

    /// Sets a circuit up or down.
    #[inline]
    pub fn set_circuit(&mut self, id: CircuitId, up: bool) {
        self.circuit_up.set(id.index(), up);
    }

    /// Drains a switch and all its incident circuits.
    pub fn drain_switch(&mut self, topo: &Topology, id: SwitchId) {
        self.set_switch(id, false);
        for &(c, _) in topo.neighbors(id) {
            self.set_circuit(c, false);
        }
    }

    /// Undrains a switch and all its incident circuits *whose far endpoint is
    /// already up*. Circuits toward still-down peers stay down.
    pub fn undrain_switch(&mut self, topo: &Topology, id: SwitchId) {
        self.set_switch(id, true);
        for &(c, far) in topo.neighbors(id) {
            if self.switch_up(far) {
                self.set_circuit(c, true);
            }
        }
    }

    /// Number of switches currently up.
    pub fn num_switches_up(&self) -> usize {
        self.switch_up.count_ones()
    }

    /// Number of circuits whose own bit is up.
    pub fn num_circuits_up(&self) -> usize {
        self.circuit_up.count_ones()
    }

    /// Count of *usable* incident circuits of a switch.
    pub fn active_degree(&self, topo: &Topology, id: SwitchId) -> usize {
        topo.neighbors(id)
            .iter()
            .filter(|&&(c, _)| self.circuit_usable(topo, c))
            .count()
    }

    /// Sum of capacities of usable circuits, in Gbps.
    pub fn usable_capacity_gbps(&self, topo: &Topology) -> f64 {
        topo.circuits()
            .iter()
            .filter(|c| self.circuit_usable(topo, c.id))
            .map(|c| c.capacity_gbps)
            .sum()
    }

    /// Iterates over ids of switches currently up.
    pub fn switches_up(&self) -> impl Iterator<Item = SwitchId> + '_ {
        self.switch_up.iter_ones().map(SwitchId::from_index)
    }

    /// Iterates over ids of circuits whose own bit is up.
    pub fn circuits_up(&self) -> impl Iterator<Item = CircuitId> + '_ {
        self.circuit_up.iter_ones().map(CircuitId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{SwitchSpec, TopologyBuilder};
    use crate::ids::DcId;
    use crate::switch::{Generation, SwitchRole};

    /// rsw - fsw - ssw line.
    fn line() -> (Topology, [SwitchId; 3], [CircuitId; 2]) {
        let mut b = TopologyBuilder::new("line");
        let spec = |r| SwitchSpec::new(r, Generation::V1, DcId(0), 32);
        let rsw = b.add_switch(spec(SwitchRole::Rsw));
        let fsw = b.add_switch(spec(SwitchRole::Fsw));
        let ssw = b.add_switch(spec(SwitchRole::Ssw));
        let c0 = b.add_circuit(rsw, fsw, 100.0).unwrap();
        let c1 = b.add_circuit(fsw, ssw, 100.0).unwrap();
        (b.build(), [rsw, fsw, ssw], [c0, c1])
    }

    #[test]
    fn all_up_and_all_down() {
        let (t, sw, ck) = line();
        let up = NetState::all_up(&t);
        assert_eq!(up.num_switches_up(), 3);
        assert_eq!(up.num_circuits_up(), 2);
        assert!(up.circuit_usable(&t, ck[0]));

        let down = NetState::all_down(&t);
        assert_eq!(down.num_switches_up(), 0);
        assert!(!down.circuit_usable(&t, ck[0]));
        assert!(!down.switch_up(sw[0]));
    }

    #[test]
    fn drain_switch_kills_incident_circuits() {
        let (t, sw, ck) = line();
        let mut s = NetState::all_up(&t);
        s.drain_switch(&t, sw[1]);
        assert!(!s.switch_up(sw[1]));
        assert!(!s.circuit_up(ck[0]));
        assert!(!s.circuit_up(ck[1]));
        assert_eq!(s.active_degree(&t, sw[0]), 0);
    }

    #[test]
    fn circuit_unusable_when_endpoint_down_even_if_bit_up() {
        let (t, sw, ck) = line();
        let mut s = NetState::all_up(&t);
        s.set_switch(sw[2], false);
        assert!(s.circuit_up(ck[1]), "circuit bit itself untouched");
        assert!(!s.circuit_usable(&t, ck[1]));
        assert!(s.circuit_usable(&t, ck[0]));
    }

    #[test]
    fn undrain_restores_only_circuits_to_live_peers() {
        let (t, sw, ck) = line();
        let mut s = NetState::all_up(&t);
        s.drain_switch(&t, sw[1]);
        s.set_switch(sw[2], false); // far peer also down
        s.undrain_switch(&t, sw[1]);
        assert!(s.switch_up(sw[1]));
        assert!(s.circuit_up(ck[0]), "peer rsw is up, circuit restored");
        assert!(!s.circuit_up(ck[1]), "peer ssw is down, circuit stays down");
    }

    #[test]
    fn drain_undrain_roundtrip_is_identity_when_peers_up() {
        let (t, sw, _) = line();
        let orig = NetState::all_up(&t);
        let mut s = orig.clone();
        s.drain_switch(&t, sw[1]);
        s.undrain_switch(&t, sw[1]);
        assert_eq!(s, orig);
    }

    #[test]
    fn usable_capacity_tracks_drains() {
        let (t, sw, _) = line();
        let mut s = NetState::all_up(&t);
        assert!((s.usable_capacity_gbps(&t) - 200.0).abs() < 1e-9);
        s.drain_switch(&t, sw[0]);
        assert!((s.usable_capacity_gbps(&t) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn iterators_report_up_elements() {
        let (t, sw, _) = line();
        let mut s = NetState::all_up(&t);
        s.set_switch(sw[1], false);
        let ups: Vec<SwitchId> = s.switches_up().collect();
        assert_eq!(ups, vec![sw[0], sw[2]]);
        assert_eq!(s.circuits_up().count(), 2);
    }
}
