//! HGRID fabric-aggregation layer generator (FADU/FAUU grids).
//!
//! The FA layer serves east/west traffic between buildings of a region and
//! the region's ingress/egress to the backbone (§2.1). The latest generation,
//! HGRID, is disaggregated: commodity sub-switches facing the fabric are
//! grouped into FADUs (downlink units) and sub-switches facing the backbone
//! into FAUUs (uplink units). Grids of FADUs + FAUUs are the natural
//! operation blocks of the HGRID v1→v2 migration (§4.1, Figure 5).
//!
//! Two meshing patterns toward the fabric's spine planes are supported,
//! mirroring Figure 2(c) of the paper:
//!
//! - [`MeshPattern::PlaneAligned`]: FADU `i` of a grid serves spine plane
//!   `i mod planes` and connects to every SSW of that plane (one-to-one
//!   mapping with downstream planes; typical of generation v1).
//! - [`MeshPattern::Spread`]: the SSW slots of all planes are enumerated as
//!   `k = plane·S + j` and slot `k` attaches to FADU `k mod F` of each grid —
//!   smaller capacity per node, no per-plane mapping, balanced across both
//!   sides (typical of generation v2).

use crate::fabric::FabricHandles;
use crate::graph::{SwitchSpec, TopologyBuilder};
use crate::ids::{CircuitId, DcId, GridId, SwitchId};
use crate::switch::{Generation, SwitchRole};
use serde::{Deserialize, Serialize};

/// How FADUs mesh with the spine planes below (Figure 2(c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MeshPattern {
    /// One-to-one mapping between FADUs and spine planes.
    PlaneAligned,
    /// Stride-spread connections across all planes.
    Spread,
}

/// Parameters of one HGRID generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HgridConfig {
    /// Number of grids (each grid is a group of FADUs + FAUUs).
    pub grids: usize,
    /// FADU sub-switches per grid.
    pub fadus_per_grid: usize,
    /// FAUU sub-switches per grid.
    pub fauus_per_grid: usize,
    /// Hardware generation.
    pub generation: Generation,
    /// Downward meshing pattern.
    pub mesh: MeshPattern,
    /// Capacity of each SSW–FADU circuit, Gbps.
    pub ssw_fadu_gbps: f64,
    /// Capacity of each FADU–FAUU circuit, Gbps.
    pub fadu_fauu_gbps: f64,
    /// For [`MeshPattern::Spread`]: how many FADUs each SSW slot attaches to
    /// per grid. Disaggregated v2 units have smaller per-circuit capacity, so
    /// presets raise this until the v2 layer's aggregate capacity matches or
    /// exceeds v1's (the point of the migration, §2.4). Ignored by
    /// [`MeshPattern::PlaneAligned`].
    pub uplinks_per_ssw: usize,
    /// Port budgets.
    pub fadu_ports: u16,
    pub fauu_ports: u16,
}

impl HgridConfig {
    /// A typical v1 layer: few large plane-aligned units.
    pub fn v1(grids: usize, fadus_per_grid: usize, fauus_per_grid: usize) -> Self {
        Self {
            grids,
            fadus_per_grid,
            fauus_per_grid,
            generation: Generation::V1,
            mesh: MeshPattern::PlaneAligned,
            ssw_fadu_gbps: 400.0,
            fadu_fauu_gbps: 400.0,
            uplinks_per_ssw: 1,
            fadu_ports: 512,
            fauu_ports: 512,
        }
    }

    /// A typical v2 layer: more, smaller, spread units with higher aggregate
    /// capacity (the point of the HGRID v1→v2 migration, §2.4).
    pub fn v2(grids: usize, fadus_per_grid: usize, fauus_per_grid: usize) -> Self {
        Self {
            grids,
            fadus_per_grid,
            fauus_per_grid,
            generation: Generation::V2,
            mesh: MeshPattern::Spread,
            ssw_fadu_gbps: 200.0,
            // Internal grid fabric is deliberately fat: partial
            // deployments concentrate a slice's FADU traffic on the few
            // FAUUs already up, and the internal mesh must absorb that.
            fadu_fauu_gbps: 500.0,
            uplinks_per_ssw: 1,
            fadu_ports: 512,
            fauu_ports: 512,
        }
    }

    /// Total sub-switch count of this layer.
    pub fn switch_count(&self) -> usize {
        self.grids * (self.fadus_per_grid + self.fauus_per_grid)
    }
}

/// Ids of the sub-switches created for one HGRID generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HgridHandles {
    /// Generation these handles belong to.
    pub generation: Generation,
    /// FADUs indexed as `fadus[grid][i]`.
    pub fadus: Vec<Vec<SwitchId>>,
    /// FAUUs indexed as `fauus[grid][i]`.
    pub fauus: Vec<Vec<SwitchId>>,
    /// Circuits from SSWs up to this layer's FADUs.
    pub ssw_fadu_circuits: Vec<CircuitId>,
    /// Circuits within grids (FADU–FAUU).
    pub intra_grid_circuits: Vec<CircuitId>,
}

impl HgridHandles {
    /// Flat list of every sub-switch in this layer.
    pub fn all_switches(&self) -> Vec<SwitchId> {
        self.fadus
            .iter()
            .chain(self.fauus.iter())
            .flatten()
            .copied()
            .collect()
    }

    /// All sub-switches of one grid (FADUs then FAUUs).
    pub fn grid_switches(&self, grid: usize) -> Vec<SwitchId> {
        self.fadus[grid]
            .iter()
            .chain(self.fauus[grid].iter())
            .copied()
            .collect()
    }

    /// Number of grids.
    pub fn num_grids(&self) -> usize {
        self.fadus.len()
    }
}

/// Builds the HGRID sub-switches (no downward wiring yet) into `b`.
///
/// `dc` identifies the aggregation site; FA hardware shares space and power
/// across generations (§7.2), so v1 and v2 layers use the same `dc`.
pub fn build_hgrid(b: &mut TopologyBuilder, dc: DcId, cfg: &HgridConfig) -> HgridHandles {
    assert!(
        cfg.grids > 0 && cfg.fadus_per_grid > 0 && cfg.fauus_per_grid > 0,
        "hgrid must be non-empty"
    );
    let mut fadus = Vec::with_capacity(cfg.grids);
    let mut fauus = Vec::with_capacity(cfg.grids);
    let mut intra = Vec::new();
    for grid in 0..cfg.grids {
        let gid = GridId(grid as u16);
        let grid_fadus: Vec<SwitchId> = (0..cfg.fadus_per_grid)
            .map(|_| {
                b.add_switch(
                    SwitchSpec::new(SwitchRole::Fadu, cfg.generation, dc, cfg.fadu_ports).grid(gid),
                )
            })
            .collect();
        let grid_fauus: Vec<SwitchId> = (0..cfg.fauus_per_grid)
            .map(|_| {
                b.add_switch(
                    SwitchSpec::new(SwitchRole::Fauu, cfg.generation, dc, cfg.fauu_ports).grid(gid),
                )
            })
            .collect();
        // Full bipartite mesh inside the grid.
        for &fd in &grid_fadus {
            for &fu in &grid_fauus {
                intra.push(
                    b.add_circuit(fd, fu, cfg.fadu_fauu_gbps)
                        .expect("intra-grid circuit"),
                );
            }
        }
        fadus.push(grid_fadus);
        fauus.push(grid_fauus);
    }
    HgridHandles {
        generation: cfg.generation,
        fadus,
        fauus,
        ssw_fadu_circuits: Vec::new(),
        intra_grid_circuits: intra,
    }
}

/// Wires an HGRID layer down to one fabric's spine planes according to the
/// layer's mesh pattern. Appends the created circuits to
/// `handles.ssw_fadu_circuits`.
pub fn connect_hgrid_to_fabric(
    b: &mut TopologyBuilder,
    handles: &mut HgridHandles,
    fabric: &FabricHandles,
    cfg: &HgridConfig,
) {
    let planes = fabric.ssws.len();
    for grid_fadus in &handles.fadus {
        for (i, &fadu) in grid_fadus.iter().enumerate() {
            match cfg.mesh {
                MeshPattern::PlaneAligned => {
                    let plane = i % planes;
                    for &ssw in &fabric.ssws[plane] {
                        handles.ssw_fadu_circuits.push(
                            b.add_circuit(ssw, fadu, cfg.ssw_fadu_gbps)
                                .expect("ssw-fadu circuit"),
                        );
                    }
                }
                MeshPattern::Spread => {
                    let fadus = grid_fadus.len();
                    let uplinks = cfg.uplinks_per_ssw.max(1);
                    for (plane, plane_ssws) in fabric.ssws.iter().enumerate() {
                        for (j, &ssw) in plane_ssws.iter().enumerate() {
                            let slot = plane * plane_ssws.len() + j;
                            for m in 0..uplinks {
                                if (slot * uplinks + m) % fadus == i {
                                    handles.ssw_fadu_circuits.push(
                                        b.add_circuit(ssw, fadu, cfg.ssw_fadu_gbps)
                                            .expect("ssw-fadu circuit"),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{build_fabric, FabricConfig};

    fn fabric_handles(b: &mut TopologyBuilder) -> FabricHandles {
        build_fabric(
            b,
            DcId(0),
            &FabricConfig {
                pods: 2,
                rsws_per_pod: 2,
                planes: 2,
                ssws_per_plane: 4,
                ..FabricConfig::default()
            },
        )
    }

    #[test]
    fn build_counts() {
        let cfg = HgridConfig::v1(3, 2, 2);
        let mut b = TopologyBuilder::new("h");
        let h = build_hgrid(&mut b, DcId(9), &cfg);
        assert_eq!(h.all_switches().len(), cfg.switch_count());
        assert_eq!(h.num_grids(), 3);
        assert_eq!(h.grid_switches(0).len(), 4);
        // 2x2 bipartite mesh per grid, 3 grids.
        assert_eq!(h.intra_grid_circuits.len(), 12);
        assert_eq!(b.num_circuits(), 12);
    }

    #[test]
    fn plane_aligned_meshes_one_plane_per_fadu() {
        let mut b = TopologyBuilder::new("h");
        let fab = fabric_handles(&mut b);
        let cfg = HgridConfig::v1(1, 2, 1);
        let mut h = build_hgrid(&mut b, DcId(0), &cfg);
        connect_hgrid_to_fabric(&mut b, &mut h, &fab, &cfg);
        let t = b.build();
        // FADU 0 -> all 4 SSWs of plane 0, none of plane 1.
        let fadu0 = h.fadus[0][0];
        for &ssw in &fab.ssws[0] {
            assert_eq!(t.circuits_between(ssw, fadu0).len(), 1);
        }
        for &ssw in &fab.ssws[1] {
            assert_eq!(t.circuits_between(ssw, fadu0).len(), 0);
        }
        assert_eq!(h.ssw_fadu_circuits.len(), 2 * 4);
    }

    #[test]
    fn spread_meshes_across_all_planes() {
        let mut b = TopologyBuilder::new("h");
        let fab = fabric_handles(&mut b);
        let cfg = HgridConfig::v2(1, 2, 1);
        let mut h = build_hgrid(&mut b, DcId(0), &cfg);
        connect_hgrid_to_fabric(&mut b, &mut h, &fab, &cfg);
        let t = b.build();
        // FADU 0 takes SSW indices {0, 2} of *each* plane (stride 2).
        let fadu0 = h.fadus[0][0];
        for plane in 0..2 {
            assert_eq!(t.circuits_between(fab.ssws[plane][0], fadu0).len(), 1);
            assert_eq!(t.circuits_between(fab.ssws[plane][1], fadu0).len(), 0);
            assert_eq!(t.circuits_between(fab.ssws[plane][2], fadu0).len(), 1);
            assert_eq!(t.circuits_between(fab.ssws[plane][3], fadu0).len(), 0);
        }
    }

    #[test]
    fn spread_covers_every_ssw_exactly_once_per_grid() {
        let mut b = TopologyBuilder::new("h");
        let fab = fabric_handles(&mut b);
        let cfg = HgridConfig::v2(2, 2, 1);
        let mut h = build_hgrid(&mut b, DcId(0), &cfg);
        connect_hgrid_to_fabric(&mut b, &mut h, &fab, &cfg);
        let t = b.build();
        // Every SSW must have exactly one uplink per grid = 2 uplinks.
        for ssw in fab.all_ssws() {
            let uplinks = t
                .neighbors(ssw)
                .iter()
                .filter(|&&(_, far)| t.switch(far).role == SwitchRole::Fadu)
                .count();
            assert_eq!(uplinks, 2, "ssw {ssw} uplink count");
        }
    }

    #[test]
    fn v1_and_v2_presets_differ_in_generation_and_mesh() {
        let v1 = HgridConfig::v1(2, 2, 1);
        let v2 = HgridConfig::v2(2, 4, 2);
        assert_eq!(v1.generation, Generation::V1);
        assert_eq!(v2.generation, Generation::V2);
        assert_eq!(v1.mesh, MeshPattern::PlaneAligned);
        assert_eq!(v2.mesh, MeshPattern::Spread);
        assert!(v2.ssw_fadu_gbps < v1.ssw_fadu_gbps, "v2 units are smaller");
    }
}
