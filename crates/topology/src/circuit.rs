//! Circuits: bidirectional links between two switches with a capacity.

use crate::ids::{CircuitId, SwitchId};
use serde::{Deserialize, Serialize};

/// A bidirectional circuit between two switches.
///
/// Capacities are in Gbps. Production circuits at Meta are reported in Tbps
/// aggregates (Table 1); generators in this crate emit per-circuit capacities
/// in the 100–800 Gbps range so that layer aggregates land in the paper's
/// Tbps ranges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    /// Dense identifier within the owning topology.
    pub id: CircuitId,
    /// One endpoint (by convention the lower-layer switch).
    pub a: SwitchId,
    /// Other endpoint (by convention the upper-layer switch).
    pub b: SwitchId,
    /// Capacity in Gbps.
    pub capacity_gbps: f64,
    /// Routing hop weight. Ordinary circuits weigh [`Circuit::HOP`]; relay
    /// layers that routing policy treats as transparent (the MA/DMAG layer,
    /// whose two-circuit FAUU→MA→EB path must cost the same as a direct
    /// FAUU→EB circuit — the paper's §7.1 "temporary routing
    /// configurations" under a pure-ECMP substrate) weigh half of it.
    #[serde(default = "Circuit::default_hop_weight")]
    pub hop_weight: u8,
    /// Optional WCMP routing weight override. Production WCMP weights are
    /// *configured* (derived from designed shares), not read off the
    /// physical capacity; `None` falls back to `capacity_gbps`.
    #[serde(default)]
    pub routing_weight: Option<f64>,
}

impl Circuit {
    /// Hop weight of an ordinary circuit.
    pub const HOP: u8 = 2;
    /// Hop weight of a transparent-relay circuit (half an ordinary hop).
    pub const HALF_HOP: u8 = 1;

    fn default_hop_weight() -> u8 {
        Circuit::HOP
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    /// Panics if `end` is not an endpoint of this circuit.
    #[inline]
    pub fn other_end(&self, end: SwitchId) -> SwitchId {
        if end == self.a {
            self.b
        } else if end == self.b {
            self.a
        } else {
            panic!("{end} is not an endpoint of {}", self.id);
        }
    }

    /// True if `s` is one of this circuit's endpoints.
    #[inline]
    pub fn touches(&self, s: SwitchId) -> bool {
        self.a == s || self.b == s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ckt() -> Circuit {
        Circuit {
            id: CircuitId(0),
            a: SwitchId(1),
            b: SwitchId(2),
            capacity_gbps: 400.0,
            hop_weight: Circuit::HOP,
            routing_weight: None,
        }
    }

    #[test]
    fn other_end_flips() {
        let c = ckt();
        assert_eq!(c.other_end(SwitchId(1)), SwitchId(2));
        assert_eq!(c.other_end(SwitchId(2)), SwitchId(1));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_end_rejects_non_endpoint() {
        ckt().other_end(SwitchId(9));
    }

    #[test]
    fn touches_endpoints_only() {
        let c = ckt();
        assert!(c.touches(SwitchId(1)));
        assert!(c.touches(SwitchId(2)));
        assert!(!c.touches(SwitchId(3)));
    }
}
