//! # klotski-topology
//!
//! Datacenter-network topology substrate for the Klotski migration planner
//! (SIGCOMM 2023). This crate models Meta-style multi-layer DCNs:
//!
//! - **Switch roles** across eight layers (§2.1 of the paper): rack switches
//!   (RSW), fabric switches (FSW), spine switches (SSW), the disaggregated
//!   fabric-aggregation layer (FADU/FAUU sub-switches of HGRID), the metro
//!   aggregation layer (MA, "DMAG"), and the backbone boundary (EB, DR, EBB).
//! - **Circuits** with capacities in Gbps connecting switches.
//! - **Generators** for fabrics (pods/planes), HGRID v1/v2 grids, DMAG, and
//!   backbone attachment, composed into datacenters and regions.
//! - **Presets** matching the evaluation topologies A–E of the paper
//!   (Table 3), plus the E-DMAG and E-SSW migration variants.
//!
//! The topology is an *immutable union graph*: migrations never mutate the
//! graph itself, they flip activation bits in a [`NetState`] overlay. This is
//! what makes Klotski's compact state representation sound — the topology
//! reachable from a given multiset of finished actions is unique.
//!
//! ```
//! use klotski_topology::presets::{self, PresetId};
//!
//! let preset = presets::build(PresetId::A);
//! let topo = &preset.topology;
//! assert!(topo.num_switches() > 0);
//! // Structural invariants hold on the union graph.
//! topo.validate().unwrap();
//! ```

pub mod bitset;
pub mod circuit;
pub mod csr;
pub mod dc;
pub mod dot;
pub mod error;
pub mod fabric;
pub mod graph;
pub mod hgrid;
pub mod ids;
pub mod ma;
pub mod netstate;
pub mod presets;
pub mod region;
pub mod stats;
pub mod switch;

pub use bitset::BitSet;
pub use circuit::Circuit;
pub use csr::{CsrEdge, CsrGraph};
pub use error::TopologyError;
pub use graph::{Topology, TopologyBuilder};
pub use ids::{CircuitId, DcId, GridId, PlaneId, PodId, SwitchId};
pub use netstate::NetState;
pub use stats::TopologyStats;
pub use switch::{Generation, Switch, SwitchRole};
