//! Aggregate topology statistics, used by Table 1 / Table 3 reporting.

use crate::graph::Topology;
use crate::switch::SwitchRole;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Per-role and aggregate counts of a topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyStats {
    /// Switch counts keyed by role name (BTreeMap for stable ordering).
    pub switches_by_role: BTreeMap<String, usize>,
    /// Total switch count.
    pub total_switches: usize,
    /// Total circuit count.
    pub total_circuits: usize,
    /// Total capacity in Gbps.
    pub total_capacity_gbps: f64,
    /// Number of distinct datacenters observed.
    pub datacenters: usize,
    /// Number of distinct spine planes observed.
    pub planes: usize,
}

impl TopologyStats {
    /// Computes statistics for a topology.
    pub fn compute(topo: &Topology) -> Self {
        let mut switches_by_role = BTreeMap::new();
        let mut dcs = std::collections::BTreeSet::new();
        let mut planes = std::collections::BTreeSet::new();
        for s in topo.switches() {
            *switches_by_role
                .entry(s.role.as_str().to_string())
                .or_insert(0) += 1;
            dcs.insert(s.dc);
            if let Some(p) = s.plane {
                planes.insert(p);
            }
        }
        Self {
            switches_by_role,
            total_switches: topo.num_switches(),
            total_circuits: topo.num_circuits(),
            total_capacity_gbps: topo.total_capacity_gbps(),
            datacenters: dcs.len(),
            planes: planes.len(),
        }
    }

    /// Count of switches with a given role.
    pub fn role_count(&self, role: SwitchRole) -> usize {
        self.switches_by_role
            .get(role.as_str())
            .copied()
            .unwrap_or(0)
    }
}

impl fmt::Display for TopologyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "switches={} circuits={} capacity={:.1} Tbps dcs={} planes={}",
            self.total_switches,
            self.total_circuits,
            self.total_capacity_gbps / 1000.0,
            self.datacenters,
            self.planes
        )?;
        for (role, count) in &self.switches_by_role {
            writeln!(f, "  {role:<5} {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::{SwitchSpec, TopologyBuilder};
    use crate::ids::{DcId, PlaneId};
    use crate::switch::{Generation, SwitchRole};

    #[test]
    fn stats_count_roles_dcs_planes() {
        let mut b = TopologyBuilder::new("t");
        let r = b.add_switch(SwitchSpec::new(
            SwitchRole::Rsw,
            Generation::V1,
            DcId(0),
            16,
        ));
        let f1 = b.add_switch(
            SwitchSpec::new(SwitchRole::Fsw, Generation::V1, DcId(0), 16).plane(PlaneId(0)),
        );
        let f2 = b.add_switch(
            SwitchSpec::new(SwitchRole::Fsw, Generation::V1, DcId(1), 16).plane(PlaneId(1)),
        );
        b.add_circuit(r, f1, 100.0).unwrap();
        b.add_circuit(r, f2, 100.0).unwrap();
        let t = b.build();
        let s = t.stats();
        assert_eq!(s.total_switches, 3);
        assert_eq!(s.total_circuits, 2);
        assert_eq!(s.role_count(SwitchRole::Fsw), 2);
        assert_eq!(s.role_count(SwitchRole::Rsw), 1);
        assert_eq!(s.role_count(SwitchRole::Ebb), 0);
        assert_eq!(s.datacenters, 2);
        assert_eq!(s.planes, 2);
        assert!((s.total_capacity_gbps - 200.0).abs() < 1e-9);
        let shown = s.to_string();
        assert!(shown.contains("FSW") && shown.contains("switches=3"));
    }
}
