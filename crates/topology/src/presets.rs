//! Evaluation topology presets A–E (+ E-DMAG, E-SSW) per Table 3.
//!
//! The paper evaluates five production topologies in ascending size, from
//! ~40 switches / ~80 circuits (A) to ~10,000 switches / ~100,000 circuits
//! (E, comparable to a full Meta DCN region), plus two variants of E that
//! differ only in migration type. Exact production blueprints are
//! proprietary; these generators reproduce the published scale and the
//! architecture of §2.1 (4–8 spine planes, up to 36 SSWs per plane, grids of
//! FADU/FAUU sub-switches, EB/DR/EBB backbone attachment).
//!
//! Because the planner's search structure depends on the *FA-layer shape*
//! (grids, generations, meshing) and not on fabric width, the
//! [`build_for_bench`] constructor shrinks only the fabric of the D/E
//! presets when `KLOTSKI_FULL_SCALE` is unset, keeping the planning problem
//! identical while making satisfiability checks laptop-friendly.

use crate::fabric::FabricConfig;
use crate::graph::Topology;
use crate::hgrid::HgridConfig;
use crate::ma::{BackboneConfig, MaConfig};
use crate::region::{build_region, RegionConfig, RegionHandles};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which evaluation topology to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PresetId {
    /// ~40 switches, ~80 circuits, ~50 actions. HGRID v1→v2.
    A,
    /// ~100 switches, ~600 circuits, ~100 actions. HGRID v1→v2.
    B,
    /// ~600 switches, ~8,000 circuits, ~300 actions. HGRID v1→v2.
    C,
    /// ~1,000 switches, ~20,000 circuits, ~300 actions. HGRID v1→v2.
    D,
    /// ~10,000 switches, ~100,000 circuits, ~700 actions. HGRID v1→v2.
    E,
    /// Topology E under a DMAG migration (~100 actions).
    EDmag,
    /// Topology E under an SSW forklift migration (~300 actions).
    ESsw,
}

impl PresetId {
    /// All presets in Table 3 order.
    pub const ALL: [PresetId; 7] = [
        PresetId::A,
        PresetId::B,
        PresetId::C,
        PresetId::D,
        PresetId::E,
        PresetId::EDmag,
        PresetId::ESsw,
    ];

    /// The five HGRID-scalability presets (Figure 8).
    pub const SCALABILITY: [PresetId; 5] = [
        PresetId::A,
        PresetId::B,
        PresetId::C,
        PresetId::D,
        PresetId::E,
    ];
}

impl fmt::Display for PresetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PresetId::A => "A",
            PresetId::B => "B",
            PresetId::C => "C",
            PresetId::D => "D",
            PresetId::E => "E",
            PresetId::EDmag => "E-DMAG",
            PresetId::ESsw => "E-SSW",
        };
        f.write_str(s)
    }
}

/// A built evaluation topology: union graph + element-group handles.
#[derive(Debug, Clone)]
pub struct Preset {
    pub id: PresetId,
    pub config: RegionConfig,
    pub topology: Topology,
    pub handles: RegionHandles,
}

fn fabric(pods: usize, rsws: usize, planes: usize, ssws: usize) -> FabricConfig {
    FabricConfig {
        pods,
        rsws_per_pod: rsws,
        planes,
        ssws_per_plane: ssws,
        // Per-RSW and per-FSW uplink capacity is held constant across
        // plane counts so the fabric never becomes the bottleneck of an
        // FA-layer migration (the paper's migrations stress the FA layer;
        // fabric hotspots would mask the constraints under study).
        rsw_fsw_gbps: 3200.0 / planes as f64,
        fsw_ssw_gbps: 6400.0 / planes as f64,
        ..FabricConfig::default()
    }
}

fn hgrid_v2(grids: usize, fadus: usize, fauus: usize, uplinks: usize) -> HgridConfig {
    HgridConfig {
        uplinks_per_ssw: uplinks,
        ..HgridConfig::v2(grids, fadus, fauus)
    }
}

fn backbone(ebs: usize, drs: usize, ebbs: usize) -> BackboneConfig {
    BackboneConfig {
        ebs,
        drs,
        ebbs,
        ..BackboneConfig::default()
    }
}

/// Region config for a preset at full (paper) scale.
pub fn config(id: PresetId) -> RegionConfig {
    match id {
        PresetId::A => RegionConfig {
            name: "topo-A".into(),
            dcs: vec![fabric(3, 3, 2, 3)],
            hgrid_v1: HgridConfig::v1(3, 3, 2),
            hgrid_v2: Some(hgrid_v2(6, 3, 2, 2)),
            backbone: backbone(3, 2, 2),
            dmag: None,
            ssw_forklift_dcs: vec![],
        },
        PresetId::B => RegionConfig {
            name: "topo-B".into(),
            dcs: vec![fabric(8, 6, 4, 4)],
            hgrid_v1: HgridConfig::v1(4, 4, 2),
            hgrid_v2: Some(hgrid_v2(8, 6, 3, 2)),
            backbone: backbone(4, 2, 2),
            dmag: None,
            ssw_forklift_dcs: vec![],
        },
        PresetId::C => RegionConfig {
            name: "topo-C".into(),
            dcs: vec![fabric(12, 12, 4, 8); 2],
            hgrid_v1: HgridConfig::v1(6, 8, 4),
            hgrid_v2: Some(hgrid_v2(12, 12, 6, 2)),
            backbone: backbone(6, 3, 3),
            dmag: None,
            ssw_forklift_dcs: vec![],
        },
        PresetId::D => RegionConfig {
            name: "topo-D".into(),
            dcs: vec![fabric(32, 20, 4, 16); 2],
            hgrid_v1: HgridConfig::v1(6, 8, 4),
            hgrid_v2: Some(hgrid_v2(12, 12, 6, 2)),
            backbone: backbone(6, 3, 3),
            dmag: None,
            ssw_forklift_dcs: vec![],
        },
        PresetId::E => RegionConfig {
            name: "topo-E".into(),
            dcs: vec![fabric(48, 40, 8, 36); 4],
            hgrid_v1: HgridConfig::v1(8, 16, 8),
            hgrid_v2: Some(hgrid_v2(16, 20, 10, 2)),
            backbone: backbone(8, 4, 4),
            dmag: None,
            ssw_forklift_dcs: vec![],
        },
        PresetId::EDmag => RegionConfig {
            name: "topo-E-DMAG".into(),
            dmag: Some(MaConfig {
                mas: 48,
                ebs_per_ma: 4,
                ..MaConfig::default()
            }),
            hgrid_v2: None,
            ..config(PresetId::E)
        },
        PresetId::ESsw => RegionConfig {
            name: "topo-E-SSW".into(),
            hgrid_v2: None,
            ssw_forklift_dcs: vec![0],
            ..config(PresetId::E)
        },
    }
}

/// Builds a preset at full (paper) scale.
pub fn build(id: PresetId) -> Preset {
    let config = config(id);
    let (topology, handles) = build_region(&config);
    Preset {
        id,
        config,
        topology,
        handles,
    }
}

/// True when the environment requests full-scale D/E topologies.
pub fn full_scale_requested() -> bool {
    std::env::var("KLOTSKI_FULL_SCALE").map(|v| v != "0" && !v.is_empty()) == Ok(true)
}

/// Fabric-only shrink factor applied by [`build_for_bench`] per preset.
///
/// Only the fabric (pods, RSWs per pod, SSWs per plane) shrinks; plane
/// count, the FA layer, the backbone, and the migration union are identical
/// to full scale, so block structure, action types, and the feasible search
/// region do not change — only the cost of each satisfiability check.
pub fn bench_fabric_shrink(id: PresetId) -> f64 {
    if full_scale_requested() {
        return 1.0;
    }
    match id {
        PresetId::A | PresetId::B | PresetId::C => 1.0,
        PresetId::D => 0.5,
        PresetId::E | PresetId::EDmag | PresetId::ESsw => 0.25,
    }
}

/// Builds a preset for benchmarking: full scale for A–C, fabric shrunk for
/// D/E unless `KLOTSKI_FULL_SCALE=1`.
pub fn build_for_bench(id: PresetId) -> Preset {
    let shrink = bench_fabric_shrink(id);
    let mut cfg = config(id);
    if shrink < 1.0 {
        for fc in &mut cfg.dcs {
            fc.pods = ((fc.pods as f64 * shrink).round() as usize).max(2);
            fc.rsws_per_pod = ((fc.rsws_per_pod as f64 * shrink).round() as usize).max(2);
            fc.ssws_per_plane = ((fc.ssws_per_plane as f64 * shrink).round() as usize).max(2);
        }
        cfg.name.push_str("-bench");
    }
    let (topology, handles) = build_region(&cfg);
    Preset {
        id,
        config: cfg,
        topology,
        handles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netstate::NetState;
    use crate::switch::Generation;

    #[test]
    fn preset_a_is_table3_sized() {
        let p = build(PresetId::A);
        p.topology.validate().unwrap();
        // Base network (v1 world) switch count: total minus v2 FA layer.
        let v2 = p.handles.hgrid_v2_switches().len();
        let base = p.topology.num_switches() - v2;
        assert!(
            (30..=55).contains(&base),
            "topo A base switches = {base}, want ~40"
        );
        // Switch-level action count: v1 FA drains + v2 FA undrains.
        let actions = p.handles.hgrid_v1_switches().len() + v2;
        assert!(
            (35..=60).contains(&actions),
            "topo A actions = {actions}, want ~50"
        );
    }

    #[test]
    fn presets_ascend_in_size() {
        let sizes: Vec<usize> = [PresetId::A, PresetId::B, PresetId::C]
            .iter()
            .map(|&id| build(id).topology.num_switches())
            .collect();
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
    }

    #[test]
    fn hgrid_presets_have_both_generations() {
        for id in [PresetId::A, PresetId::B, PresetId::C] {
            let p = build(id);
            assert!(!p.handles.hgrid_v1_switches().is_empty());
            assert!(!p.handles.hgrid_v2_switches().is_empty(), "{id}");
        }
    }

    #[test]
    fn edmag_has_ma_layer_and_no_v2() {
        let p = build_for_bench(PresetId::EDmag);
        assert!(p.handles.ma.is_some());
        assert!(p.handles.hgrid_v2.is_none());
        assert_eq!(p.handles.ma.as_ref().unwrap().all_mas().len(), 48);
    }

    #[test]
    fn essw_forklifts_exactly_one_dc() {
        let p = build_for_bench(PresetId::ESsw);
        assert!(!p.handles.ssw_v2[0].is_empty());
        for dc in 1..p.handles.ssw_v2.len() {
            assert!(p.handles.ssw_v2[dc].is_empty());
        }
        for s in p.handles.ssw_v2_switches() {
            assert_eq!(p.topology.switch(s).generation, Generation::V2);
        }
    }

    #[test]
    fn bench_build_preserves_fa_layer() {
        let full = config(PresetId::E);
        let bench = build_for_bench(PresetId::E);
        assert_eq!(bench.config.hgrid_v1, full.hgrid_v1);
        assert_eq!(bench.config.hgrid_v2, full.hgrid_v2);
        assert_eq!(bench.config.backbone, full.backbone);
        assert!(bench.config.dcs[0].pods < full.dcs[0].pods);
        assert_eq!(bench.config.dcs[0].planes, full.dcs[0].planes);
    }

    #[test]
    fn initial_world_fits_port_budgets() {
        // Draining the not-yet-installed generation must leave a
        // port-feasible network for every preset (at bench scale).
        for id in [PresetId::A, PresetId::B, PresetId::EDmag] {
            let p = build_for_bench(id);
            let mut s = NetState::all_up(&p.topology);
            for sw in p.handles.hgrid_v2_switches() {
                s.drain_switch(&p.topology, sw);
            }
            for sw in p.handles.ssw_v2_switches() {
                s.drain_switch(&p.topology, sw);
            }
            if let Some(ma) = &p.handles.ma {
                for sw in ma.all_mas() {
                    s.drain_switch(&p.topology, sw);
                }
            }
            assert!(
                p.topology.port_violations(&s).is_empty(),
                "{id} initial world violates ports"
            );
        }
    }

    #[test]
    fn display_matches_table3_labels() {
        assert_eq!(PresetId::EDmag.to_string(), "E-DMAG");
        assert_eq!(PresetId::ESsw.to_string(), "E-SSW");
        assert_eq!(PresetId::ALL.len(), 7);
    }
}
