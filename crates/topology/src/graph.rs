//! The union topology graph and its builder.
//!
//! A [`Topology`] is immutable once built. It contains *every* switch and
//! circuit that exists at any point of a migration — old-generation hardware
//! that will be drained and new-generation hardware that will be undrained.
//! Which elements are currently live is tracked separately by
//! [`NetState`](crate::netstate::NetState). This split is what makes
//! Klotski's compact state representation (§4.2 of the paper) sound: the
//! intermediate network is a pure function of which actions finished, never
//! of their order.

use crate::circuit::Circuit;
use crate::error::TopologyError;
use crate::ids::{CircuitId, DcId, GridId, PlaneId, PodId, SwitchId};
use crate::stats::TopologyStats;
use crate::switch::{Generation, Switch, SwitchRole};
use serde::{Deserialize, Serialize};

/// An immutable multi-layer DCN graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    name: String,
    switches: Vec<Switch>,
    circuits: Vec<Circuit>,
    /// Adjacency: for each switch, the incident circuits and far endpoints.
    adj: Vec<Vec<(CircuitId, SwitchId)>>,
}

impl Topology {
    /// Topology name (preset id or NPD-supplied name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of switches in the union graph.
    #[inline]
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of circuits in the union graph.
    #[inline]
    pub fn num_circuits(&self) -> usize {
        self.circuits.len()
    }

    /// Looks up a switch record.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn switch(&self, id: SwitchId) -> &Switch {
        &self.switches[id.index()]
    }

    /// Looks up a circuit record.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn circuit(&self, id: CircuitId) -> &Circuit {
        &self.circuits[id.index()]
    }

    /// All switches in id order.
    pub fn switches(&self) -> &[Switch] {
        &self.switches
    }

    /// All circuits in id order.
    pub fn circuits(&self) -> &[Circuit] {
        &self.circuits
    }

    /// Incident circuits of `id` with their far endpoints, in insertion order.
    #[inline]
    pub fn neighbors(&self, id: SwitchId) -> &[(CircuitId, SwitchId)] {
        &self.adj[id.index()]
    }

    /// Union-graph degree of a switch (count of incident circuits).
    #[inline]
    pub fn degree(&self, id: SwitchId) -> usize {
        self.adj[id.index()].len()
    }

    /// All switches with the given role, in id order.
    pub fn switches_by_role(&self, role: SwitchRole) -> impl Iterator<Item = &Switch> + '_ {
        self.switches.iter().filter(move |s| s.role == role)
    }

    /// All switches with the given role and generation, in id order.
    pub fn switches_by_role_gen(
        &self,
        role: SwitchRole,
        generation: Generation,
    ) -> impl Iterator<Item = &Switch> + '_ {
        self.switches
            .iter()
            .filter(move |s| s.role == role && s.generation == generation)
    }

    /// Circuits whose endpoints are exactly `{a, b}` (there may be several
    /// parallel circuits between a pair).
    pub fn circuits_between(&self, a: SwitchId, b: SwitchId) -> Vec<CircuitId> {
        self.adj[a.index()]
            .iter()
            .filter(|&&(_, far)| far == b)
            .map(|&(c, _)| c)
            .collect()
    }

    /// Sum of all circuit capacities, in Gbps.
    pub fn total_capacity_gbps(&self) -> f64 {
        self.circuits.iter().map(|c| c.capacity_gbps).sum()
    }

    /// Aggregate statistics (per-role counts, capacities).
    pub fn stats(&self) -> TopologyStats {
        TopologyStats::compute(self)
    }

    /// Overrides a switch's physical port budget. Migration-spec builders
    /// use this to derive budgets that reflect real chassis sizing: enough
    /// ports for the old world, the new world, and a bounded transient
    /// overlap — which is what makes the Eq. 6 port constraints bind
    /// mid-migration ("we often need to decommission some circuits first to
    /// free up the ports", §2.3).
    pub fn set_max_ports(&mut self, id: SwitchId, max_ports: u16) {
        self.switches[id.index()].max_ports = max_ports;
    }

    /// Overrides a circuit's capacity. Migration-spec builders use this to
    /// normalize the capacity of circuits *outside* the migration scope so
    /// they carry their current traffic within bounds — which is
    /// tautologically true of a working production network and must be made
    /// true of synthetic ones.
    ///
    /// # Panics
    /// Panics on non-positive or non-finite capacities.
    pub fn set_capacity(&mut self, id: CircuitId, capacity_gbps: f64) {
        assert!(
            capacity_gbps.is_finite() && capacity_gbps > 0.0,
            "capacity must be finite and positive"
        );
        self.circuits[id.index()].capacity_gbps = capacity_gbps;
    }

    /// Sets a WCMP routing-weight override on a built topology; see
    /// [`Circuit::routing_weight`].
    pub fn set_routing_weight(&mut self, id: CircuitId, weight: f64) {
        assert!(
            weight.is_finite() && weight > 0.0,
            "weight must be positive"
        );
        self.circuits[id.index()].routing_weight = Some(weight);
    }

    /// Validates structural invariants of the union graph: no isolated
    /// switches. Self-loops and bad capacities are rejected at build time.
    ///
    /// Port budgets are deliberately NOT checked here: a migration union
    /// graph contains both hardware generations wired to the same neighbors,
    /// so the union degree of a shared switch legitimately exceeds its
    /// chassis ports. The port constraint (Eq. 6 of the paper) binds on the
    /// *active* state — see [`Topology::port_violations`].
    pub fn validate(&self) -> Result<(), TopologyError> {
        for s in &self.switches {
            if self.degree(s.id) == 0 {
                return Err(TopologyError::Isolated(s.id));
            }
        }
        Ok(())
    }

    /// True if any live switch exceeds its port budget in `state` —
    /// the boolean form of [`port_violations`](Self::port_violations),
    /// allocation-free and early-exiting for the satisfiability hot path.
    pub fn has_port_violation(&self, state: &crate::netstate::NetState) -> bool {
        self.switches.iter().any(|s| {
            state.switch_up(s.id) && state.active_degree(self, s.id) > s.max_ports as usize
        })
    }

    /// Returns every switch whose count of *usable* incident circuits in
    /// `state` exceeds its physical port budget (the Eq. 6 constraint).
    pub fn port_violations(&self, state: &crate::netstate::NetState) -> Vec<TopologyError> {
        let mut violations = Vec::new();
        for s in &self.switches {
            if !state.switch_up(s.id) {
                continue;
            }
            let deg = state.active_degree(self, s.id);
            if deg > s.max_ports as usize {
                violations.push(TopologyError::PortOverflow {
                    switch: s.id,
                    degree: deg,
                    max_ports: s.max_ports,
                });
            }
        }
        violations
    }

    /// Validates the union graph as a *standalone* network (no pending
    /// migration): structural invariants plus port budgets with everything
    /// active. Use this for single-generation topologies.
    pub fn validate_standalone(&self) -> Result<(), TopologyError> {
        self.validate()?;
        let all_up = crate::netstate::NetState::all_up(self);
        match self.port_violations(&all_up).into_iter().next() {
            Some(v) => Err(v),
            None => Ok(()),
        }
    }
}

/// Incremental builder for [`Topology`].
///
/// Generators (fabric, HGRID, DMAG, backbone) all append into one shared
/// builder so that cross-layer circuits can reference switches created by a
/// previous stage.
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    name: String,
    switches: Vec<Switch>,
    circuits: Vec<Circuit>,
    adj: Vec<Vec<(CircuitId, SwitchId)>>,
}

/// Parameters for [`TopologyBuilder::add_switch`].
#[derive(Debug, Clone)]
pub struct SwitchSpec {
    pub role: SwitchRole,
    pub generation: Generation,
    pub dc: DcId,
    pub plane: Option<PlaneId>,
    pub pod: Option<PodId>,
    pub grid: Option<GridId>,
    pub max_ports: u16,
}

impl SwitchSpec {
    /// Convenience constructor with no positional coordinates.
    pub fn new(role: SwitchRole, generation: Generation, dc: DcId, max_ports: u16) -> Self {
        Self {
            role,
            generation,
            dc,
            plane: None,
            pod: None,
            grid: None,
            max_ports,
        }
    }

    /// Sets the plane coordinate.
    pub fn plane(mut self, plane: PlaneId) -> Self {
        self.plane = Some(plane);
        self
    }

    /// Sets the pod coordinate.
    pub fn pod(mut self, pod: PodId) -> Self {
        self.pod = Some(pod);
        self
    }

    /// Sets the grid coordinate.
    pub fn grid(mut self, grid: GridId) -> Self {
        self.grid = Some(grid);
        self
    }
}

impl TopologyBuilder {
    /// Starts an empty builder.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            switches: Vec::new(),
            circuits: Vec::new(),
            adj: Vec::new(),
        }
    }

    /// Number of switches added so far.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of circuits added so far.
    pub fn num_circuits(&self) -> usize {
        self.circuits.len()
    }

    /// Read access to a switch added earlier.
    pub fn switch(&self, id: SwitchId) -> &Switch {
        &self.switches[id.index()]
    }

    /// Appends a switch and returns its id. The ordinal used in the generated
    /// name is the count of previously added switches with the same
    /// (dc, role, generation) triple.
    pub fn add_switch(&mut self, spec: SwitchSpec) -> SwitchId {
        let id = SwitchId::from_index(self.switches.len());
        let ordinal = self
            .switches
            .iter()
            .filter(|s| s.dc == spec.dc && s.role == spec.role && s.generation == spec.generation)
            .count();
        let name = Switch::canonical_name(
            spec.dc,
            spec.role,
            spec.generation,
            spec.plane,
            spec.pod,
            spec.grid,
            ordinal,
        );
        self.switches.push(Switch {
            id,
            role: spec.role,
            generation: spec.generation,
            dc: spec.dc,
            plane: spec.plane,
            pod: spec.pod,
            grid: spec.grid,
            max_ports: spec.max_ports,
            name,
        });
        self.adj.push(Vec::new());
        id
    }

    /// Appends a circuit between two existing switches.
    ///
    /// Rejects self-loops, unknown endpoints, and non-positive capacities.
    pub fn add_circuit(
        &mut self,
        a: SwitchId,
        b: SwitchId,
        capacity_gbps: f64,
    ) -> Result<CircuitId, TopologyError> {
        if a.index() >= self.switches.len() {
            return Err(TopologyError::UnknownSwitch(a));
        }
        if b.index() >= self.switches.len() {
            return Err(TopologyError::UnknownSwitch(b));
        }
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        let id = CircuitId::from_index(self.circuits.len());
        if !(capacity_gbps.is_finite() && capacity_gbps > 0.0) {
            return Err(TopologyError::BadCapacity {
                circuit: id,
                capacity: capacity_gbps,
            });
        }
        self.circuits.push(Circuit {
            id,
            a,
            b,
            capacity_gbps,
            hop_weight: Circuit::HOP,
            routing_weight: None,
        });
        self.adj[a.index()].push((id, b));
        self.adj[b.index()].push((id, a));
        Ok(id)
    }

    /// Marks a circuit as a transparent relay (half hop weight); see
    /// [`Circuit::hop_weight`].
    pub fn set_half_hop(&mut self, id: CircuitId) {
        self.circuits[id.index()].hop_weight = Circuit::HALF_HOP;
    }

    /// Sets a WCMP routing-weight override; see [`Circuit::routing_weight`].
    pub fn set_routing_weight(&mut self, id: CircuitId, weight: f64) {
        assert!(
            weight.is_finite() && weight > 0.0,
            "weight must be positive"
        );
        self.circuits[id.index()].routing_weight = Some(weight);
    }

    /// Snapshot of a switch's current neighbors: (far endpoint, capacity)
    /// per incident circuit. Used to mirror wiring onto a new-generation
    /// twin while the builder is being mutated.
    pub fn neighbor_snapshot(&self, of: SwitchId) -> Vec<(SwitchId, f64)> {
        self.adj[of.index()]
            .iter()
            .map(|&(c, far)| (far, self.circuits[c.index()].capacity_gbps))
            .collect()
    }

    /// Adds `count` parallel circuits between `a` and `b`.
    pub fn add_parallel_circuits(
        &mut self,
        a: SwitchId,
        b: SwitchId,
        capacity_gbps: f64,
        count: usize,
    ) -> Result<Vec<CircuitId>, TopologyError> {
        (0..count)
            .map(|_| self.add_circuit(a, b, capacity_gbps))
            .collect()
    }

    /// Finalizes the topology.
    pub fn build(self) -> Topology {
        Topology {
            name: self.name,
            switches: self.switches,
            circuits: self.circuits,
            adj: self.adj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(role: SwitchRole) -> SwitchSpec {
        SwitchSpec::new(role, Generation::V1, DcId(0), 64)
    }

    fn tiny() -> (Topology, SwitchId, SwitchId, SwitchId) {
        let mut b = TopologyBuilder::new("tiny");
        let rsw = b.add_switch(spec(SwitchRole::Rsw));
        let fsw = b.add_switch(spec(SwitchRole::Fsw));
        let ssw = b.add_switch(spec(SwitchRole::Ssw));
        b.add_circuit(rsw, fsw, 100.0).unwrap();
        b.add_circuit(fsw, ssw, 200.0).unwrap();
        (b.build(), rsw, fsw, ssw)
    }

    #[test]
    fn build_and_query() {
        let (t, rsw, fsw, ssw) = tiny();
        assert_eq!(t.name(), "tiny");
        assert_eq!(t.num_switches(), 3);
        assert_eq!(t.num_circuits(), 2);
        assert_eq!(t.degree(fsw), 2);
        assert_eq!(t.degree(rsw), 1);
        assert_eq!(t.neighbors(rsw)[0].1, fsw);
        assert_eq!(t.switch(ssw).role, SwitchRole::Ssw);
        assert!((t.total_capacity_gbps() - 300.0).abs() < 1e-9);
        t.validate().unwrap();
    }

    #[test]
    fn names_are_unique_per_coordinates() {
        let mut b = TopologyBuilder::new("t");
        let a = b.add_switch(spec(SwitchRole::Ssw));
        let c = b.add_switch(spec(SwitchRole::Ssw));
        assert_ne!(b.switch(a).name, b.switch(c).name);
        assert!(b.switch(a).name.contains("SSW"));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = TopologyBuilder::new("t");
        let a = b.add_switch(spec(SwitchRole::Rsw));
        assert_eq!(
            b.add_circuit(a, a, 100.0).unwrap_err(),
            TopologyError::SelfLoop(a)
        );
    }

    #[test]
    fn unknown_switch_rejected() {
        let mut b = TopologyBuilder::new("t");
        let a = b.add_switch(spec(SwitchRole::Rsw));
        let ghost = SwitchId(99);
        assert_eq!(
            b.add_circuit(a, ghost, 100.0).unwrap_err(),
            TopologyError::UnknownSwitch(ghost)
        );
    }

    #[test]
    fn bad_capacity_rejected() {
        let mut b = TopologyBuilder::new("t");
        let a = b.add_switch(spec(SwitchRole::Rsw));
        let c = b.add_switch(spec(SwitchRole::Fsw));
        assert!(matches!(
            b.add_circuit(a, c, 0.0),
            Err(TopologyError::BadCapacity { .. })
        ));
        assert!(matches!(
            b.add_circuit(a, c, f64::NAN),
            Err(TopologyError::BadCapacity { .. })
        ));
        assert!(matches!(
            b.add_circuit(a, c, -5.0),
            Err(TopologyError::BadCapacity { .. })
        ));
    }

    #[test]
    fn parallel_circuits() {
        let mut b = TopologyBuilder::new("t");
        let a = b.add_switch(spec(SwitchRole::Fadu));
        let c = b.add_switch(spec(SwitchRole::Fauu));
        let ids = b.add_parallel_circuits(a, c, 400.0, 3).unwrap();
        assert_eq!(ids.len(), 3);
        let t = b.build();
        assert_eq!(t.circuits_between(a, c).len(), 3);
        assert_eq!(t.circuits_between(c, a).len(), 3);
    }

    #[test]
    fn validate_detects_isolated() {
        let mut b = TopologyBuilder::new("t");
        b.add_switch(spec(SwitchRole::Rsw));
        let t = b.build();
        assert!(matches!(t.validate(), Err(TopologyError::Isolated(_))));
    }

    #[test]
    fn validate_detects_port_overflow() {
        let mut b = TopologyBuilder::new("t");
        let mut s = spec(SwitchRole::Fsw);
        s.max_ports = 1;
        let hub = b.add_switch(s);
        let x = b.add_switch(spec(SwitchRole::Rsw));
        let y = b.add_switch(spec(SwitchRole::Rsw));
        b.add_circuit(hub, x, 100.0).unwrap();
        b.add_circuit(hub, y, 100.0).unwrap();
        let t = b.build();
        t.validate().unwrap(); // structural validation ignores ports
        assert!(matches!(
            t.validate_standalone(),
            Err(TopologyError::PortOverflow { degree: 2, .. })
        ));
        // Draining one peer brings the hub back under budget.
        let mut state = crate::netstate::NetState::all_up(&t);
        state.drain_switch(&t, y);
        assert!(t.port_violations(&state).is_empty());
    }

    #[test]
    fn circuits_between_is_symmetric_and_exact() {
        let (t, rsw, fsw, ssw) = tiny();
        assert_eq!(t.circuits_between(rsw, fsw).len(), 1);
        assert_eq!(t.circuits_between(rsw, ssw).len(), 0);
    }
}
