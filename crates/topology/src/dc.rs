//! Per-datacenter composition: one building = one fabric.
//!
//! A *region* at Meta is a campus of six to seven buildings; each building
//! hosts a fabric. This module is the thin per-building layer; cross-building
//! aggregation lives in [`crate::region`].

use crate::fabric::{build_fabric, FabricConfig, FabricHandles};
use crate::graph::TopologyBuilder;
use crate::ids::DcId;
use serde::{Deserialize, Serialize};

/// Parameters of one datacenter building.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DatacenterConfig {
    /// The building's fabric.
    pub fabric: FabricConfig,
}

/// Builds one datacenter building into `b`.
pub fn build_datacenter(
    b: &mut TopologyBuilder,
    dc: DcId,
    cfg: &DatacenterConfig,
) -> FabricHandles {
    build_fabric(b, dc, &cfg.fabric)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datacenter_builds_its_fabric() {
        let mut b = TopologyBuilder::new("dc");
        let h = build_datacenter(&mut b, DcId(3), &DatacenterConfig::default());
        assert_eq!(h.dc, DcId(3));
        assert!(!h.rsws.is_empty());
        let t = b.build();
        assert!(t.switches().iter().all(|s| s.dc == DcId(3)));
    }
}
