//! Region composition: multiple datacenter fabrics under a shared FA layer
//! and backbone attachment, with optional migration unions.
//!
//! [`build_region`] produces the *union graph* for a migration: it can
//! contain both HGRID generations (HGRID v1→v2 migration), a not-yet-active
//! MA layer (DMAG migration), and/or a parallel second generation of SSWs
//! (SSW forklift migration). Which elements are live at the start/end of a
//! migration is decided by `klotski-core` from the returned
//! [`RegionHandles`].

use crate::fabric::{build_fabric, FabricConfig, FabricHandles};
use crate::graph::{Topology, TopologyBuilder};
use crate::hgrid::{build_hgrid, connect_hgrid_to_fabric, HgridConfig, HgridHandles};
use crate::ids::{CircuitId, DcId, SwitchId};
use crate::ma::{
    build_backbone, build_ma_layer, connect_fauus_to_ebs, BackboneConfig, BackboneHandles,
    MaConfig, MaHandles,
};
use crate::switch::Generation;
use serde::{Deserialize, Serialize};

/// Parameters of a region and of the migration union to embed in it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionConfig {
    /// Region name; becomes the topology name.
    pub name: String,
    /// One fabric config per datacenter building.
    pub dcs: Vec<FabricConfig>,
    /// Current-generation HGRID layer.
    pub hgrid_v1: HgridConfig,
    /// Target-generation HGRID layer (present for HGRID v1→v2 migrations).
    pub hgrid_v2: Option<HgridConfig>,
    /// Backbone attachment.
    pub backbone: BackboneConfig,
    /// MA (DMAG) layer to insert (present for DMAG migrations).
    pub dmag: Option<MaConfig>,
    /// Datacenters whose spine gets a parallel second generation of SSWs
    /// (SSW forklift migrations upgrade all SSWs of one DC at a time, §2.4).
    pub ssw_forklift_dcs: Vec<u16>,
}

/// Everything needed to identify migration element groups in the union graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionHandles {
    /// Per-building fabric handles.
    pub fabrics: Vec<FabricHandles>,
    /// Current-generation HGRID.
    pub hgrid_v1: HgridHandles,
    /// Target-generation HGRID, if part of the union.
    pub hgrid_v2: Option<HgridHandles>,
    /// Backbone routers.
    pub backbone: BackboneHandles,
    /// Direct v1-FAUU → EB circuits, grouped by EB (DMAG drains these
    /// per-EB, following the §5 organization policy).
    pub fauu_eb_v1_by_eb: Vec<Vec<CircuitId>>,
    /// Direct v2-FAUU → EB circuits (flat; activated with the v2 layer).
    pub fauu_eb_v2: Vec<CircuitId>,
    /// MA layer, if part of the union.
    pub ma: Option<MaHandles>,
    /// Second-generation SSWs as `ssw_v2[dc][plane][i]`, if part of the union.
    pub ssw_v2: Vec<Vec<Vec<SwitchId>>>,
    /// Pseudo-DC hosting the aggregation and backbone hardware.
    pub agg_dc: DcId,
}

impl RegionHandles {
    /// All switches of the v1 HGRID layer.
    pub fn hgrid_v1_switches(&self) -> Vec<SwitchId> {
        self.hgrid_v1.all_switches()
    }

    /// All switches of the v2 HGRID layer (empty if absent).
    pub fn hgrid_v2_switches(&self) -> Vec<SwitchId> {
        self.hgrid_v2
            .as_ref()
            .map(|h| h.all_switches())
            .unwrap_or_default()
    }

    /// All v1 SSWs, as `[dc][plane][i]` flattened.
    pub fn ssw_v1_switches(&self) -> Vec<SwitchId> {
        self.fabrics.iter().flat_map(|f| f.all_ssws()).collect()
    }

    /// All v2 SSWs flattened (empty if absent).
    pub fn ssw_v2_switches(&self) -> Vec<SwitchId> {
        self.ssw_v2.iter().flatten().flatten().copied().collect()
    }

    /// All v1 FAUUs flattened.
    pub fn fauu_v1_switches(&self) -> Vec<SwitchId> {
        self.hgrid_v1.fauus.iter().flatten().copied().collect()
    }
}

/// Builds a region union graph per `cfg`.
pub fn build_region(cfg: &RegionConfig) -> (Topology, RegionHandles) {
    assert!(!cfg.dcs.is_empty(), "region needs at least one datacenter");
    let mut b = TopologyBuilder::new(cfg.name.clone());

    // 1. Fabrics, one per building.
    let fabrics: Vec<FabricHandles> = cfg
        .dcs
        .iter()
        .enumerate()
        .map(|(i, fc)| build_fabric(&mut b, DcId(i as u16), fc))
        .collect();
    let agg_dc = DcId(cfg.dcs.len() as u16);

    // 2. Current-generation HGRID, meshed to every fabric.
    let mut hgrid_v1 = build_hgrid(&mut b, agg_dc, &cfg.hgrid_v1);
    for fab in &fabrics {
        connect_hgrid_to_fabric(&mut b, &mut hgrid_v1, fab, &cfg.hgrid_v1);
    }

    // 3. Target-generation HGRID if migrating the FA layer.
    let hgrid_v2 = cfg.hgrid_v2.as_ref().map(|hc| {
        assert_eq!(hc.generation, Generation::V2, "target hgrid must be v2");
        let mut h = build_hgrid(&mut b, agg_dc, hc);
        for fab in &fabrics {
            connect_hgrid_to_fabric(&mut b, &mut h, fab, hc);
        }
        h
    });

    // 4. Second-generation SSWs in the forklifted datacenters.
    let mut ssw_v2: Vec<Vec<Vec<SwitchId>>> = vec![Vec::new(); fabrics.len()];
    for &dc_idx in &cfg.ssw_forklift_dcs {
        let fab = &fabrics[dc_idx as usize];
        let fc = &cfg.dcs[dc_idx as usize];
        let dc = DcId(dc_idx);
        let mut per_plane = Vec::with_capacity(fab.ssws.len());
        for (plane_idx, plane_v1) in fab.ssws.iter().enumerate() {
            let mut row = Vec::with_capacity(plane_v1.len());
            for &old in plane_v1 {
                let new = b.add_switch(crate::graph::SwitchSpec {
                    role: crate::switch::SwitchRole::Ssw,
                    generation: Generation::V2,
                    dc,
                    plane: Some(crate::ids::PlaneId(plane_idx as u16)),
                    pod: None,
                    grid: None,
                    max_ports: fc.ssw_ports,
                });
                // Mirror every circuit of the v1 SSW onto its v2 twin:
                // downlinks to the plane's FSWs and uplinks to FADUs.
                for (far, gbps) in b.neighbor_snapshot(old) {
                    b.add_circuit(new, far, gbps).expect("ssw-v2 mirror");
                }
                row.push(new);
            }
            per_plane.push(row);
        }
        ssw_v2[dc_idx as usize] = per_plane;
    }

    // 5. Backbone and direct FAUU-EB connectivity.
    let backbone = build_backbone(&mut b, agg_dc, &cfg.backbone);
    let v1_fauus: Vec<SwitchId> = hgrid_v1.fauus.iter().flatten().copied().collect();
    let flat_v1 = connect_fauus_to_ebs(&mut b, &v1_fauus, &backbone.ebs, cfg.backbone.fauu_eb_gbps);
    // Regroup flat fu-major list by EB.
    let mut fauu_eb_v1_by_eb: Vec<Vec<CircuitId>> = vec![Vec::new(); backbone.ebs.len()];
    for (i, c) in flat_v1.into_iter().enumerate() {
        fauu_eb_v1_by_eb[i % backbone.ebs.len()].push(c);
    }
    let fauu_eb_v2 = match &hgrid_v2 {
        Some(h) => {
            let v2_fauus: Vec<SwitchId> = h.fauus.iter().flatten().copied().collect();
            connect_fauus_to_ebs(&mut b, &v2_fauus, &backbone.ebs, cfg.backbone.fauu_eb_gbps)
        }
        None => Vec::new(),
    };

    // 6. MA (DMAG) layer if inserting regional aggregation.
    let ma = cfg
        .dmag
        .as_ref()
        .map(|mc| build_ma_layer(&mut b, agg_dc, &v1_fauus, &backbone.ebs, mc));

    let topo = b.build();
    debug_assert!(topo.validate().is_ok());
    (
        topo,
        RegionHandles {
            fabrics,
            hgrid_v1,
            hgrid_v2,
            backbone,
            fauu_eb_v1_by_eb,
            fauu_eb_v2,
            ma,
            ssw_v2,
            agg_dc,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netstate::NetState;
    use crate::switch::SwitchRole;

    fn small_region(hgrid_v2: bool, dmag: bool, forklift: bool) -> (Topology, RegionHandles) {
        build_region(&RegionConfig {
            name: "r".into(),
            dcs: vec![
                FabricConfig {
                    pods: 2,
                    rsws_per_pod: 2,
                    planes: 2,
                    ssws_per_plane: 2,
                    ..FabricConfig::default()
                };
                2
            ],
            hgrid_v1: HgridConfig::v1(2, 2, 1),
            hgrid_v2: hgrid_v2.then(|| HgridConfig::v2(2, 4, 2)),
            backbone: BackboneConfig {
                ebs: 2,
                drs: 1,
                ebbs: 1,
                ..BackboneConfig::default()
            },
            dmag: dmag.then(MaConfig::default),
            ssw_forklift_dcs: if forklift { vec![0, 1] } else { vec![] },
        })
    }

    #[test]
    fn plain_region_builds_and_validates() {
        let (t, h) = small_region(false, false, false);
        t.validate().unwrap();
        assert_eq!(h.fabrics.len(), 2);
        assert_eq!(h.hgrid_v1_switches().len(), 2 * 3);
        assert!(h.hgrid_v2_switches().is_empty());
        assert_eq!(h.fauu_eb_v1_by_eb.len(), 2);
        // 2 grids x 1 fauu x 2 ebs = 4 direct circuits, 2 per EB.
        assert_eq!(h.fauu_eb_v1_by_eb[0].len(), 2);
        assert_eq!(h.agg_dc, DcId(2));
    }

    #[test]
    fn hgrid_union_contains_both_generations() {
        let (t, h) = small_region(true, false, false);
        let v1 = h.hgrid_v1_switches();
        let v2 = h.hgrid_v2_switches();
        assert_eq!(v1.len(), 6);
        assert_eq!(v2.len(), 12);
        for &s in &v1 {
            assert_eq!(t.switch(s).generation, Generation::V1);
        }
        for &s in &v2 {
            assert_eq!(t.switch(s).generation, Generation::V2);
        }
        assert!(!h.fauu_eb_v2.is_empty());
    }

    #[test]
    fn dmag_union_adds_ma_layer() {
        let (t, h) = small_region(false, true, false);
        let ma = h.ma.as_ref().unwrap();
        assert_eq!(ma.all_mas().len(), 4);
        for s in ma.all_mas() {
            assert_eq!(t.switch(s).role, SwitchRole::Ma);
        }
        // Each MA connects to every v1 FAUU (2 of them) and 2 EBs.
        assert_eq!(ma.fauu_ma_circuits.len(), 4 * 2);
        assert_eq!(ma.ma_eb_circuits.len(), 8);
    }

    #[test]
    fn forklift_union_mirrors_ssw_wiring() {
        let (t, h) = small_region(false, false, true);
        assert_eq!(h.ssw_v2.len(), 2);
        let old = h.fabrics[0].ssws[0][0];
        let new = h.ssw_v2[0][0][0];
        assert_eq!(t.switch(new).generation, Generation::V2);
        assert_eq!(t.switch(new).plane, t.switch(old).plane);
        // v2 twin has the same degree as its v1 counterpart.
        assert_eq!(t.degree(new), t.degree(old));
        // And the same far endpoints.
        let mut far_old: Vec<SwitchId> = t.neighbors(old).iter().map(|&(_, f)| f).collect();
        let mut far_new: Vec<SwitchId> = t.neighbors(new).iter().map(|&(_, f)| f).collect();
        far_old.sort_unstable();
        far_new.sort_unstable();
        assert_eq!(far_old, far_new);
    }

    #[test]
    fn initial_like_state_has_no_port_violations() {
        let (t, h) = small_region(true, false, false);
        let mut state = NetState::all_up(&t);
        for s in h.hgrid_v2_switches() {
            state.drain_switch(&t, s);
        }
        assert!(t.port_violations(&state).is_empty());
    }
}
