//! Graphviz export for topologies and activation states.
//!
//! Produces `dot` source with one cluster per layer, switches colored by
//! role and dimmed when drained, and circuits weighted by capacity — the
//! kind of artifact operators attach to migration reviews.

use crate::graph::Topology;
use crate::netstate::NetState;
use crate::switch::SwitchRole;
use std::fmt::Write;

/// Node fill color per role (Graphviz X11 names).
fn role_color(role: SwitchRole) -> &'static str {
    match role {
        SwitchRole::Rsw => "lightgray",
        SwitchRole::Fsw => "lightblue",
        SwitchRole::Ssw => "steelblue",
        SwitchRole::Fadu => "palegreen",
        SwitchRole::Fauu => "seagreen",
        SwitchRole::Ma => "gold",
        SwitchRole::Eb => "orange",
        SwitchRole::Dr => "salmon",
        SwitchRole::Ebb => "indianred",
    }
}

/// Options for [`to_dot`].
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Skip RSWs and their circuits (fabrics dwarf everything else).
    pub skip_rsws: bool,
    /// Draw drained elements dashed/dimmed instead of omitting them.
    pub show_drained: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        Self {
            skip_rsws: true,
            show_drained: true,
        }
    }
}

/// Renders the topology (with activation overlay) as Graphviz dot source.
pub fn to_dot(topo: &Topology, state: &NetState, opts: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {} {{", sanitize(topo.name()));
    let _ = writeln!(out, "  graph [rankdir=BT, splines=line];");
    let _ = writeln!(out, "  node [shape=box, style=filled, fontsize=9];");

    let keep = |role: SwitchRole| !(opts.skip_rsws && role == SwitchRole::Rsw);

    for s in topo.switches() {
        if !keep(s.role) {
            continue;
        }
        let up = state.switch_up(s.id);
        if !up && !opts.show_drained {
            continue;
        }
        let style = if up { "filled" } else { "filled,dashed" };
        let color = if up { role_color(s.role) } else { "white" };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\", fillcolor={}, style=\"{}\"];",
            s.id.0, s.name, color, style
        );
    }

    for c in topo.circuits() {
        let (a, b) = (topo.switch(c.a), topo.switch(c.b));
        if !keep(a.role) || !keep(b.role) {
            continue;
        }
        let usable = state.circuit_usable(topo, c.id);
        if !usable && !opts.show_drained {
            continue;
        }
        if !usable && (!state.switch_up(c.a) || !state.switch_up(c.b)) && !opts.show_drained {
            continue;
        }
        let style = if usable { "solid" } else { "dashed" };
        let penwidth = 0.5 + (c.capacity_gbps / 800.0).min(3.0);
        let _ = writeln!(
            out,
            "  n{} -- n{} [style={}, penwidth={:.1}];",
            c.a.0, c.b.0, style, penwidth
        );
    }

    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|ch| if ch.is_alphanumeric() { ch } else { '_' })
        .collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g{cleaned}")
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{self, PresetId};

    #[test]
    fn dot_output_is_structurally_valid() {
        let p = presets::build(PresetId::A);
        let state = NetState::all_up(&p.topology);
        let dot = to_dot(&p.topology, &state, &DotOptions::default());
        assert!(dot.starts_with("graph topo_A {"));
        assert!(dot.trim_end().ends_with('}'));
        // Balanced braces, one edge line per non-RSW circuit.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        assert!(dot.contains("SSW"));
        assert!(!dot.contains("RSW"), "RSWs skipped by default");
    }

    #[test]
    fn drained_elements_render_dashed() {
        let p = presets::build(PresetId::A);
        let topo = &p.topology;
        let mut state = NetState::all_up(topo);
        for s in p.handles.hgrid_v2_switches() {
            state.drain_switch(topo, s);
        }
        let dot = to_dot(topo, &state, &DotOptions::default());
        assert!(dot.contains("filled,dashed"), "drained v2 must be dashed");

        let hidden = to_dot(
            topo,
            &state,
            &DotOptions {
                show_drained: false,
                ..DotOptions::default()
            },
        );
        assert!(!hidden.contains("dashed"));
        assert!(hidden.len() < dot.len());
    }

    #[test]
    fn including_rsws_grows_the_graph() {
        let p = presets::build(PresetId::A);
        let state = NetState::all_up(&p.topology);
        let without = to_dot(&p.topology, &state, &DotOptions::default());
        let with = to_dot(
            &p.topology,
            &state,
            &DotOptions {
                skip_rsws: false,
                ..DotOptions::default()
            },
        );
        assert!(with.len() > without.len());
        assert!(with.contains("RSW"));
    }

    #[test]
    fn sanitize_makes_valid_identifiers() {
        assert_eq!(sanitize("topo-A"), "topo_A");
        assert_eq!(sanitize("9lives"), "g9lives");
    }
}
