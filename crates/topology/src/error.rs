//! Error type for topology construction and validation.

use crate::ids::{CircuitId, SwitchId};
use std::fmt;

/// Errors produced while building or validating a topology.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// A circuit referenced a switch id that does not exist.
    UnknownSwitch(SwitchId),
    /// A circuit referenced a circuit id that does not exist.
    UnknownCircuit(CircuitId),
    /// A circuit connected a switch to itself.
    SelfLoop(SwitchId),
    /// A circuit capacity was non-positive or non-finite.
    BadCapacity { circuit: CircuitId, capacity: f64 },
    /// A switch's union-graph degree exceeds its physical port budget.
    PortOverflow {
        switch: SwitchId,
        degree: usize,
        max_ports: u16,
    },
    /// A switch has no circuits at all (dangling element).
    Isolated(SwitchId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownSwitch(id) => write!(f, "unknown switch {id}"),
            TopologyError::UnknownCircuit(id) => write!(f, "unknown circuit {id}"),
            TopologyError::SelfLoop(id) => write!(f, "self-loop circuit on {id}"),
            TopologyError::BadCapacity { circuit, capacity } => {
                write!(f, "circuit {circuit} has invalid capacity {capacity} Gbps")
            }
            TopologyError::PortOverflow {
                switch,
                degree,
                max_ports,
            } => write!(
                f,
                "switch {switch} has degree {degree} exceeding its {max_ports} ports"
            ),
            TopologyError::Isolated(id) => write!(f, "switch {id} has no circuits"),
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_ids() {
        let e = TopologyError::PortOverflow {
            switch: SwitchId(4),
            degree: 10,
            max_ports: 8,
        };
        let msg = e.to_string();
        assert!(msg.contains("sw4") && msg.contains("10") && msg.contains("8"));
        assert!(TopologyError::SelfLoop(SwitchId(1))
            .to_string()
            .contains("sw1"));
    }
}
