//! Exact brute-force planner: the optimality oracle.
//!
//! Enumerates every feasible interleaving of action types by depth-first
//! search with only trivial cost-bound pruning, so its result is the true
//! optimum by construction. Exponential — usable on instances with at most
//! a few dozen blocks — and exactly what the test suite needs to certify
//! that the DP and A\* planners (and their admissible heuristic) are
//! optimal.

use klotski_core::compact::CompactState;
use klotski_core::error::PlanError;
use klotski_core::migration::MigrationSpec;
use klotski_core::plan::{MigrationPlan, PlanStep};
use klotski_core::planner::{PlanOutcome, PlanStats, Planner, SearchBudget};
use klotski_core::satcheck::{EscMode, SatChecker};
use klotski_core::{ActionTypeId, CostModel};
use klotski_topology::NetState;
use std::time::Instant;

/// Exhaustive DFS planner (test oracle).
#[derive(Debug, Clone, Default)]
pub struct BruteForcePlanner {
    /// Cost model.
    pub cost: CostModel,
    /// Budget; DFS aborts when exceeded.
    pub budget: SearchBudget,
}

struct Dfs<'a> {
    spec: &'a MigrationSpec,
    cost: CostModel,
    checker: SatChecker,
    best_cost: f64,
    best_seq: Option<Vec<ActionTypeId>>,
    stats: PlanStats,
    start: Instant,
    budget: SearchBudget,
    out_of_budget: bool,
}

impl Dfs<'_> {
    fn run(
        &mut self,
        v: &CompactState,
        state: &NetState,
        last: Option<ActionTypeId>,
        g: f64,
        seq: &mut Vec<ActionTypeId>,
    ) {
        if self.out_of_budget {
            return;
        }
        self.stats.states_visited += 1;
        if self.stats.states_visited > self.budget.max_states
            || self.start.elapsed() > self.budget.time_limit
        {
            self.out_of_budget = true;
            return;
        }
        if v.is_target(&self.spec.target_counts) {
            if g < self.best_cost {
                self.best_cost = g;
                self.best_seq = Some(seq.clone());
            }
            return;
        }
        for a in self.spec.actions.ids() {
            if v.count(a) >= self.spec.target_counts.count(a) {
                continue;
            }
            let step = self.cost.step_cost(last, a);
            if g + step >= self.best_cost {
                continue; // cannot improve (costs are non-negative)
            }
            let mut next_state = state.clone();
            self.spec.apply_next(&mut next_state, v, a);
            let nv = v.advanced(a);
            self.stats.states_generated += 1;
            if !self.checker.check(self.spec, &nv, &next_state, Some(a)) {
                continue;
            }
            seq.push(a);
            self.run(&nv, &next_state, Some(a), g + step, seq);
            seq.pop();
        }
    }
}

impl Planner for BruteForcePlanner {
    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn plan(&self, spec: &MigrationSpec) -> Result<PlanOutcome, PlanError> {
        let start = Instant::now();
        let mut dfs = Dfs {
            spec,
            cost: self.cost,
            // The oracle itself may use the (correct) compact cache — it
            // only skips re-evaluation, never changes verdicts.
            checker: SatChecker::new(spec, EscMode::Compact),
            best_cost: f64::INFINITY,
            best_seq: None,
            stats: PlanStats::default(),
            start,
            budget: self.budget.clone(),
            out_of_budget: false,
        };
        let origin = CompactState::origin(spec.num_types());
        let mut seq = Vec::new();
        dfs.run(&origin, &spec.initial.clone(), None, 0.0, &mut seq);
        if dfs.out_of_budget && dfs.best_seq.is_none() {
            return Err(PlanError::BudgetExceeded {
                states_visited: dfs.stats.states_visited,
                elapsed: start.elapsed(),
            });
        }
        let mut stats = dfs.stats;
        stats.absorb_sat(dfs.checker.stats());
        stats.planning_time = start.elapsed();
        match dfs.best_seq {
            None => Err(PlanError::NoFeasiblePlan),
            Some(types) => {
                // Materialize canonical blocks along the sequence.
                let mut v = CompactState::origin(spec.num_types());
                let mut steps = Vec::with_capacity(types.len());
                for a in types {
                    steps.push(PlanStep {
                        kind: a,
                        block: spec.block_for(a, v.count(a)).id,
                    });
                    v = v.advanced(a);
                }
                let plan = MigrationPlan::new(steps);
                let cost = plan.cost(&self.cost);
                Ok(PlanOutcome {
                    plan,
                    cost,
                    stats,
                    ensemble: None,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_core::migration::{MigrationBuilder, MigrationOptions};
    use klotski_core::plan::validate_plan;
    use klotski_core::planner::{AStarPlanner, DpPlanner};
    use klotski_topology::presets::{self, PresetId};

    fn spec() -> MigrationSpec {
        MigrationBuilder::for_preset(&presets::build(PresetId::A), &MigrationOptions::default())
            .unwrap()
    }

    #[test]
    fn oracle_certifies_astar_and_dp_optimality() {
        let spec = spec();
        let brute = BruteForcePlanner::default().plan(&spec).unwrap();
        validate_plan(&spec, &brute.plan).unwrap();
        let astar = AStarPlanner::default().plan(&spec).unwrap();
        let dp = DpPlanner::default().plan(&spec).unwrap();
        assert!((brute.cost - astar.cost).abs() < 1e-9, "A* not optimal");
        assert!((brute.cost - dp.cost).abs() < 1e-9, "DP not optimal");
    }

    #[test]
    fn oracle_certifies_optimality_under_alpha() {
        let spec = spec();
        for alpha in [0.3, 0.7] {
            let brute = BruteForcePlanner {
                cost: CostModel::new(alpha),
                ..BruteForcePlanner::default()
            }
            .plan(&spec)
            .unwrap();
            let astar = AStarPlanner::with_alpha(alpha).plan(&spec).unwrap();
            assert!(
                (brute.cost - astar.cost).abs() < 1e-9,
                "alpha {alpha}: brute {} vs astar {}",
                brute.cost,
                astar.cost
            );
        }
    }

    #[test]
    fn budget_exhaustion_reported() {
        let spec = spec();
        let planner = BruteForcePlanner {
            budget: SearchBudget::tight(1, std::time::Duration::from_secs(60)),
            ..BruteForcePlanner::default()
        };
        assert!(matches!(
            planner.plan(&spec),
            Err(PlanError::BudgetExceeded { .. })
        ));
    }
}
