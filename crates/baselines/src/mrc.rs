//! The MRC baseline: greedily maximize the minimum residual capacity.
//!
//! At every step MRC evaluates *every* remaining operation block — a full
//! routing evaluation each, with no equivalence caching — and commits the
//! feasible block that leaves the network with the largest minimum residual
//! capacity `min_c (θ·W_c − load_c)`. That objective knows nothing about
//! operational phases, so MRC plans interleave drains and undrains far more
//! than necessary (Figure 8a) and its per-step full sweep makes it 7–263×
//! slower than Klotski-A\* (Figure 8b). Like Janus, it cannot plan
//! migrations that change the topology (§6.3).

use klotski_core::compact::CompactState;
use klotski_core::error::PlanError;
use klotski_core::migration::MigrationSpec;
use klotski_core::plan::{MigrationPlan, PlanStep};
use klotski_core::planner::{PlanOutcome, PlanStats, Planner, SearchBudget};
use klotski_core::CostModel;
use klotski_routing::{evaluate_policy, EcmpRouter, LoadMap};
use std::time::Instant;

/// Greedy maximize-minimum-residual-capacity planner.
#[derive(Debug, Clone, Default)]
pub struct MrcPlanner {
    /// Cost model used only to *price* the resulting plan.
    pub cost: CostModel,
    /// Step/time budget.
    pub budget: SearchBudget,
}

impl Planner for MrcPlanner {
    fn name(&self) -> &'static str {
        "mrc"
    }

    fn plan(&self, spec: &MigrationSpec) -> Result<PlanOutcome, PlanError> {
        if spec.migration_type.changes_topology() {
            return Err(PlanError::UnsupportedMigration(format!(
                "MRC cannot plan topology-changing migrations ({})",
                spec.migration_type
            )));
        }
        let start = Instant::now();
        let mut stats = PlanStats::default();
        let mut router = EcmpRouter::with_policy(&spec.topology, spec.split);
        let mut loads = LoadMap::new(&spec.topology);

        let mut state = spec.initial.clone();
        let mut v = CompactState::origin(spec.num_types());
        let mut steps: Vec<PlanStep> = Vec::with_capacity(spec.num_blocks());

        while !v.is_target(&spec.target_counts) {
            if start.elapsed() > self.budget.time_limit {
                return Err(PlanError::BudgetExceeded {
                    states_visited: stats.states_visited,
                    elapsed: start.elapsed(),
                });
            }
            stats.states_visited += 1;
            // Greedy sweep: evaluate the candidate state of every remaining
            // action type (next canonical block each), full check every time.
            let mut best: Option<(f64, klotski_core::ActionTypeId)> = None;
            for a in spec.actions.ids() {
                if v.count(a) >= spec.target_counts.count(a) {
                    continue;
                }
                let mut candidate = state.clone();
                spec.apply_next(&mut candidate, &v, a);
                let nv = v.advanced(a);
                stats.states_generated += 1;
                stats.sat_checks += 1;
                stats.full_evaluations += 1;
                // MRC re-derives everything per candidate: routing,
                // utilization, ports, space. No caching of any kind.
                let outcome = evaluate_policy(
                    &spec.topology,
                    &candidate,
                    &spec.demands,
                    spec.theta,
                    spec.split,
                );
                let ports_ok =
                    !spec.check_ports || spec.topology.port_violations(&candidate).is_empty();
                let space_ok = spec.space.as_ref().map(|m| m.fits(&nv)).unwrap_or(true);
                if !(outcome.satisfied() && ports_ok && space_ok) {
                    continue;
                }
                // The greedy criterion: maximize the minimum residual.
                let residual = outcome.report.min_residual_gbps;
                if best.map(|(r, _)| residual > r).unwrap_or(true) {
                    best = Some((residual, a));
                }
                // MRC scores *every* remaining block of the type, not just
                // the next one — blocks are individually meaningful to a
                // residual-capacity greedy, and this per-step full sweep is
                // why "these two planners need to preprocess all available
                // action combinations, which is time-consuming" (§6.2).
                for idx in (v.count(a) + 1)..spec.target_counts.count(a) {
                    let mut alt = state.clone();
                    let block = spec.block_for(a, idx);
                    block.apply(&spec.topology, &mut alt, spec.kind_is_drain(a));
                    stats.sat_checks += 1;
                    stats.full_evaluations += 1;
                    loads.clear();
                    router.route(&spec.topology, &alt, &spec.demands, &mut loads);
                }
            }
            let Some((_, a)) = best else {
                return Err(PlanError::NoFeasiblePlan);
            };
            let block = spec.block_for(a, v.count(a)).id;
            spec.apply_next(&mut state, &v, a);
            v = v.advanced(a);
            steps.push(PlanStep { kind: a, block });
        }

        stats.planning_time = start.elapsed();
        let plan = MigrationPlan::new(steps);
        let cost = plan.cost(&self.cost);
        Ok(PlanOutcome {
            plan,
            cost,
            stats,
            ensemble: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_core::migration::{MigrationBuilder, MigrationOptions};
    use klotski_core::plan::validate_plan;
    use klotski_core::planner::AStarPlanner;
    use klotski_topology::presets::{self, PresetId};

    fn spec(id: PresetId) -> MigrationSpec {
        MigrationBuilder::for_preset(&presets::build_for_bench(id), &MigrationOptions::default())
            .unwrap()
    }

    #[test]
    fn mrc_finds_a_valid_plan_on_a() {
        let spec = spec(PresetId::A);
        let outcome = MrcPlanner::default().plan(&spec).unwrap();
        validate_plan(&spec, &outcome.plan).unwrap();
        assert_eq!(outcome.plan.num_steps(), spec.num_blocks());
    }

    #[test]
    fn mrc_is_suboptimal_in_cost() {
        let spec = spec(PresetId::A);
        let mrc = MrcPlanner::default().plan(&spec).unwrap();
        let optimal = AStarPlanner::default().plan(&spec).unwrap();
        assert!(
            mrc.cost >= optimal.cost,
            "greedy can never beat the optimum"
        );
        // On the evaluation presets MRC's phase-blind greed costs extra.
        assert!(
            mrc.cost > optimal.cost,
            "MRC should pay for ignoring action types (mrc {} vs optimal {})",
            mrc.cost,
            optimal.cost
        );
    }

    #[test]
    fn mrc_does_many_more_checks_than_astar() {
        let spec = spec(PresetId::B);
        let mrc = MrcPlanner::default().plan(&spec).unwrap();
        let astar = AStarPlanner::default().plan(&spec).unwrap();
        assert!(mrc.stats.full_evaluations > astar.stats.full_evaluations);
    }

    #[test]
    fn mrc_rejects_topology_changing_migrations() {
        let spec = spec(PresetId::EDmag);
        assert!(matches!(
            MrcPlanner::default().plan(&spec),
            Err(PlanError::UnsupportedMigration(_))
        ));
    }
}
