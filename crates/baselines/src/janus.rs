//! A Janus-style baseline planner (after reference [4]).
//!
//! Janus plans network changes by exploiting topology symmetry. Following
//! the evaluation setup ("we define the superblock in Janus as the
//! operation block in Klotski", §6.1), this planner searches the same
//! block-level space as Klotski but with Janus's cost profile:
//!
//! - an upfront **preprocessing pass over all available action
//!   combinations** — every ordered block pair is applied and routed once
//!   (§6.2 names this as one of the two reasons Janus is slow);
//! - **exhaustive traversal**: the whole reachable space is swept (no
//!   best-first early exit);
//! - **full-topology state keys**: equivalence is detected by hashing the
//!   entire activation state instead of Klotski's compact representation;
//! - **no topology-changing migrations**: Janus assumes the symmetry
//!   structure is preserved, which a DMAG layer insertion violates (§6.3).
//!
//! It still returns optimal plans on the migrations it supports
//! (Figure 8a) — just 8–381× slower (Figure 8b).

use klotski_core::error::PlanError;
use klotski_core::migration::MigrationSpec;
use klotski_core::planner::{DpPlanner, PlanOutcome, Planner, SearchBudget};
use klotski_core::{CompactState, CostModel, EscMode};
use klotski_routing::{EcmpRouter, LoadMap};
use std::time::Instant;

/// Janus-style exhaustive symmetry planner.
#[derive(Debug, Clone, Default)]
pub struct JanusPlanner {
    /// Cost model.
    pub cost: CostModel,
    /// Budget (shared with the embedded exhaustive sweep).
    pub budget: SearchBudget,
}

impl Planner for JanusPlanner {
    fn name(&self) -> &'static str {
        "janus"
    }

    fn plan(&self, spec: &MigrationSpec) -> Result<PlanOutcome, PlanError> {
        if spec.migration_type.changes_topology() {
            return Err(PlanError::UnsupportedMigration(format!(
                "Janus assumes migration-invariant symmetry; {} changes the topology",
                spec.migration_type
            )));
        }
        let start = Instant::now();

        // --- Preprocessing: apply and route every ordered action-type pair
        // from the origin (Janus scores candidate plan fragments upfront).
        let mut router = EcmpRouter::with_policy(&spec.topology, spec.split);
        let mut loads = LoadMap::new(&spec.topology);
        let mut preprocessing_checks: u64 = 0;
        let origin = CompactState::origin(spec.num_types());
        for a in spec.actions.ids() {
            if spec.target_counts.count(a) == 0 {
                continue;
            }
            let mut first = spec.initial.clone();
            spec.apply_next(&mut first, &origin, a);
            let va = origin.advanced(a);
            for b in spec.actions.ids() {
                // Pairs over *blocks*, not types: evaluate each remaining
                // block of type b after each block of type a.
                for idx in va.count(b)..spec.target_counts.count(b) {
                    let mut pair = first.clone();
                    let vb = CompactState::from_counts(
                        (0..spec.num_types() as u8)
                            .map(|t| {
                                if t == b.0 {
                                    idx
                                } else {
                                    va.count(klotski_core::ActionTypeId(t))
                                }
                            })
                            .collect(),
                    );
                    // Apply block `idx` of type b directly.
                    let block = spec.block_for(b, idx);
                    block.apply(&spec.topology, &mut pair, spec.kind_is_drain(b));
                    let _ = vb;
                    loads.clear();
                    router.route(&spec.topology, &pair, &spec.demands, &mut loads);
                    preprocessing_checks += 1;
                    if start.elapsed() > self.budget.time_limit {
                        return Err(PlanError::BudgetExceeded {
                            states_visited: preprocessing_checks,
                            elapsed: start.elapsed(),
                        });
                    }
                }
            }
        }

        // --- Exhaustive sweep of the pruned space with full-topology
        // hashing (the DP recurrence visits every state, which is exactly
        // Janus's traversal behaviour).
        let remaining_budget = self.budget.time_limit.saturating_sub(start.elapsed());
        let sweep = DpPlanner {
            cost: self.cost,
            esc: EscMode::FullTopology,
            budget: SearchBudget {
                max_states: self.budget.max_states,
                time_limit: remaining_budget,
                // The inner sweep honors the caller's deadline/cancellation.
                deadline: self.budget.deadline,
                cancel: self.budget.cancel.clone(),
            },
            pool: None,
        };
        let mut outcome = sweep.plan(spec)?;
        outcome.stats.sat_checks += preprocessing_checks;
        outcome.stats.full_evaluations += preprocessing_checks;
        outcome.stats.planning_time = start.elapsed();
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_core::migration::{MigrationBuilder, MigrationOptions};
    use klotski_core::plan::validate_plan;
    use klotski_core::planner::AStarPlanner;
    use klotski_topology::presets::{self, PresetId};

    fn spec(id: PresetId) -> MigrationSpec {
        MigrationBuilder::for_preset(&presets::build_for_bench(id), &MigrationOptions::default())
            .unwrap()
    }

    #[test]
    fn janus_finds_the_optimum_on_a() {
        let spec = spec(PresetId::A);
        let janus = JanusPlanner::default().plan(&spec).unwrap();
        let optimal = AStarPlanner::default().plan(&spec).unwrap();
        validate_plan(&spec, &janus.plan).unwrap();
        assert!((janus.cost - optimal.cost).abs() < 1e-9);
    }

    #[test]
    fn janus_burns_more_evaluations_than_astar() {
        let spec = spec(PresetId::A);
        let janus = JanusPlanner::default().plan(&spec).unwrap();
        let astar = AStarPlanner::default().plan(&spec).unwrap();
        assert!(janus.stats.full_evaluations > astar.stats.full_evaluations);
    }

    #[test]
    fn janus_rejects_dmag() {
        let spec = spec(PresetId::EDmag);
        assert!(matches!(
            JanusPlanner::default().plan(&spec),
            Err(PlanError::UnsupportedMigration(_))
        ));
    }

    #[test]
    fn janus_respects_time_budget() {
        let spec = spec(PresetId::B);
        let planner = JanusPlanner {
            budget: SearchBudget::tight(u64::MAX, std::time::Duration::from_nanos(1)),
            ..JanusPlanner::default()
        };
        assert!(matches!(
            planner.plan(&spec),
            Err(PlanError::BudgetExceeded { .. })
        ));
    }
}
