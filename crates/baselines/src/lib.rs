//! # klotski-baselines
//!
//! The comparison planners of the paper's evaluation (§6.1):
//!
//! - [`MrcPlanner`]: the greedy maximize-minimum-residual-capacity planner
//!   (after the minimal-rewiring line of work, reference [37]). Fast to
//!   describe, but it ignores action-type batching, so its plans alternate
//!   types and pay far more serial phases than the optimum (Figure 8a), and
//!   it evaluates every remaining block at every step with no caching
//!   (Figure 8b).
//! - [`JanusPlanner`]: a Janus-style planner (reference [4]): symmetry
//!   pruning with operation blocks as superblocks, but exhaustive traversal
//!   of the pruned space with full-topology state keys and an upfront
//!   preprocessing pass over all action combinations. Finds the optimum,
//!   slowly — and cannot plan migrations that change the topology (§6.3).
//! - [`BruteForcePlanner`]: exact enumeration over all action sequences,
//!   usable only on tiny instances; serves as the optimality oracle for the
//!   test suite.

pub mod brute;
pub mod janus;
pub mod mrc;

pub use brute::BruteForcePlanner;
pub use janus::JanusPlanner;
pub use mrc::MrcPlanner;
