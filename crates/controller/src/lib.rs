//! # klotski-controller
//!
//! Continuous migration controller: executes a [`MigrationPlan`] phase by
//! phase against a simulated live fleet, keeping the paper's safety
//! invariant (Eq. 4–6) *continuously* true while the world drifts — the
//! operational loop §7 describes but the one-shot planner cannot provide.
//!
//! The controller operationalizes a production runbook:
//!
//! - **canary-first application** — each phase applies a small canary batch
//!   first and audits it before committing the rest;
//! - **shadow audit** — after every batch the controller re-derives the
//!   *actual* topology (planned overlay + injected failures and external
//!   operations), diffs it against the planned state, and re-runs the
//!   satisfiability check on the real one under realized demand
//!   ([`SatChecker::audit_live`]);
//! - **safe-pause** — a violated constraint halts block application;
//! - **incremental replanning** — the residual migration (current compact
//!   state, observed topology, realized demand) is re-searched with the
//!   ESC cache and parent-state deltas, bounded by a replan budget;
//! - **rollback** — when replanning fails or the budget runs out, the
//!   fleet is restored to the most recent snapshot that still audits safe.
//!
//! Scenarios ([`Scenario`]) script the world: surges, link failures,
//! external ops, all fired by deterministic step index from a fixed seed —
//! a run is replayable bit-for-bit at any thread count
//! ([`ControllerReport::fingerprint`]).
//!
//! [`MigrationPlan`]: klotski_core::plan::MigrationPlan
//! [`SatChecker::audit_live`]: klotski_core::SatChecker::audit_live

pub mod engine;
pub mod fleet;
pub mod flight;
pub mod scenario;

pub use engine::{
    run, run_scenario, ControllerConfig, ControllerError, ControllerReport, ReplanRecord,
    ReplannerKind, RollbackRecord, StepRecord,
};
pub use fleet::{Drift, FleetSim};
pub use flight::{FlightBundle, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use scenario::{EventKind, ReplanPolicy, Scenario, ScenarioError, ScenarioEvent};
