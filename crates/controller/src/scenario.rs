//! Scripted event timelines for controller runs.
//!
//! A scenario is a deterministic description of everything the world does
//! to a migration while the controller executes it: traffic surges
//! (§7.2's warm-storage incident), link failures, and external operations
//! (routine maintenance outside the migration's control). The file format
//! is JSON; `klotski run --scenario <file>` and `POST /v1/run` both consume
//! it, and the `scenarios` report experiment generates timelines
//! programmatically from the same types.
//!
//! Time is measured in *steps*: one step per applied batch of blocks
//! (canary batches count). Events fire when the controller finishes the
//! batch with the matching step index, which makes a scenario replayable —
//! the same file and seed always produce the same run.

use klotski_topology::presets::PresetId;
use klotski_traffic::{DemandClass, EnsembleSpec, SurgeEvent};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A scripted controller run: the migration to execute plus the event
/// timeline injected while it runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Display name, echoed in the report.
    pub name: String,
    /// Topology preset to migrate (`a`–`e`, `e-dmag`, `e-ssw`).
    pub preset: String,
    /// Seed for every randomized choice (victim selection). Fixing it makes
    /// the run bit-deterministic at any thread count.
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Utilization bound override; `None` keeps the preset default.
    #[serde(default)]
    pub theta: Option<f64>,
    /// Planner used for the initial plan and every replan: `astar` | `dp`.
    #[serde(default = "default_planner")]
    pub planner: String,
    /// Phase-cost α for the generalized cost function.
    #[serde(default)]
    pub alpha: f64,
    /// Blocks in the canary batch applied (and audited) before the rest of
    /// each phase. 0 disables canarying: whole phases apply at once.
    #[serde(default = "default_canary")]
    pub canary_blocks: usize,
    /// Organic demand growth per executed step (§7.1).
    #[serde(default)]
    pub demand_growth_per_step: f64,
    /// Worker-pool lane override; `None` uses the spec default.
    #[serde(default)]
    pub threads: Option<usize>,
    /// The event timeline.
    #[serde(default)]
    pub events: Vec<ScenarioEvent>,
    /// Replanning budget and rollback trigger.
    #[serde(default)]
    pub replan: ReplanPolicy,
    /// Planner progress-event interval override (expansions/states per
    /// `astar.progress`/`dp.progress` event); `None` keeps the core default
    /// of 4096. Dial down for fine-grained SSE streams.
    #[serde(default)]
    pub progress_every: Option<u64>,
    /// Operation-block scale override (Figure 11): >1 splits the default
    /// blocks into finer batches, stretching the run over more steps; `None`
    /// keeps the §5 default policy. Long-horizon benchmarks use this to
    /// drive hundreds-of-step runs on one preset.
    #[serde(default)]
    pub block_scale: Option<f64>,
    /// Traffic ensemble: plan AND shadow-audit every step against all K
    /// realized matrices (the realized demand plus its EWMA/surge variants).
    /// The spec carries its own explicit seed, so ensemble runs replay
    /// byte-for-byte. `None` keeps single-matrix behaviour.
    #[serde(default)]
    pub ensemble: Option<EnsembleSpec>,
}

/// What a scripted disturbance does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Traffic surge multiplying one demand class (or all) over a window of
    /// steps (§7.2's warm-storage incident).
    Surge,
    /// A circuit goes down outside the migration's control.
    LinkFailure,
    /// An external operation drains a switch the migration does not own.
    ExternalOp,
}

/// One scripted disturbance. Fields beyond the window only apply to some
/// kinds — `factor`/`class` to surges, `circuit` to link failures, `switch`
/// to external ops; [`Scenario::validate`] rejects mismatches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioEvent {
    /// What happens.
    pub kind: EventKind,
    /// First step (0-based) at which the event is active.
    pub at_step: usize,
    /// First step at which it is no longer active (exclusive). Required for
    /// surges; `None` means a failure/external op never recovers.
    #[serde(default)]
    pub until_step: Option<usize>,
    /// Surge demand multiplier (e.g. 1.4 = +40%).
    #[serde(default = "default_factor")]
    pub factor: f64,
    /// Surged demand class; `None` = all classes.
    #[serde(default)]
    pub class: Option<DemandClass>,
    /// Explicit victim circuit index for link failures; `None` picks a
    /// seeded-random usable circuit not involved in the migration.
    #[serde(default)]
    pub circuit: Option<usize>,
    /// Explicit victim switch index for external ops; `None` picks a
    /// seeded-random uninvolved switch.
    #[serde(default)]
    pub switch: Option<usize>,
}

impl ScenarioEvent {
    /// A surge on `class` (`None` = all classes) over `[at_step,
    /// until_step)`.
    pub fn surge(
        at_step: usize,
        until_step: usize,
        factor: f64,
        class: Option<DemandClass>,
    ) -> Self {
        Self {
            kind: EventKind::Surge,
            at_step,
            until_step: Some(until_step),
            factor,
            class,
            circuit: None,
            switch: None,
        }
    }

    /// A link failure over `[at_step, until_step)`; `circuit: None` picks a
    /// seeded-random uninvolved victim.
    pub fn link_failure(at_step: usize, until_step: Option<usize>, circuit: Option<usize>) -> Self {
        Self {
            kind: EventKind::LinkFailure,
            at_step,
            until_step,
            factor: default_factor(),
            class: None,
            circuit,
            switch: None,
        }
    }

    /// An external switch drain over `[at_step, until_step)`; `switch:
    /// None` picks a seeded-random uninvolved victim.
    pub fn external_op(at_step: usize, until_step: Option<usize>, switch: Option<usize>) -> Self {
        Self {
            kind: EventKind::ExternalOp,
            at_step,
            until_step,
            factor: default_factor(),
            class: None,
            circuit: None,
            switch,
        }
    }
}

/// Replanning budget; when a replan fails or the count runs out, the
/// controller rolls back to the last audited-safe state instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplanPolicy {
    /// Replans allowed over the whole run.
    #[serde(default = "default_max_replans")]
    pub max_replans: usize,
    /// Search-state budget per replan. State budgets are deterministic;
    /// determinism across machines requires replans to be state-bound, not
    /// time-bound.
    #[serde(default = "default_max_states")]
    pub max_states: u64,
    /// Wall-clock limit per replan, milliseconds (a machine-speed backstop;
    /// see `max_states` for the deterministic bound).
    #[serde(default = "default_time_limit_ms")]
    pub time_limit_ms: u64,
}

impl Default for ReplanPolicy {
    fn default() -> Self {
        Self {
            max_replans: default_max_replans(),
            max_states: default_max_states(),
            time_limit_ms: default_time_limit_ms(),
        }
    }
}

fn default_seed() -> u64 {
    23
}
fn default_planner() -> String {
    "astar".to_string()
}
fn default_canary() -> usize {
    1
}
fn default_max_replans() -> usize {
    8
}
fn default_max_states() -> u64 {
    2_000_000
}
fn default_time_limit_ms() -> u64 {
    30_000
}
fn default_factor() -> f64 {
    1.0
}

/// Scenario parse/validation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioError(pub String);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scenario: {}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

impl Scenario {
    /// Parses and validates a scenario from JSON.
    pub fn from_json(json: &str) -> Result<Self, ScenarioError> {
        let s: Scenario =
            serde_json::from_str(json).map_err(|e| ScenarioError(format!("parse: {e}")))?;
        s.validate()?;
        Ok(s)
    }

    /// Resolves the preset id named by `preset`.
    pub fn preset_id(&self) -> Result<PresetId, ScenarioError> {
        PresetId::ALL
            .into_iter()
            .find(|id| id.to_string().eq_ignore_ascii_case(&self.preset))
            .ok_or_else(|| ScenarioError(format!("unknown preset {:?}", self.preset)))
    }

    /// Structural validation: known preset/planner, sane windows and
    /// factors.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.preset_id()?;
        if !matches!(self.planner.as_str(), "astar" | "dp") {
            return Err(ScenarioError(format!(
                "unknown planner {:?} (expected \"astar\" or \"dp\")",
                self.planner
            )));
        }
        if let Some(theta) = self.theta {
            if !(theta > 0.0 && theta <= 1.0) {
                return Err(ScenarioError(format!("theta {theta} out of (0, 1]")));
            }
        }
        if !(self.demand_growth_per_step.is_finite() && self.demand_growth_per_step > -1.0) {
            return Err(ScenarioError(
                "demand growth must be finite and > -1".into(),
            ));
        }
        if self.replan.max_states == 0 {
            return Err(ScenarioError("replan.max_states must be positive".into()));
        }
        if self.progress_every == Some(0) {
            return Err(ScenarioError("progress_every must be positive".into()));
        }
        if let Some(scale) = self.block_scale {
            if !(scale.is_finite() && scale > 0.0) {
                return Err(ScenarioError(format!(
                    "block_scale {scale} must be finite and positive"
                )));
            }
        }
        if let Some(ensemble) = &self.ensemble {
            ensemble
                .validate()
                .map_err(|e| ScenarioError(format!("ensemble: {e}")))?;
        }
        for (i, ev) in self.events.iter().enumerate() {
            if let Some(until) = ev.until_step {
                if until <= ev.at_step {
                    return Err(ScenarioError(format!(
                        "event {i}: window [{}, {until}) is empty",
                        ev.at_step
                    )));
                }
            }
            match ev.kind {
                EventKind::Surge => {
                    if ev.until_step.is_none() {
                        return Err(ScenarioError(format!(
                            "event {i}: surge needs an until_step"
                        )));
                    }
                    if !(ev.factor.is_finite() && ev.factor >= 0.0) {
                        return Err(ScenarioError(format!(
                            "event {i}: surge factor {} must be finite and non-negative",
                            ev.factor
                        )));
                    }
                    if ev.circuit.is_some() || ev.switch.is_some() {
                        return Err(ScenarioError(format!(
                            "event {i}: surge takes no circuit/switch victim"
                        )));
                    }
                }
                EventKind::LinkFailure => {
                    if ev.switch.is_some() || ev.class.is_some() {
                        return Err(ScenarioError(format!(
                            "event {i}: link failure takes only an optional circuit"
                        )));
                    }
                }
                EventKind::ExternalOp => {
                    if ev.circuit.is_some() || ev.class.is_some() {
                        return Err(ScenarioError(format!(
                            "event {i}: external op takes only an optional switch"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// The surge events of the timeline as `klotski-traffic` surges, which
    /// the controller applies with [`klotski_traffic::surge::apply_surges`].
    pub fn surges(&self) -> Vec<SurgeEvent> {
        self.events
            .iter()
            .filter(|ev| ev.kind == EventKind::Surge)
            .map(|ev| SurgeEvent {
                from_step: ev.at_step,
                until_step: ev.until_step.unwrap_or(usize::MAX),
                factor: ev.factor,
                class: ev.class,
            })
            .collect()
    }

    /// The scenario shipped with the README quickstart: one mid-migration
    /// east/west surge plus a transient link failure on preset A.
    pub fn sample() -> Self {
        Self {
            name: "surge-and-failure".to_string(),
            preset: "a".to_string(),
            seed: 23,
            theta: None,
            planner: "astar".to_string(),
            alpha: 0.0,
            canary_blocks: 1,
            demand_growth_per_step: 0.0,
            threads: None,
            events: vec![
                ScenarioEvent::surge(1, 4, 1.3, Some(DemandClass::RswToRsw)),
                ScenarioEvent::link_failure(2, Some(5), None),
            ],
            replan: ReplanPolicy::default(),
            progress_every: None,
            block_scale: None,
            ensemble: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_roundtrips_and_validates() {
        let s = Scenario::sample();
        s.validate().unwrap();
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn bad_preset_is_rejected() {
        let mut s = Scenario::sample();
        s.preset = "z".to_string();
        assert!(s.validate().is_err());
    }

    #[test]
    fn empty_surge_window_is_rejected() {
        let mut s = Scenario::sample();
        s.events = vec![ScenarioEvent::surge(3, 3, 1.5, None)];
        assert!(s.validate().is_err());
    }

    #[test]
    fn mismatched_victim_fields_are_rejected() {
        let mut s = Scenario::sample();
        let mut ev = ScenarioEvent::surge(0, 2, 1.5, None);
        ev.circuit = Some(3);
        s.events = vec![ev];
        assert!(s.validate().is_err());
    }

    #[test]
    fn defaults_fill_missing_fields() {
        let s = Scenario::from_json(r#"{"name": "min", "preset": "a"}"#).unwrap();
        assert_eq!(s.seed, 23);
        assert_eq!(s.planner, "astar");
        assert_eq!(s.canary_blocks, 1);
        assert_eq!(s.replan, ReplanPolicy::default());
        assert!(s.events.is_empty());
    }

    #[test]
    fn malformed_event_kind_is_a_parse_error() {
        let err = Scenario::from_json(
            r#"{"name": "x", "preset": "a",
                "events": [{"kind": "Meteor", "at_step": 0}]}"#,
        )
        .unwrap_err();
        assert!(err.0.starts_with("parse:"), "{err}");
    }

    #[test]
    fn negative_times_are_parse_errors() {
        for event in [
            r#"{"kind": "LinkFailure", "at_step": -3}"#,
            r#"{"kind": "LinkFailure", "at_step": 1, "until_step": -3}"#,
        ] {
            let json = format!(r#"{{"name": "x", "preset": "a", "events": [{event}]}}"#);
            let err = Scenario::from_json(&json).unwrap_err();
            assert!(err.0.starts_with("parse:"), "{event}: {err}");
        }
    }

    #[test]
    fn zero_progress_interval_is_rejected() {
        let err = Scenario::from_json(r#"{"name": "x", "preset": "a", "progress_every": 0}"#)
            .unwrap_err();
        assert!(err.0.contains("progress_every"), "{err}");
        let s =
            Scenario::from_json(r#"{"name": "x", "preset": "a", "progress_every": 64}"#).unwrap();
        assert_eq!(s.progress_every, Some(64));
    }

    #[test]
    fn ensemble_field_parses_and_validates() {
        let s = Scenario::from_json(
            r#"{"name": "x", "preset": "a", "ensemble": {"k": 3, "seed": 42}}"#,
        )
        .unwrap();
        let ens = s.ensemble.expect("parsed");
        assert_eq!((ens.k, ens.seed), (3, 42));
        // K=0 is structurally valid JSON but semantically rejected.
        let err =
            Scenario::from_json(r#"{"name": "x", "preset": "a", "ensemble": {"k": 0, "seed": 1}}"#)
                .unwrap_err();
        assert!(err.0.contains("ensemble"), "{err}");
        // The seed is required on the wire: a seedless ensemble is a parse
        // error, not a silent ambient default.
        let err = Scenario::from_json(r#"{"name": "x", "preset": "a", "ensemble": {"k": 2}}"#)
            .unwrap_err();
        assert!(err.0.starts_with("parse:"), "{err}");
    }

    #[test]
    fn surges_extracts_only_surge_events() {
        let s = Scenario::sample();
        let surges = s.surges();
        assert_eq!(surges.len(), 1);
        assert_eq!(surges[0].from_step, 1);
        assert_eq!(surges[0].until_step, 4);
    }
}
