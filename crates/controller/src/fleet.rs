//! Simulated fleet: the planned activation overlay plus live disturbances.
//!
//! The controller tracks two views of the network. The *planned* state is
//! the canonical overlay of the migration's compact progress — the world as
//! the plan believes it to be. Disturbances (failed circuits, externally
//! drained switches) live in a separate overlay keyed by the step at which
//! they recover, and the *observed* state — what a shadow audit must judge
//! — is the planned state with every active disturbance applied on top.
//!
//! Keeping the overlays separate is what makes rollback tractable: rolling
//! back restores an earlier planned state and re-applies the disturbances,
//! without trying to invert them.

use klotski_core::migration::MigrationSpec;
use klotski_topology::{CircuitId, NetState, SwitchId, Topology};
use rand::rngs::SmallRng;
use rand::RngExt;
use std::collections::{BTreeMap, HashSet};

/// The fleet's live state: planned overlay + disturbances.
#[derive(Debug, Clone)]
pub struct FleetSim {
    /// Canonical overlay of the migration's progress (no disturbances).
    pub planned: NetState,
    /// Circuits down outside the plan, with the step (exclusive) at which
    /// each recovers; `None` = permanently down. `BTreeMap` keeps the
    /// application order deterministic.
    failed_circuits: BTreeMap<CircuitId, Option<usize>>,
    /// Switches drained by external operations, same window convention.
    drained_switches: BTreeMap<SwitchId, Option<usize>>,
}

impl FleetSim {
    /// A fleet starting at the migration's initial state with no
    /// disturbances.
    pub fn new(initial: NetState) -> Self {
        Self {
            planned: initial,
            failed_circuits: BTreeMap::new(),
            drained_switches: BTreeMap::new(),
        }
    }

    /// Fails a circuit until `until_step` (exclusive; `None` = forever).
    pub fn fail_circuit(&mut self, circuit: CircuitId, until_step: Option<usize>) {
        self.failed_circuits.insert(circuit, until_step);
    }

    /// Drains a switch by external operation until `until_step`.
    pub fn drain_external(&mut self, switch: SwitchId, until_step: Option<usize>) {
        self.drained_switches.insert(switch, until_step);
    }

    /// Expires every disturbance whose window ends at or before `step`.
    pub fn expire(&mut self, step: usize) {
        self.failed_circuits
            .retain(|_, until| until.is_none_or(|u| u > step));
        self.drained_switches
            .retain(|_, until| until.is_none_or(|u| u > step));
    }

    /// Number of currently active disturbances `(failed circuits, drained
    /// switches)`.
    pub fn active_disturbances(&self) -> (usize, usize) {
        (self.failed_circuits.len(), self.drained_switches.len())
    }

    /// The observed state: planned overlay with every active disturbance
    /// applied. This is the state shadow audits judge.
    pub fn observed(&self, topo: &Topology) -> NetState {
        let mut s = self.planned.clone();
        for &c in self.failed_circuits.keys() {
            s.set_circuit(c, false);
        }
        for &sw in self.drained_switches.keys() {
            s.drain_switch(topo, sw);
        }
        s
    }

    /// How far the observed state has drifted from the plan: elements the
    /// plan believes are up but the fleet reports down.
    pub fn drift(&self, topo: &Topology) -> Drift {
        let observed = self.observed(topo);
        let mut circuits = 0usize;
        let mut switches = 0usize;
        for c in topo.circuits() {
            if self.planned.circuit_usable(topo, c.id) && !observed.circuit_usable(topo, c.id) {
                circuits += 1;
            }
        }
        for sw in self.planned.switches_up() {
            if !observed.switch_up(sw) {
                switches += 1;
            }
        }
        Drift { circuits, switches }
    }
}

/// Observed-vs-planned divergence found by a shadow audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Drift {
    /// Usable-in-plan circuits that the fleet reports unusable.
    pub circuits: usize,
    /// Up-in-plan switches that the fleet reports down.
    pub switches: usize,
}

/// Picks a seeded-random circuit that is usable in `observed` and not
/// involved in the migration: not listed in any operation block, not
/// incident to a block's switches, and not incident to a demand endpoint
/// (failing a rack uplink would trivially void reachability rather than
/// exercise the network's headroom).
pub fn pick_uninvolved_circuit(
    spec: &MigrationSpec,
    observed: &NetState,
    rng: &mut SmallRng,
) -> Option<CircuitId> {
    let mut involved_switches: HashSet<SwitchId> = spec
        .blocks
        .iter()
        .flat_map(|b| b.switches.iter().copied())
        .collect();
    for d in spec.demands.iter() {
        involved_switches.insert(d.src);
        involved_switches.insert(d.dst);
    }
    let involved_circuits: HashSet<CircuitId> = spec
        .blocks
        .iter()
        .flat_map(|b| b.circuits.iter().copied())
        .collect();
    let candidates: Vec<CircuitId> = spec
        .topology
        .circuits()
        .iter()
        .filter(|c| {
            observed.circuit_usable(&spec.topology, c.id)
                && !involved_circuits.contains(&c.id)
                && !involved_switches.contains(&c.a)
                && !involved_switches.contains(&c.b)
        })
        .map(|c| c.id)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    Some(candidates[rng.random_range(0..candidates.len())])
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_core::migration::{MigrationBuilder, MigrationOptions};
    use klotski_topology::presets::{self, PresetId};
    use rand::SeedableRng;

    fn spec() -> MigrationSpec {
        MigrationBuilder::hgrid_v1_to_v2(&presets::build(PresetId::A), &MigrationOptions::default())
            .unwrap()
    }

    #[test]
    fn disturbances_overlay_and_expire() {
        let spec = spec();
        let mut fleet = FleetSim::new(spec.initial.clone());
        let victim = spec.topology.circuits().iter().next().unwrap().id;
        fleet.fail_circuit(victim, Some(3));
        assert!(!fleet
            .observed(&spec.topology)
            .circuit_usable(&spec.topology, victim));
        // The planned view never sees the failure.
        assert!(fleet.planned.circuit_usable(&spec.topology, victim));
        fleet.expire(2);
        assert_eq!(fleet.active_disturbances().0, 1);
        fleet.expire(3);
        assert_eq!(fleet.active_disturbances().0, 0);
        assert!(fleet
            .observed(&spec.topology)
            .circuit_usable(&spec.topology, victim));
    }

    #[test]
    fn permanent_disturbance_never_expires() {
        let spec = spec();
        let mut fleet = FleetSim::new(spec.initial.clone());
        fleet.drain_external(spec.topology.circuits().iter().next().unwrap().a, None);
        fleet.expire(usize::MAX - 1);
        assert_eq!(fleet.active_disturbances().1, 1);
    }

    #[test]
    fn drift_counts_observed_divergence() {
        let spec = spec();
        let mut fleet = FleetSim::new(spec.initial.clone());
        assert_eq!(fleet.drift(&spec.topology), Drift::default());
        let victim = spec.topology.circuits().iter().next().unwrap().id;
        fleet.fail_circuit(victim, None);
        assert_eq!(fleet.drift(&spec.topology).circuits, 1);
    }

    #[test]
    fn picked_circuit_is_uninvolved_and_deterministic() {
        let spec = spec();
        let fleet = FleetSim::new(spec.initial.clone());
        let observed = fleet.observed(&spec.topology);
        let mut rng_a = SmallRng::seed_from_u64(7);
        let mut rng_b = SmallRng::seed_from_u64(7);
        let a = pick_uninvolved_circuit(&spec, &observed, &mut rng_a);
        let b = pick_uninvolved_circuit(&spec, &observed, &mut rng_b);
        assert_eq!(a, b);
        if let Some(c) = a {
            let involved: Vec<_> = spec
                .blocks
                .iter()
                .flat_map(|bl| bl.circuits.iter().copied())
                .collect();
            assert!(!involved.contains(&c));
        }
    }
}
