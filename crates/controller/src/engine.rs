//! The controller event loop: Apply → Audit → {Advance, Pause, Replan,
//! Rollback}.
//!
//! Each iteration applies one *batch* of blocks — canary-first: the first
//! `canary_blocks` blocks of a phase apply and audit before the remainder
//! does — then runs a **shadow audit**: it re-derives the actual post-batch
//! topology (the planned overlay plus every injected disturbance), diffs it
//! against the planned state, and re-runs the satisfiability check on the
//! real one under the realized demand. A safe audit advances; an unsafe
//! audit (or a lookahead showing the remaining plan has become unsafe)
//! **pauses** the run and triggers an **incremental replan** from the
//! current compact state — the residual migration seeded with the observed
//! topology and realized demand, searched with the ESC cache and
//! parent-state deltas of PRs 4–5. When replanning fails or the replan
//! budget runs out, the controller **rolls back** to the most recent
//! audited-safe snapshot that still audits safe under the current world.
//!
//! ## Determinism
//!
//! A run is a pure function of `(spec, plan, config)`: victim selection
//! draws from a seeded RNG, disturbance overlays iterate in `BTreeMap`
//! order, routing verdicts are bit-identical at any thread count, and
//! state-bounded replans expand identically everywhere. Wall-clock only
//! enters latency fields, which [`ControllerReport::fingerprint`] excludes
//! — so a fixed scenario seed yields one fingerprint at any lane count.
//! Time-bound replan aborts (`time_limit_ms`, deadlines) are the one
//! machine-dependent escape hatch; determinism holds whenever the state
//! budget binds first.

use crate::fleet::{pick_uninvolved_circuit, FleetSim};
use crate::flight::{FlightBundle, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
use crate::scenario::{EventKind, ReplanPolicy, Scenario, ScenarioEvent};
use klotski_core::compact::CompactState;
use klotski_core::executor::{pick_uninvolved_switch, plan_still_safe, realized_demand};
use klotski_core::migration::{MigrationBuilder, MigrationOptions, MigrationSpec};
use klotski_core::plan::{MigrationPlan, PlanPhase};
use klotski_core::planner::{AStarPlanner, DpPlanner, PlanStats, Planner, SearchBudget};
use klotski_core::satcheck::{LiveAudit, SatStats};
use klotski_core::{CostModel, EscMode, PlanError, SatChecker};
use klotski_parallel::WorkerPool;
use klotski_telemetry::{registry, span, Counter, LogLinearHistogram};
use klotski_topology::{presets, CircuitId, NetState, SwitchId};
use klotski_traffic::{DemandMatrix, SurgeEvent};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which planner the controller re-invokes on pause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplannerKind {
    /// The A\* planner (§4.4).
    AStar,
    /// The DP planner (§4.3).
    Dp,
}

/// Controller tunables, independent of any scenario file.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Seed for victim selection.
    pub seed: u64,
    /// Canary batch size; 0 applies whole phases at once.
    pub canary_blocks: usize,
    /// Organic demand growth per executed step.
    pub demand_growth_per_step: f64,
    /// Scripted disturbances, fired by step index.
    pub events: Vec<ScenarioEvent>,
    /// Replan budget and rollback trigger.
    pub replan: ReplanPolicy,
    /// Planner used for replans.
    pub replanner: ReplannerKind,
    /// Phase-cost α for replans.
    pub alpha: f64,
    /// Hard wall-clock deadline for the whole run (service jobs); checked
    /// between batches and passed into every replan's search budget.
    pub deadline: Option<Instant>,
    /// Flight-recorder window: structured events retained for the
    /// diagnostics bundle frozen on pause/rollback/abort (≥ 1).
    pub flight_capacity: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            seed: 23,
            canary_blocks: 1,
            demand_growth_per_step: 0.0,
            events: Vec::new(),
            replan: ReplanPolicy::default(),
            replanner: ReplannerKind::AStar,
            alpha: 0.0,
            deadline: None,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
        }
    }
}

/// One applied batch and its shadow audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Execution-order step index (across replans).
    pub step: usize,
    /// Action kind applied.
    pub action: String,
    /// Blocks in the batch.
    pub blocks: usize,
    /// True when the batch was a canary (a strict prefix of its phase).
    pub canary: bool,
    /// Shadow-audit verdict on the observed state under realized demand.
    pub safe: bool,
    /// Observed max circuit utilization.
    pub max_utilization: f64,
    /// Circuits usable in the plan but down in the fleet.
    pub drift_circuits: usize,
    /// Switches up in the plan but down in the fleet.
    pub drift_switches: usize,
    /// Whether the controller paused after this batch.
    pub paused: bool,
    /// The violated constraint that triggered the pause.
    pub pause_reason: Option<String>,
    /// Ensemble matrix index (0 = base, k = k-th variant) whose audit
    /// failed first, in index order; `None` when every matrix audited safe
    /// or the run has no ensemble.
    #[serde(default)]
    pub ensemble_fail_matrix: Option<usize>,
}

/// One replanning attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplanRecord {
    /// Step after which the replan ran.
    pub at_step: usize,
    /// Whether the planner produced a plan.
    pub ok: bool,
    /// Phases in the new plan (0 on failure).
    pub phases: usize,
    /// Planner failure, if any.
    pub error: Option<String>,
    /// Wall-clock planning latency, milliseconds. Excluded from
    /// [`ControllerReport::fingerprint`].
    pub latency_ms: f64,
    /// Search counters (ESC cache hits, incremental replays, …).
    pub stats: PlanStats,
}

/// A rollback to the last audited-safe snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RollbackRecord {
    /// Step at which the rollback was triggered.
    pub at_step: usize,
    /// Step whose snapshot was restored; `None` = the migration's initial
    /// state.
    pub to_step: Option<usize>,
    /// Snapshots discarded while walking back to a state that still audits
    /// safe under the current world.
    pub snapshots_skipped: usize,
    /// Whether the restored state audits safe.
    pub safe: bool,
}

/// Full trace of one controller run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerReport {
    /// Scenario (or spec) name.
    pub name: String,
    /// Whether the migration reached its target.
    pub completed: bool,
    /// Whether the run ended in a rollback.
    pub rolled_back: bool,
    /// Why the run stopped early, if it did.
    pub abort_reason: Option<String>,
    /// Every applied batch with its shadow audit.
    pub steps: Vec<StepRecord>,
    /// Every replanning attempt.
    pub replans: Vec<ReplanRecord>,
    /// The rollback, if one happened.
    pub rollback: Option<RollbackRecord>,
    /// Phases of the initial plan.
    pub initial_phases: usize,
    /// Search counters of the initial plan (zeroed when the caller planned
    /// externally).
    pub initial_stats: PlanStats,
    /// Initial planning latency, milliseconds (excluded from the
    /// fingerprint).
    pub initial_latency_ms: f64,
    /// Audit-checker counters: `live_audits` counts every shadow audit.
    pub audit_stats: SatStats,
    /// Flight-recorder diagnostics bundle, frozen at the *last*
    /// safe-pause, rollback, or abort of the run; `None` for a run that
    /// never stopped. Excluded from [`fingerprint`](Self::fingerprint).
    #[serde(default)]
    pub flight: Option<FlightBundle>,
}

impl ControllerReport {
    /// Pauses recorded over the run.
    pub fn pauses(&self) -> usize {
        self.steps.iter().filter(|s| s.paused).count()
    }

    /// Terminal-outcome label shared by the service's run-request counter,
    /// job spans, SSE terminal events, and bench rows: `completed` |
    /// `rolled_back` | `paused` (stopped early — deadline or exhausted
    /// pause — without rolling back). Job-level errors that never produce
    /// a report (invalid scenario, initial-plan failure) are labeled
    /// `failed` by the service.
    pub fn outcome_label(&self) -> &'static str {
        if self.completed {
            "completed"
        } else if self.rolled_back {
            "rolled_back"
        } else {
            "paused"
        }
    }

    /// FNV-1a hash over every deterministic field — equal across thread
    /// counts for a fixed scenario seed. Latency fields and search/audit
    /// counters are excluded; routed utilizations are included bit-exactly.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.str(&self.name);
        h.u64(self.completed as u64);
        h.u64(self.rolled_back as u64);
        h.opt_str(self.abort_reason.as_deref());
        h.u64(self.steps.len() as u64);
        for s in &self.steps {
            h.u64(s.step as u64);
            h.str(&s.action);
            h.u64(s.blocks as u64);
            h.u64(s.canary as u64);
            h.u64(s.safe as u64);
            h.u64(s.max_utilization.to_bits());
            h.u64(s.drift_circuits as u64);
            h.u64(s.drift_switches as u64);
            h.u64(s.paused as u64);
            h.opt_str(s.pause_reason.as_deref());
            h.u64(s.ensemble_fail_matrix.map(|k| k as u64 + 1).unwrap_or(0));
        }
        h.u64(self.replans.len() as u64);
        for r in &self.replans {
            h.u64(r.at_step as u64);
            h.u64(r.ok as u64);
            h.u64(r.phases as u64);
            h.opt_str(r.error.as_deref());
        }
        if let Some(rb) = &self.rollback {
            h.u64(rb.at_step as u64);
            h.u64(rb.to_step.map(|s| s as u64 + 1).unwrap_or(0));
            h.u64(rb.snapshots_skipped as u64);
            h.u64(rb.safe as u64);
        }
        h.u64(self.initial_phases as u64);
        h.finish()
    }
}

/// FNV-1a, the same construction the NPD digests use.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }
    fn opt_str(&mut self, s: Option<&str>) {
        match s {
            None => self.u64(0),
            Some(s) => {
                self.u64(1);
                self.str(s);
            }
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Controller failure surfaced to callers (scenario problems, initial
/// planning failures).
#[derive(Debug)]
pub enum ControllerError {
    /// The scenario failed validation.
    Scenario(crate::scenario::ScenarioError),
    /// The initial plan could not be produced.
    InitialPlan(PlanError),
}

impl fmt::Display for ControllerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControllerError::Scenario(e) => write!(f, "{e}"),
            ControllerError::InitialPlan(e) => write!(f, "initial planning failed: {e}"),
        }
    }
}

impl std::error::Error for ControllerError {}

impl From<crate::scenario::ScenarioError> for ControllerError {
    fn from(e: crate::scenario::ScenarioError) -> Self {
        ControllerError::Scenario(e)
    }
}

/// `klotski_controller_*` registry handles, registered once per process.
struct ControllerMetrics {
    phases: Arc<Counter>,
    audits: Arc<Counter>,
    audit_failures: Arc<Counter>,
    pauses: Arc<Counter>,
    replans: Arc<Counter>,
    replan_failures: Arc<Counter>,
    rollbacks: Arc<Counter>,
    /// Log-linear (p999-resolving) — replan tails are the long-horizon
    /// latency story.
    replan_seconds: Arc<LogLinearHistogram>,
    /// Log-linear wall time of every shadow-audit satisfiability check.
    audit_seconds: Arc<LogLinearHistogram>,
}

fn controller_metrics() -> ControllerMetrics {
    let reg = registry();
    for (name, help) in [
        (
            "klotski_controller_phases_applied_total",
            "Batches applied by the controller (canary batches count).",
        ),
        (
            "klotski_controller_audits_total",
            "Shadow audits of the observed fleet state.",
        ),
        (
            "klotski_controller_audit_failures_total",
            "Shadow audits that found a violated constraint.",
        ),
        (
            "klotski_controller_pauses_total",
            "Safe-pauses (audit failure or invalidated remaining plan).",
        ),
        (
            "klotski_controller_replans_total",
            "Successful incremental replans.",
        ),
        (
            "klotski_controller_replan_failures_total",
            "Replans that failed or exceeded their budget.",
        ),
        (
            "klotski_controller_rollbacks_total",
            "Rollbacks to the last audited-safe snapshot.",
        ),
        (
            "klotski_controller_replan_seconds",
            "Replanning latency (successful and failed attempts).",
        ),
        (
            "klotski_controller_audit_seconds",
            "Shadow-audit satisfiability-check wall time.",
        ),
    ] {
        reg.set_help(name, help);
    }
    ControllerMetrics {
        phases: reg.counter("klotski_controller_phases_applied_total"),
        audits: reg.counter("klotski_controller_audits_total"),
        audit_failures: reg.counter("klotski_controller_audit_failures_total"),
        pauses: reg.counter("klotski_controller_pauses_total"),
        replans: reg.counter("klotski_controller_replans_total"),
        replan_failures: reg.counter("klotski_controller_replan_failures_total"),
        rollbacks: reg.counter("klotski_controller_rollbacks_total"),
        replan_seconds: reg.loglinear("klotski_controller_replan_seconds"),
        audit_seconds: reg.loglinear("klotski_controller_audit_seconds"),
    }
}

/// An audited-safe snapshot the controller can roll back to.
struct SafePoint {
    /// Step whose audit blessed this snapshot; `None` = initial state.
    step: Option<usize>,
    planned: NetState,
}

/// Executes `plan` for `spec` under `cfg`, returning the full run trace.
/// Deterministic for a fixed `cfg.seed` (see the module docs).
pub fn run(spec: &MigrationSpec, plan: &MigrationPlan, cfg: &ControllerConfig) -> ControllerReport {
    let met = controller_metrics();
    let pool = Arc::new(WorkerPool::new(spec.threads.max(1)));
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let recorder = FlightRecorder::new(cfg.flight_capacity);

    // The audit checker routes arbitrary observed states from scratch
    // (`audit_live`), so it carries neither the ESC cache nor the
    // incremental engine; replan searches own those. One checker serves the
    // whole run — every spec generation shares the topology.
    let audit_spec = {
        let mut s = spec.clone();
        s.incremental = false;
        s
    };
    let mut checker = SatChecker::with_pool(&audit_spec, EscMode::Off, pool.clone());

    let mut report = ControllerReport {
        name: spec.name.clone(),
        completed: false,
        rolled_back: false,
        abort_reason: None,
        steps: Vec::new(),
        replans: Vec::new(),
        rollback: None,
        initial_phases: plan.num_phases(),
        initial_stats: PlanStats::default(),
        initial_latency_ms: 0.0,
        audit_stats: SatStats::default(),
        flight: None,
    };

    let mut active = spec.clone();
    let mut pending: Vec<PlanPhase> = plan.phases();
    let mut progress = CompactState::origin(active.num_types());
    let mut fleet = FleetSim::new(active.initial.clone());
    let base_demands = spec.demands.clone();
    let surges: Vec<SurgeEvent> = scenario_surges(&cfg.events);
    let mut multiplier = 1.0_f64;
    let mut step = 0usize;
    let mut replans_done = 0usize;
    let mut safe_points: Vec<SafePoint> = vec![SafePoint {
        step: None,
        planned: active.initial.clone(),
    }];

    'run: while let Some(phase) = pending.first().cloned() {
        if cfg.deadline.is_some_and(|d| Instant::now() > d) {
            let reason = format!("step {step}: run deadline exceeded");
            recorder.note("abort", step, &reason);
            report.flight = Some(FlightBundle::freeze(
                &recorder,
                &report.name,
                "deadline-abort",
                step,
                None,
                &fleet.drift(&active.topology),
                replans_done,
                &cfg.replan,
                safe_point_steps(&safe_points),
            ));
            report.abort_reason = Some(reason);
            break 'run;
        }

        // --- Apply: canary-first batch of the current phase.
        let total = phase.blocks.len();
        let take = if cfg.canary_blocks == 0 || cfg.canary_blocks >= total {
            total
        } else {
            cfg.canary_blocks
        };
        let canary = take < total;
        let action = active.actions.kind(phase.kind).to_string();
        let mut span = span!(
            "controller.phase",
            "step" = step,
            "action" = action.clone(),
            "blocks" = take,
            "canary" = canary,
        );
        for _ in 0..take {
            active.apply_next(&mut fleet.planned, &progress, phase.kind);
            progress = progress.advanced(phase.kind);
        }
        if take == total {
            pending.remove(0);
        } else {
            pending[0].blocks.drain(..take);
        }
        met.phases.inc();

        // --- The world moves: growth, expiring and newly fired events.
        multiplier *= 1.0 + cfg.demand_growth_per_step;
        fleet.expire(step);
        inject_events(&cfg.events, step, &active, &mut fleet, &mut rng);
        let realized = realized_demand(&base_demands, multiplier, &surges, step);

        // --- Shadow audit: re-derive the actual topology, diff against the
        // plan, re-run the satisfiability check on the real state.
        let observed = fleet.observed(&active.topology);
        let drift = fleet.drift(&active.topology);
        let (audit, ensemble_fail) =
            ensemble_audit(&mut checker, &active, &met, &observed, &realized);
        if !audit.safe {
            met.audit_failures.inc();
        }

        let mut pause_reason: Option<String> = audit.violation();
        if let Some(k) = ensemble_fail {
            if k > 0 {
                pause_reason = pause_reason.map(|v| format!("ensemble matrix {k}: {v}"));
            }
        }
        if pause_reason.is_none() {
            safe_points.push(SafePoint {
                step: Some(step),
                planned: fleet.planned.clone(),
            });
            // Lookahead: a world change can leave the *current* state safe
            // but doom a later one; §7.1 replans before walking into it.
            if !pending.is_empty()
                && !plan_still_safe(&active, &fleet.planned, &progress, &pending, &realized)
            {
                pause_reason = Some("remaining plan unsafe under realized demand".to_string());
            }
        }

        report.steps.push(StepRecord {
            step,
            action,
            blocks: take,
            canary,
            safe: audit.safe,
            max_utilization: audit.max_utilization,
            drift_circuits: drift.circuits,
            drift_switches: drift.switches,
            paused: pause_reason.is_some(),
            pause_reason: pause_reason.clone(),
            ensemble_fail_matrix: ensemble_fail,
        });
        recorder.step(report.steps.last().expect("just pushed"));

        // --- Pause → Replan → (Advance | Rollback).
        if let Some(reason) = pause_reason {
            span.field("outcome", "pause");
            met.pauses.inc();
            // Freeze the safe-pause bundle before replanning so it carries
            // the pre-replan budget state; a later rollback overwrites it.
            report.flight = Some(FlightBundle::freeze(
                &recorder,
                &report.name,
                "safe-pause",
                step,
                Some(reason.clone()),
                &drift,
                replans_done,
                &cfg.replan,
                safe_point_steps(&safe_points),
            ));
            if replans_done >= cfg.replan.max_replans {
                drop(span);
                rollback(
                    &mut report,
                    &met,
                    &mut checker,
                    &active,
                    &mut fleet,
                    &mut safe_points,
                    step,
                    &realized,
                    format!("{reason}; replan budget exhausted ({replans_done} replans)"),
                    &recorder,
                    cfg,
                    replans_done,
                );
                break 'run;
            }
            replans_done += 1;
            // Replan from the *observed* state: the residual migration's
            // initial topology carries the live disturbances, so the new
            // plan is safe given the failure, not just given the plan's
            // beliefs. Demand is the realized matrix.
            let residual = active.residual(&progress, observed.clone(), realized.clone());
            let started = Instant::now();
            let outcome = make_planner(cfg, pool.clone()).plan(&residual);
            let latency = started.elapsed();
            met.replan_seconds.record(latency);
            match outcome {
                Ok(out) => {
                    met.replans.inc();
                    report.replans.push(ReplanRecord {
                        at_step: step,
                        ok: true,
                        phases: out.plan.num_phases(),
                        error: None,
                        latency_ms: latency.as_secs_f64() * 1e3,
                        stats: out.stats,
                    });
                    recorder.replan(report.replans.last().expect("just pushed"));
                    active = residual;
                    progress = CompactState::origin(active.num_types());
                    fleet.planned = active.initial.clone();
                    pending = out.plan.phases();
                }
                Err(e) => {
                    met.replan_failures.inc();
                    let msg = deterministic_plan_error(&e);
                    report.replans.push(ReplanRecord {
                        at_step: step,
                        ok: false,
                        phases: 0,
                        error: Some(msg.clone()),
                        latency_ms: latency.as_secs_f64() * 1e3,
                        stats: PlanStats::default(),
                    });
                    recorder.replan(report.replans.last().expect("just pushed"));
                    drop(span);
                    rollback(
                        &mut report,
                        &met,
                        &mut checker,
                        &active,
                        &mut fleet,
                        &mut safe_points,
                        step,
                        &realized,
                        format!("replanning failed: {msg}"),
                        &recorder,
                        cfg,
                        replans_done,
                    );
                    break 'run;
                }
            }
        } else {
            span.field("outcome", "advance");
        }
        step += 1;
    }

    if report.rollback.is_none() && report.abort_reason.is_none() {
        report.completed = progress.is_target(&active.target_counts);
    }
    report.audit_stats = checker.stats();
    report
}

/// Restores the most recent snapshot that still audits safe under the
/// current realized world, walking back further when disturbances have
/// poisoned newer snapshots too.
#[allow(clippy::too_many_arguments)]
fn rollback(
    report: &mut ControllerReport,
    met: &ControllerMetrics,
    checker: &mut SatChecker,
    active: &MigrationSpec,
    fleet: &mut FleetSim,
    safe_points: &mut Vec<SafePoint>,
    at_step: usize,
    realized: &DemandMatrix,
    reason: String,
    recorder: &FlightRecorder,
    cfg: &ControllerConfig,
    replans_done: usize,
) {
    let mut span = span!("controller.rollback", "at_step" = at_step);
    met.rollbacks.inc();
    report.rolled_back = true;
    // The bundle shows the stack as it stood when the rollback fired, not
    // whatever the walk leaves behind.
    let stack = safe_point_steps(safe_points);
    let mut skipped = 0usize;
    while let Some(point) = safe_points.pop() {
        fleet.planned = point.planned.clone();
        let observed = fleet.observed(&active.topology);
        let (audit, _) = ensemble_audit(checker, active, met, &observed, realized);
        if audit.safe || safe_points.is_empty() {
            span.field("outcome", if audit.safe { "restored" } else { "unsafe" });
            report.rollback = Some(RollbackRecord {
                at_step,
                to_step: point.step,
                snapshots_skipped: skipped,
                safe: audit.safe,
            });
            recorder.rollback(report.rollback.as_ref().expect("just set"));
            report.flight = Some(FlightBundle::freeze(
                recorder,
                &report.name,
                "rollback",
                at_step,
                Some(reason.clone()),
                &fleet.drift(&active.topology),
                replans_done,
                &cfg.replan,
                stack,
            ));
            report.abort_reason = Some(if audit.safe {
                reason
            } else {
                format!("{reason}; no audited-safe state to roll back to")
            });
            return;
        }
        met.audit_failures.inc();
        skipped += 1;
    }
}

/// Shadow-audits `observed` under the realized demand and — when the spec
/// carries a traffic ensemble — under every realized variant, in index
/// order, short-circuiting on the first unsafe matrix so the decisive
/// matrix is the same at any thread count. Returns the decisive audit (the
/// first failing matrix's, or the base audit with `max_utilization` lifted
/// to the worst across the ensemble) and the failing matrix index
/// (0 = base). The lookahead and replans stay ensemble-aware separately:
/// `residual()` re-realizes the spec's ensemble against the demand it is
/// seeded with.
fn ensemble_audit(
    checker: &mut SatChecker,
    spec: &MigrationSpec,
    met: &ControllerMetrics,
    observed: &NetState,
    realized: &DemandMatrix,
) -> (LiveAudit, Option<usize>) {
    let t_audit = Instant::now();
    let mut audit = checker.audit_live(spec, observed, realized);
    met.audit_seconds.record(t_audit.elapsed());
    met.audits.inc();
    if !audit.safe {
        let fail = spec.ensemble.is_some().then_some(0);
        return (audit, fail);
    }
    let Some(ens_spec) = &spec.ensemble else {
        return (audit, None);
    };
    // Re-realize from the *realized* demand: growth and surges shift the
    // base, so the EWMA/surge variants shift with it. The spec's explicit
    // seed keeps the variants a pure function of (spec, demand).
    let Ok(ens) = ens_spec.realize(realized) else {
        return (audit, None);
    };
    for (i, variant) in ens.extras().iter().enumerate() {
        let t_audit = Instant::now();
        let v = checker.audit_live(spec, observed, variant);
        met.audit_seconds.record(t_audit.elapsed());
        met.audits.inc();
        if !v.safe {
            return (v, Some(i + 1));
        }
        if v.max_utilization > audit.max_utilization {
            audit.max_utilization = v.max_utilization;
            audit.worst_circuit = v.worst_circuit;
        }
        audit.min_residual_gbps = audit.min_residual_gbps.min(v.min_residual_gbps);
    }
    (audit, None)
}

/// Safe-point stack as flight-bundle entries: -1 is the migration's initial
/// state, other entries the blessing step's index.
fn safe_point_steps(safe_points: &[SafePoint]) -> Vec<i64> {
    safe_points
        .iter()
        .map(|p| p.step.map(|s| s as i64).unwrap_or(-1))
        .collect()
}

/// Formats a planner error without its wall-clock component.
/// `BudgetExceeded`'s `Display` embeds the elapsed time; recording that in
/// the report would leak machine-dependent text into error fields,
/// abort reasons, and the fingerprint.
fn deterministic_plan_error(e: &PlanError) -> String {
    match e {
        PlanError::BudgetExceeded { states_visited, .. } => {
            format!("planner budget exceeded after {states_visited} states")
        }
        other => other.to_string(),
    }
}

/// Builds the replanner with the policy's budget (state-bounded for
/// determinism, time/deadline as machine backstops) over the shared pool.
fn make_planner(cfg: &ControllerConfig, pool: Arc<WorkerPool>) -> Box<dyn Planner> {
    let budget = SearchBudget {
        max_states: cfg.replan.max_states,
        time_limit: Duration::from_millis(cfg.replan.time_limit_ms),
        deadline: cfg.deadline,
        ..SearchBudget::default()
    };
    let cost = CostModel::new(cfg.alpha);
    match cfg.replanner {
        ReplannerKind::AStar => Box::new(AStarPlanner {
            cost,
            budget,
            pool: Some(pool),
            ..AStarPlanner::default()
        }),
        ReplannerKind::Dp => Box::new(DpPlanner {
            cost,
            budget,
            pool: Some(pool),
            ..DpPlanner::default()
        }),
    }
}

/// Surge events of a timeline as `klotski-traffic` surges.
fn scenario_surges(events: &[ScenarioEvent]) -> Vec<SurgeEvent> {
    events
        .iter()
        .filter(|ev| ev.kind == EventKind::Surge)
        .map(|ev| SurgeEvent {
            from_step: ev.at_step,
            until_step: ev.until_step.unwrap_or(usize::MAX),
            factor: ev.factor,
            class: ev.class,
        })
        .collect()
}

/// Fires the non-surge events scheduled for `step` into the fleet.
fn inject_events(
    events: &[ScenarioEvent],
    step: usize,
    spec: &MigrationSpec,
    fleet: &mut FleetSim,
    rng: &mut SmallRng,
) {
    for ev in events {
        if ev.at_step != step {
            continue;
        }
        match ev.kind {
            EventKind::Surge => {}
            EventKind::LinkFailure => {
                let victim = match ev.circuit {
                    Some(idx) if idx < spec.topology.num_circuits() => {
                        Some(CircuitId::from_index(idx))
                    }
                    Some(_) => None,
                    None => pick_uninvolved_circuit(spec, &fleet.observed(&spec.topology), rng),
                };
                if let Some(c) = victim {
                    fleet.fail_circuit(c, ev.until_step);
                }
            }
            EventKind::ExternalOp => {
                let victim = match ev.switch {
                    Some(idx) if idx < spec.topology.num_switches() => {
                        Some(SwitchId::from_index(idx))
                    }
                    Some(_) => None,
                    None => pick_uninvolved_switch(spec, &fleet.observed(&spec.topology), rng),
                };
                if let Some(sw) = victim {
                    fleet.drain_external(sw, ev.until_step);
                }
            }
        }
    }
}

/// Builds the migration named by `scenario`, plans it, and runs the
/// controller against the scripted timeline. `deadline` bounds the whole
/// run including the initial plan (service jobs).
pub fn run_scenario(
    scenario: &Scenario,
    deadline: Option<Instant>,
) -> Result<ControllerReport, ControllerError> {
    scenario.validate()?;
    let id = scenario.preset_id()?;
    let preset = presets::build_for_bench(id);
    let mut opts = MigrationOptions::default();
    if let Some(theta) = scenario.theta {
        opts.theta = theta;
    }
    if let Some(threads) = scenario.threads {
        opts.threads = threads.max(1);
    }
    if let Some(scale) = scenario.block_scale {
        opts.block_scale = scale;
    }
    if let Some(every) = scenario.progress_every {
        opts.progress_every = every.max(1);
    }
    opts.ensemble = scenario.ensemble.clone();
    let spec =
        MigrationBuilder::for_preset(&preset, &opts).map_err(ControllerError::InitialPlan)?;
    // Victim indices can only be range-checked against the built topology;
    // `Scenario::validate` has no preset sizes.
    for (i, ev) in scenario.events.iter().enumerate() {
        if let Some(idx) = ev.circuit {
            if idx >= spec.topology.num_circuits() {
                return Err(ControllerError::Scenario(crate::scenario::ScenarioError(
                    format!(
                        "event {i}: circuit {idx} out of range (preset has {})",
                        spec.topology.num_circuits()
                    ),
                )));
            }
        }
        if let Some(idx) = ev.switch {
            if idx >= spec.topology.num_switches() {
                return Err(ControllerError::Scenario(crate::scenario::ScenarioError(
                    format!(
                        "event {i}: switch {idx} out of range (preset has {})",
                        spec.topology.num_switches()
                    ),
                )));
            }
        }
    }
    let cfg = ControllerConfig {
        seed: scenario.seed,
        canary_blocks: scenario.canary_blocks,
        demand_growth_per_step: scenario.demand_growth_per_step,
        events: scenario.events.clone(),
        replan: scenario.replan.clone(),
        replanner: if scenario.planner == "dp" {
            ReplannerKind::Dp
        } else {
            ReplannerKind::AStar
        },
        alpha: scenario.alpha,
        deadline,
        flight_capacity: DEFAULT_FLIGHT_CAPACITY,
    };
    // The initial plan runs under a generous state budget (it gates the
    // whole run) but still honors the caller's deadline.
    let initial_budget = SearchBudget {
        max_states: 50_000_000,
        time_limit: Duration::from_millis(scenario.replan.time_limit_ms.max(30_000)),
        deadline,
        ..SearchBudget::default()
    };
    let pool = Arc::new(WorkerPool::new(spec.threads.max(1)));
    let cost = CostModel::new(cfg.alpha);
    let planner: Box<dyn Planner> = match cfg.replanner {
        ReplannerKind::AStar => Box::new(AStarPlanner {
            cost,
            budget: initial_budget,
            pool: Some(pool),
            ..AStarPlanner::default()
        }),
        ReplannerKind::Dp => Box::new(DpPlanner {
            cost,
            budget: initial_budget,
            pool: Some(pool),
            ..DpPlanner::default()
        }),
    };
    let started = Instant::now();
    let outcome = planner.plan(&spec).map_err(ControllerError::InitialPlan)?;
    let initial_latency = started.elapsed();
    let mut report = run(&spec, &outcome.plan, &cfg);
    report.name = scenario.name.clone();
    report.initial_stats = outcome.stats;
    report.initial_latency_ms = initial_latency.as_secs_f64() * 1e3;
    Ok(report)
}
