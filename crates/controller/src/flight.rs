//! Flight recorder: the controller's always-on black box.
//!
//! A [`FlightRecorder`] rides along with every run — independent of the
//! process-global trace sink, so it costs one ring-buffer write per batch
//! even when tracing is off — keeping the last N structured events
//! (steps, replans, rollbacks) in a [`RingSink`]. When the engine
//! safe-pauses, rolls back, or aborts, it freezes a [`FlightBundle`]: the
//! recent event window plus the diagnostic state an operator needs first
//! (violated constraint, observed-topology drift diff, replan budget
//! state, safe-point stack). The bundle lands on
//! [`ControllerReport::flight`] and is written to disk by
//! `klotski run --flight-dump <dir>`.
//!
//! Every recorded field is deterministic — step indices, verdicts,
//! bit-exact utilizations; never wall-clock — so a bundle is as replayable
//! as the run fingerprint it accompanies:
//! [`ControllerReport::fingerprint`] excludes the bundle, and a fixed
//! scenario seed produces byte-identical bundles at any thread count.
//!
//! [`ControllerReport::flight`]: crate::ControllerReport::flight
//! [`ControllerReport::fingerprint`]: crate::ControllerReport::fingerprint

use crate::engine::{ReplanRecord, RollbackRecord, StepRecord};
use crate::fleet::Drift;
use crate::scenario::ReplanPolicy;
use klotski_telemetry::{RingSink, Sink};
use serde::{Deserialize, Map, Serialize, Value};

/// Default event-window size: enough to cover every batch of the presets'
/// runs and the tail of a long-horizon one.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// The last-N-events recorder. One per run, always on.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: RingSink,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events (≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: RingSink::new(capacity.max(1)),
        }
    }

    fn push(&self, obj: Map) {
        if let Ok(line) = serde_json::to_string(&Value::Object(obj)) {
            self.ring.write_line(&line);
        }
    }

    /// Records one applied batch and its shadow-audit verdict.
    pub fn step(&self, rec: &StepRecord) {
        let mut obj = Map::new();
        obj.insert("kind".into(), Value::String("step".into()));
        obj.insert("step".into(), Value::Number(rec.step as f64));
        obj.insert("action".into(), Value::String(rec.action.clone()));
        obj.insert("blocks".into(), Value::Number(rec.blocks as f64));
        obj.insert("canary".into(), Value::Bool(rec.canary));
        obj.insert("safe".into(), Value::Bool(rec.safe));
        obj.insert("max_utilization".into(), Value::Number(rec.max_utilization));
        obj.insert(
            "drift_circuits".into(),
            Value::Number(rec.drift_circuits as f64),
        );
        obj.insert(
            "drift_switches".into(),
            Value::Number(rec.drift_switches as f64),
        );
        obj.insert("paused".into(), Value::Bool(rec.paused));
        if let Some(reason) = &rec.pause_reason {
            obj.insert("pause_reason".into(), Value::String(reason.clone()));
        }
        if let Some(k) = rec.ensemble_fail_matrix {
            obj.insert("ensemble_fail_matrix".into(), Value::Number(k as f64));
        }
        self.push(obj);
    }

    /// Records one replanning attempt. Latency is deliberately omitted:
    /// bundles must stay machine-independent.
    pub fn replan(&self, rec: &ReplanRecord) {
        let mut obj = Map::new();
        obj.insert("kind".into(), Value::String("replan".into()));
        obj.insert("at_step".into(), Value::Number(rec.at_step as f64));
        obj.insert("ok".into(), Value::Bool(rec.ok));
        obj.insert("phases".into(), Value::Number(rec.phases as f64));
        if let Some(error) = &rec.error {
            obj.insert("error".into(), Value::String(error.clone()));
        }
        self.push(obj);
    }

    /// Records the rollback walk's outcome.
    pub fn rollback(&self, rec: &RollbackRecord) {
        let mut obj = Map::new();
        obj.insert("kind".into(), Value::String("rollback".into()));
        obj.insert("at_step".into(), Value::Number(rec.at_step as f64));
        obj.insert(
            "to_step".into(),
            match rec.to_step {
                Some(s) => Value::Number(s as f64),
                None => Value::String("initial".into()),
            },
        );
        obj.insert(
            "snapshots_skipped".into(),
            Value::Number(rec.snapshots_skipped as f64),
        );
        obj.insert("safe".into(), Value::Bool(rec.safe));
        self.push(obj);
    }

    /// Records a free-form deterministic note (deadline aborts and the
    /// like): `{"kind": <kind>, "step": <step>, "detail": <detail>}`.
    pub fn note(&self, kind: &str, step: usize, detail: &str) {
        let mut obj = Map::new();
        obj.insert("kind".into(), Value::String(kind.into()));
        obj.insert("step".into(), Value::Number(step as f64));
        obj.insert("detail".into(), Value::String(detail.into()));
        self.push(obj);
    }

    /// The retained event window, oldest first.
    pub fn lines(&self) -> Vec<String> {
        self.ring.lines()
    }
}

/// The diagnostics bundle frozen at a safe-pause, rollback, or abort.
/// Deterministic for a fixed scenario seed; excluded from the run
/// fingerprint so its presence never perturbs it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightBundle {
    /// Run (scenario or spec) name.
    pub name: String,
    /// What froze the bundle: `safe-pause` | `rollback` | `deadline-abort`.
    pub trigger: String,
    /// Step index at the trigger.
    pub at_step: usize,
    /// The violated constraint (audit violation or lookahead verdict), if
    /// one triggered the stop.
    pub violated_constraint: Option<String>,
    /// Circuits usable in the plan but down in the observed fleet.
    pub drift_circuits: usize,
    /// Switches up in the plan but down in the observed fleet.
    pub drift_switches: usize,
    /// Replans consumed when the bundle froze.
    pub replans_used: usize,
    /// The policy those replans were budgeted under.
    pub replan_budget: ReplanPolicy,
    /// Audited-safe snapshot stack, oldest first; -1 is the migration's
    /// initial state, other entries are the blessing step's index.
    pub safe_point_steps: Vec<i64>,
    /// The recorder's event window (JSONL, oldest first).
    pub events: Vec<String>,
}

impl FlightBundle {
    /// Freezes `recorder`'s window with the trigger-time diagnostics.
    #[allow(clippy::too_many_arguments)]
    pub fn freeze(
        recorder: &FlightRecorder,
        name: &str,
        trigger: &str,
        at_step: usize,
        violated_constraint: Option<String>,
        drift: &Drift,
        replans_used: usize,
        replan_budget: &ReplanPolicy,
        safe_point_steps: Vec<i64>,
    ) -> Self {
        Self {
            name: name.to_string(),
            trigger: trigger.to_string(),
            at_step,
            violated_constraint,
            drift_circuits: drift.circuits,
            drift_switches: drift.switches,
            replans_used,
            replan_budget: replan_budget.clone(),
            safe_point_steps,
            events: recorder.lines(),
        }
    }

    /// Serializes the bundle as pretty JSON (the `--flight-dump` format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bundle serializes")
    }

    /// Parses a dumped bundle back; used by tests and CI smoke checks.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("invalid flight bundle: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_keeps_the_newest_window() {
        let rec = FlightRecorder::new(2);
        for step in 0..4 {
            rec.note("tick", step, "x");
        }
        let lines = rec.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"step\":2"), "{lines:?}");
        assert!(lines[1].contains("\"step\":3"), "{lines:?}");
    }

    #[test]
    fn step_records_serialize_without_wall_clock_fields() {
        let rec = FlightRecorder::new(8);
        rec.step(&StepRecord {
            step: 3,
            action: "drain(ssw)".into(),
            blocks: 2,
            canary: true,
            safe: false,
            max_utilization: 0.81,
            drift_circuits: 4,
            drift_switches: 0,
            paused: true,
            pause_reason: Some("util 0.810 > theta".into()),
            ensemble_fail_matrix: None,
        });
        rec.replan(&ReplanRecord {
            at_step: 3,
            ok: false,
            phases: 0,
            error: Some("planner budget exceeded after 1 states".into()),
            latency_ms: 123.4,
            stats: Default::default(),
        });
        let lines = rec.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"pause_reason\""), "{}", lines[0]);
        assert!(
            !lines[1].contains("latency"),
            "wall clock leaked: {}",
            lines[1]
        );
    }

    #[test]
    fn bundle_round_trips_through_json() {
        let rec = FlightRecorder::new(4);
        rec.note("step", 0, "ok");
        let bundle = FlightBundle::freeze(
            &rec,
            "tight-link-failure",
            "rollback",
            2,
            Some("util 0.9 > theta".into()),
            &Drift {
                circuits: 3,
                switches: 1,
            },
            1,
            &ReplanPolicy::default(),
            vec![-1, 0, 1],
        );
        let back = FlightBundle::from_json(&bundle.to_json()).unwrap();
        assert_eq!(back, bundle);
        assert!(FlightBundle::from_json("{").is_err());
    }
}
