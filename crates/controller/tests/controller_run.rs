//! End-to-end controller runs: safe-pause → replan → complete, rollback
//! under a starved replan budget, and bit-determinism across thread counts.

use klotski_controller::scenario::{ReplanPolicy, ScenarioEvent};
use klotski_controller::{run_scenario, Scenario};
use klotski_traffic::EnsembleSpec;

/// Preset A with the utilization bound tightened to 0.62: enough headroom
/// for the clean plan, but a mid-phase link failure pushes the drained
/// fabric over θ and forces the controller to act.
fn tight_link_failure_scenario() -> Scenario {
    let mut s = Scenario::sample();
    s.name = "tight-link-failure".to_string();
    s.theta = Some(0.62);
    s.events = vec![ScenarioEvent::link_failure(1, None, None)];
    s
}

#[test]
fn clean_scenario_completes_without_pausing() {
    let mut s = Scenario::sample();
    s.events.clear();
    let report = run_scenario(&s, None).expect("scenario runs");
    assert!(report.completed, "abort: {:?}", report.abort_reason);
    assert!(!report.rolled_back);
    assert_eq!(report.pauses(), 0);
    assert!(report.replans.is_empty());
    assert!(report.steps.iter().all(|st| st.safe));
    // Canary batching splits phases, so there are at least as many audited
    // batches as planned phases.
    assert!(report.steps.len() >= report.initial_phases);
    assert!(report.steps.iter().any(|st| st.canary));
    assert_eq!(report.audit_stats.live_audits, report.steps.len() as u64);
}

#[test]
fn sample_scenario_survives_its_disturbances() {
    let report = run_scenario(&Scenario::sample(), None).expect("scenario runs");
    assert!(report.completed, "abort: {:?}", report.abort_reason);
    assert!(!report.rolled_back);
    // The link failure is visible to the audits as plan/fleet drift.
    assert!(report.steps.iter().any(|st| st.drift_circuits > 0));
}

#[test]
fn link_failure_pauses_replans_incrementally_and_completes() {
    let report = run_scenario(&tight_link_failure_scenario(), None).expect("scenario runs");

    // The failure lands mid-phase (after the canary batch of the drain
    // phase) and the shadow audit catches the violated bound.
    let pause = report
        .steps
        .iter()
        .find(|st| st.paused)
        .expect("the link failure must trigger a safe-pause");
    assert!(!pause.safe);
    assert!(
        pause.drift_circuits > 0,
        "audit must see the failed circuit"
    );
    assert!(
        pause.pause_reason.as_deref().unwrap().contains("theta"),
        "pause reason: {:?}",
        pause.pause_reason
    );

    // One incremental replan from the observed state, then completion.
    assert_eq!(report.replans.len(), 1);
    let replan = &report.replans[0];
    assert!(replan.ok);
    assert!(replan.phases > 0);
    // The replan search runs the delta-aware machinery: the ESC cache holds
    // its verdicts and child states route from parent deltas.
    assert!(replan.stats.esc_entries > 0, "{:?}", replan.stats);
    assert!(
        replan.stats.incremental_clean + replan.stats.incremental_dirty > 0,
        "{:?}",
        replan.stats
    );
    assert!(report.completed, "abort: {:?}", report.abort_reason);
    assert!(!report.rolled_back);
    // After the replan the plan carries the failure, so drift disappears.
    assert_eq!(report.steps.last().unwrap().drift_circuits, 0);
}

#[test]
fn budget_starved_replan_rolls_back_to_last_safe_step() {
    let mut s = tight_link_failure_scenario();
    s.name = "starved-replan".to_string();
    // A one-state search budget cannot reach the target: the replan fails
    // and the controller must fall back to the last audited-safe snapshot.
    s.replan = ReplanPolicy {
        max_states: 1,
        ..ReplanPolicy::default()
    };
    let report = run_scenario(&s, None).expect("scenario runs");

    assert!(!report.completed);
    assert!(report.rolled_back);
    assert_eq!(report.replans.len(), 1);
    assert!(!report.replans[0].ok);
    let rollback = report.rollback.as_ref().expect("rollback record");
    assert!(rollback.safe, "restored state must audit safe");
    // The pause fired at the step after the last safe one.
    let last_safe = report
        .steps
        .iter()
        .rev()
        .find(|st| st.safe)
        .expect("some step audited safe");
    assert_eq!(rollback.to_step, Some(last_safe.step));
    assert!(
        report
            .abort_reason
            .as_deref()
            .unwrap()
            .contains("replanning failed"),
        "abort: {:?}",
        report.abort_reason
    );
}

#[test]
fn runs_are_bit_deterministic_across_thread_counts() {
    let mut one = tight_link_failure_scenario();
    one.threads = Some(1);
    let mut four = tight_link_failure_scenario();
    four.threads = Some(4);

    let r1 = run_scenario(&one, None).expect("threads=1 runs");
    let r1b = run_scenario(&one, None).expect("threads=1 reruns");
    let r4 = run_scenario(&four, None).expect("threads=4 runs");

    assert_eq!(r1.fingerprint(), r1b.fingerprint(), "rerun must replay");
    assert_eq!(
        r1.fingerprint(),
        r4.fingerprint(),
        "thread count must not change the run"
    );
    // Spot-check the strongest fields behind the hash.
    assert_eq!(r1.steps.len(), r4.steps.len());
    for (a, b) in r1.steps.iter().zip(&r4.steps) {
        assert_eq!(a.max_utilization.to_bits(), b.max_utilization.to_bits());
        assert_eq!(a.pause_reason, b.pause_reason);
    }

    // The starved variant (rollback path) must replay too.
    let mut starved1 = tight_link_failure_scenario();
    starved1.replan = ReplanPolicy {
        max_states: 1,
        ..ReplanPolicy::default()
    };
    let mut starved4 = starved1.clone();
    starved1.threads = Some(1);
    starved4.threads = Some(4);
    let s1 = run_scenario(&starved1, None).expect("starved threads=1");
    let s4 = run_scenario(&starved4, None).expect("starved threads=4");
    assert_eq!(s1.fingerprint(), s4.fingerprint());
    assert!(s1.rolled_back && s4.rolled_back);
}

#[test]
fn ensemble_scenarios_audit_every_realized_matrix() {
    let mut s = Scenario::sample();
    s.name = "ensemble-clean".to_string();
    s.events.clear();
    s.ensemble = Some(EnsembleSpec::with_k(3, 97));
    let report = run_scenario(&s, None).expect("scenario runs");
    assert!(report.completed, "abort: {:?}", report.abort_reason);
    // Each step's shadow audit covers the base matrix plus the realized
    // variants, so strictly more live audits than steps.
    assert!(
        report.audit_stats.live_audits > report.steps.len() as u64,
        "audits {} vs steps {}",
        report.audit_stats.live_audits,
        report.steps.len()
    );
    assert!(report
        .steps
        .iter()
        .all(|st| st.ensemble_fail_matrix.is_none()));
}

#[test]
fn ensemble_runs_are_bit_deterministic_across_thread_counts() {
    let mut s = Scenario::sample();
    s.name = "ensemble-disturbed".to_string();
    s.ensemble = Some(EnsembleSpec::with_k(4, 11));
    let mut one = s.clone();
    one.threads = Some(1);
    let mut four = s.clone();
    four.threads = Some(4);

    let r1 = run_scenario(&one, None).expect("threads=1 runs");
    let r1b = run_scenario(&one, None).expect("threads=1 reruns");
    let r4 = run_scenario(&four, None).expect("threads=4 runs");

    assert_eq!(r1.fingerprint(), r1b.fingerprint(), "rerun must replay");
    assert_eq!(
        r1.fingerprint(),
        r4.fingerprint(),
        "thread count must not change an ensemble run"
    );
    // The decisive matrix (or its absence) replays bit-exactly too — it is
    // part of the fingerprint, but spot-check the raw fields anyway.
    assert_eq!(r1.steps.len(), r4.steps.len());
    for (a, b) in r1.steps.iter().zip(&r4.steps) {
        assert_eq!(a.ensemble_fail_matrix, b.ensemble_fail_matrix);
        assert_eq!(a.max_utilization.to_bits(), b.max_utilization.to_bits());
    }
}

#[test]
fn base_audit_failure_is_attributed_to_matrix_zero() {
    let mut s = tight_link_failure_scenario();
    s.name = "ensemble-base-fail".to_string();
    // EWMA-only variants (surge factor 1.0 collapses the surge range): the
    // link failure breaks the *base* matrix's audit, and the short-circuit
    // must attribute the pause to matrix 0 without auditing the rest.
    s.ensemble = Some(EnsembleSpec {
        surge_factor: 1.0,
        ..EnsembleSpec::with_k(2, 5)
    });
    let report = run_scenario(&s, None).expect("scenario runs");
    let pause = report
        .steps
        .iter()
        .find(|st| st.paused)
        .expect("the link failure must trigger a safe-pause");
    assert_eq!(pause.ensemble_fail_matrix, Some(0));
    assert!(
        pause.pause_reason.as_deref().unwrap().contains("theta"),
        "{:?}",
        pause.pause_reason
    );
}

#[test]
fn clean_runs_carry_no_flight_bundle() {
    let mut s = Scenario::sample();
    s.events.clear();
    let report = run_scenario(&s, None).expect("scenario runs");
    assert!(report.completed);
    assert!(report.flight.is_none());
}

#[test]
fn safe_pause_freezes_a_bundle_with_pre_replan_state() {
    let report = run_scenario(&tight_link_failure_scenario(), None).expect("scenario runs");
    assert!(report.completed, "abort: {:?}", report.abort_reason);
    let bundle = report.flight.as_ref().expect("pause freezes a bundle");
    assert_eq!(bundle.trigger, "safe-pause");
    assert!(
        bundle
            .violated_constraint
            .as_deref()
            .unwrap()
            .contains("theta"),
        "{:?}",
        bundle.violated_constraint
    );
    assert_eq!(bundle.replans_used, 0, "frozen before the replan spends");
    assert!(
        bundle.drift_circuits > 0,
        "failed circuit must show as drift"
    );
    assert_eq!(bundle.safe_point_steps.first(), Some(&-1));
    // The recorder saw every step up to the pause; the last recorded event
    // is the paused step itself.
    assert!(!bundle.events.is_empty());
    assert!(
        bundle.events.last().unwrap().contains("\"pause_reason\""),
        "{:?}",
        bundle.events.last()
    );
}

#[test]
fn rollback_bundle_is_deterministic_and_outside_the_fingerprint() {
    let mut starved1 = tight_link_failure_scenario();
    starved1.replan = ReplanPolicy {
        max_states: 1,
        ..ReplanPolicy::default()
    };
    let mut starved4 = starved1.clone();
    starved1.threads = Some(1);
    starved4.threads = Some(4);
    let s1 = run_scenario(&starved1, None).expect("starved threads=1");
    let s4 = run_scenario(&starved4, None).expect("starved threads=4");

    let b1 = s1.flight.as_ref().expect("rollback freezes a bundle");
    let b4 = s4.flight.as_ref().expect("rollback freezes a bundle");
    assert_eq!(b1.trigger, "rollback");
    assert_eq!(b1, b4, "bundles must be bit-identical across thread counts");
    assert_eq!(b1.replans_used, 1);
    assert!(b1.events.iter().any(|e| e.contains("\"kind\":\"replan\"")));
    assert!(b1
        .events
        .iter()
        .any(|e| e.contains("\"kind\":\"rollback\"")));

    // The bundle survives its dump format and never perturbs the hash.
    let back = klotski_controller::FlightBundle::from_json(&b1.to_json()).unwrap();
    assert_eq!(&back, b1);
    let mut stripped = s1.clone();
    stripped.flight = None;
    assert_eq!(stripped.fingerprint(), s1.fingerprint());
}

#[test]
fn out_of_range_victims_are_rejected_against_the_preset() {
    for (circuit, switch) in [(Some(usize::MAX), None), (None, Some(usize::MAX))] {
        let mut s = Scenario::sample();
        s.events = vec![if circuit.is_some() {
            ScenarioEvent::link_failure(1, None, circuit)
        } else {
            ScenarioEvent::external_op(1, None, switch)
        }];
        let err = run_scenario(&s, None).expect_err("out-of-range victim");
        assert!(
            err.to_string().contains("out of range"),
            "unexpected error: {err}"
        );
    }
}

#[test]
fn shipped_example_scenario_matches_the_builtin_sample() {
    let json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/scenarios/surge_and_failure.json"
    ))
    .expect("example scenario file exists");
    let parsed = Scenario::from_json(&json).expect("example scenario parses");
    assert_eq!(parsed, Scenario::sample());
}

#[test]
fn reports_roundtrip_through_json() {
    let report = run_scenario(&tight_link_failure_scenario(), None).expect("scenario runs");
    let json = serde_json::to_string(&report).unwrap();
    let back: klotski_controller::ControllerReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.completed, report.completed);
    assert_eq!(back.steps.len(), report.steps.len());
    assert_eq!(back.replans.len(), report.replans.len());
    assert_eq!(back.fingerprint(), report.fingerprint());
}
