//! Figure 9: planner runtimes across migration types (E, E-DMAG, E-SSW).
//!
//! Criterion measures the Klotski planners on all three migration types at
//! bench scale; the baselines' failures on E-DMAG are asserted, not timed.

use criterion::{criterion_group, criterion_main, Criterion};
use klotski_bench::runner::{run_planner, spec_for, PlannerKind};
use klotski_core::migration::MigrationOptions;
use klotski_topology::presets::PresetId;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_generality");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    for id in [PresetId::E, PresetId::EDmag, PresetId::ESsw] {
        let spec = spec_for(id, &MigrationOptions::default());
        for kind in [PlannerKind::KlotskiAStar, PlannerKind::KlotskiDp] {
            group.bench_function(format!("{}/{}", kind.label(), id), |b| {
                b.iter(|| {
                    let r = run_planner(kind, &spec, 0.0);
                    assert!(r.ok());
                    r.cost
                })
            });
        }
    }
    // The §6.3 capability result: MRC and Janus must reject E-DMAG.
    let dmag = spec_for(PresetId::EDmag, &MigrationOptions::default());
    assert!(!run_planner(PlannerKind::Mrc, &dmag, 0.0).ok());
    assert!(!run_planner(PlannerKind::Janus, &dmag, 0.0).ok());
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
