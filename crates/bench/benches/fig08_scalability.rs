//! Figure 8: planner runtimes across topology sizes (HGRID v1→v2).
//!
//! Criterion covers the laptop-fast presets A–C; the `report` binary runs
//! the full A–E matrix including the slow baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use klotski_bench::runner::{run_planner, spec_for, PlannerKind};
use klotski_core::migration::MigrationOptions;
use klotski_topology::presets::PresetId;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_scalability");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for id in [PresetId::A, PresetId::B, PresetId::C] {
        let spec = spec_for(id, &MigrationOptions::default());
        for kind in PlannerKind::COMPARISON {
            group.bench_function(format!("{}/{}", kind.label(), id), |b| {
                b.iter(|| {
                    let r = run_planner(kind, &spec, 0.0);
                    assert!(r.ok());
                    r.cost
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
