//! Satisfiability-checking microbenchmarks: the cost one ESC cache hit
//! avoids (§4.2), across cache modes.

use criterion::{criterion_group, criterion_main, Criterion};
use klotski_bench::parallel::sample_batch;
use klotski_bench::runner::spec_for;
use klotski_core::migration::MigrationOptions;
use klotski_core::satcheck::{EscMode, SatChecker};
use klotski_core::CompactState;
use klotski_parallel::default_lanes;
use klotski_topology::presets::PresetId;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("satcheck");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(6));
    for id in [PresetId::B, PresetId::C, PresetId::E] {
        let spec = spec_for(id, &MigrationOptions::default());
        let v =
            CompactState::from_counts(spec.target_counts.counts().iter().map(|&c| c / 2).collect());
        let state = spec.state_for(&v);

        group.bench_function(format!("full-evaluation/{id}"), |b| {
            let mut checker = SatChecker::with_threads(&spec, EscMode::Off, 1);
            b.iter(|| checker.check(&spec, &v, &state, None))
        });
        group.bench_function(format!("full-evaluation-parallel/{id}"), |b| {
            let mut checker = SatChecker::with_threads(&spec, EscMode::Off, default_lanes());
            b.iter(|| checker.check(&spec, &v, &state, None))
        });
        group.bench_function(format!("compact-cache-hit/{id}"), |b| {
            let mut checker = SatChecker::new(&spec, EscMode::Compact);
            checker.check(&spec, &v, &state, None); // warm
            b.iter(|| checker.check(&spec, &v, &state, None))
        });
        group.bench_function(format!("fulltopo-cache-hit/{id}"), |b| {
            let mut checker = SatChecker::new(&spec, EscMode::FullTopology);
            checker.check(&spec, &v, &state, None); // warm
            b.iter(|| checker.check(&spec, &v, &state, None))
        });

        // Batched checking (the planner-expansion shape): sequential lanes
        // vs the machine's available parallelism.
        let states = sample_batch(&spec, 16);
        let items: Vec<_> = states.iter().map(|(v, s)| (v, s, None)).collect();
        for threads in [1, default_lanes()] {
            group.bench_function(format!("batch16-{threads}t/{id}"), |b| {
                let mut checker = SatChecker::with_threads(&spec, EscMode::Off, threads);
                b.iter(|| checker.check_batch(&spec, &items))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
