//! Satisfiability-checking microbenchmarks: the cost one ESC cache hit
//! avoids (§4.2), across cache modes.

use criterion::{criterion_group, criterion_main, Criterion};
use klotski_bench::runner::spec_for;
use klotski_core::migration::MigrationOptions;
use klotski_core::satcheck::{EscMode, SatChecker};
use klotski_core::CompactState;
use klotski_topology::presets::PresetId;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("satcheck");
    group.sample_size(20).measurement_time(Duration::from_secs(6));
    for id in [PresetId::B, PresetId::C, PresetId::E] {
        let spec = spec_for(id, &MigrationOptions::default());
        let v = CompactState::from_counts(
            spec.target_counts
                .counts()
                .iter()
                .map(|&c| c / 2)
                .collect(),
        );
        let state = spec.state_for(&v);

        group.bench_function(format!("full-evaluation/{id}"), |b| {
            let mut checker = SatChecker::new(&spec, EscMode::Off);
            b.iter(|| checker.check(&spec, &v, &state, None))
        });
        group.bench_function(format!("compact-cache-hit/{id}"), |b| {
            let mut checker = SatChecker::new(&spec, EscMode::Compact);
            checker.check(&spec, &v, &state, None); // warm
            b.iter(|| checker.check(&spec, &v, &state, None))
        });
        group.bench_function(format!("fulltopo-cache-hit/{id}"), |b| {
            let mut checker = SatChecker::new(&spec, EscMode::FullTopology);
            checker.check(&spec, &v, &state, None); // warm
            b.iter(|| checker.check(&spec, &v, &state, None))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
