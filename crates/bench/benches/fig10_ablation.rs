//! Figure 10: Klotski design ablations (w/o OB, w/o A*, w/o ESC).

use criterion::{criterion_group, criterion_main, Criterion};
use klotski_bench::runner::{run_planner, spec_for, spec_without_ob, PlannerKind};
use klotski_core::migration::MigrationOptions;
use klotski_topology::presets::PresetId;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let id = PresetId::B;
    let opts = MigrationOptions::default();
    let spec = spec_for(id, &opts);
    let fine = spec_without_ob(id, &opts).expect("w/o OB spec");
    for kind in PlannerKind::ABLATION {
        let target = if kind == PlannerKind::WithoutOb {
            &fine
        } else {
            &spec
        };
        group.bench_function(format!("{}/{}", kind.label(), id), |b| {
            b.iter(|| run_planner(kind, target, 0.0).cost)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
