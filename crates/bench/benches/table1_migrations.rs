//! Table 1: migration-spec construction across the three migration types.
//!
//! Spec construction is the interactive front half of the pipeline
//! (topology union, demand calibration, port/space derivation), so its
//! latency matters to operators tuning inputs iteratively (§2.3).

use criterion::{criterion_group, criterion_main, Criterion};
use klotski_core::migration::{MigrationBuilder, MigrationOptions};
use klotski_topology::presets::{self, PresetId};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_migrations");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for id in [PresetId::C, PresetId::EDmag, PresetId::ESsw] {
        let preset = presets::build_for_bench(id);
        group.bench_function(format!("spec/{id}"), |b| {
            b.iter(|| {
                MigrationBuilder::for_preset(&preset, &MigrationOptions::default())
                    .unwrap()
                    .num_blocks()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
