//! Figure 13: cost-function (α) sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use klotski_bench::runner::{run_planner, spec_for, PlannerKind};
use klotski_core::migration::MigrationOptions;
use klotski_topology::presets::PresetId;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_alpha");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let spec = spec_for(PresetId::B, &MigrationOptions::default());
    for alpha in [0.0, 0.5, 1.0] {
        for kind in [PlannerKind::KlotskiAStar, PlannerKind::KlotskiDp] {
            group.bench_function(format!("{}/alpha-{alpha}", kind.label()), |b| {
                b.iter(|| run_planner(kind, &spec, alpha).cost)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
