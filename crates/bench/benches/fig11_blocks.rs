//! Figure 11: operation-block granularity sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use klotski_bench::runner::{run_planner, spec_for, PlannerKind};
use klotski_core::migration::MigrationOptions;
use klotski_topology::presets::PresetId;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_blocks");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for scale in [0.5, 1.0, 2.0] {
        let opts = MigrationOptions {
            block_scale: scale,
            ..MigrationOptions::default()
        };
        let spec = spec_for(PresetId::B, &opts);
        for kind in [PlannerKind::KlotskiAStar, PlannerKind::KlotskiDp] {
            group.bench_function(format!("{}/{}x", kind.label(), scale), |b| {
                b.iter(|| run_planner(kind, &spec, 0.0).cost)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
