//! Figure 12: utilization-rate-bound sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use klotski_bench::runner::{run_planner, spec_for, PlannerKind};
use klotski_core::migration::MigrationOptions;
use klotski_topology::presets::PresetId;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_theta");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for theta in [0.65, 0.75, 0.95] {
        let opts = MigrationOptions {
            theta,
            ..MigrationOptions::default()
        };
        let spec = spec_for(PresetId::B, &opts);
        for kind in [PlannerKind::KlotskiAStar, PlannerKind::KlotskiDp] {
            group.bench_function(
                format!("{}/theta-{:.0}%", kind.label(), theta * 100.0),
                |b| b.iter(|| run_planner(kind, &spec, 0.0).cost),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
