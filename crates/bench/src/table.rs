//! Minimal aligned-column ASCII table printing for the report binary.

/// A printable table: header row plus data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cell.chars().count();
                line.push_str(cell);
                line.push_str(&" ".repeat(pad));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio like the paper's speedup annotations ("8.4x").
pub fn ratio(numerator: std::time::Duration, denominator: std::time::Duration) -> String {
    let d = denominator.as_secs_f64();
    if d <= 0.0 {
        return "-".into();
    }
    format!("{:.1}x", numerator.as_secs_f64() / d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["topo", "cost"]);
        t.row(["A", "4.0"]);
        t.row(["E-DMAG", "5.0"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("topo"));
        assert!(lines[2].starts_with("A"));
        // Columns align: "cost" starts at the same offset in all rows.
        let col = lines[0].find("cost").unwrap();
        assert_eq!(&lines[3][col..col + 3], "5.0");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(
            ratio(Duration::from_secs(3), Duration::from_secs(2)),
            "1.5x"
        );
        assert_eq!(ratio(Duration::from_secs(1), Duration::ZERO), "-");
    }
}
