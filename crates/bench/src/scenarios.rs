//! Controller scenario sweep: scripted disturbance timelines executed end
//! to end by `klotski-controller` on preset A. Four timelines cover the
//! controller's whole state machine — a clean run (no disturbances), the
//! README's surge-plus-transient-failure sample (absorbed without
//! pausing), a tight-θ link failure that forces a safe-pause and an
//! incremental replan, and the same failure with a starved replanning
//! budget so the controller rolls back instead. The `report` binary's
//! `scenarios` experiment renders a table and writes the raw rows —
//! completion outcomes, replan latency, ESC/incremental reuse — to
//! `BENCH_scenarios.json`.

use crate::table::Table;
use klotski_controller::{run_scenario, ReplanPolicy, Scenario, ScenarioEvent};
use serde::Serialize;

/// One scenario execution in `BENCH_scenarios.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioRow {
    /// Scenario name.
    pub scenario: String,
    /// Topology preset the migration runs on.
    pub preset: String,
    /// Phases of the initial plan.
    pub initial_phases: usize,
    /// Initial planning latency, milliseconds.
    pub initial_plan_ms: f64,
    /// Executed batches (canary batches count).
    pub steps: usize,
    /// Shadow audits run (one per executed batch).
    pub audits: u64,
    /// Safe-pauses triggered by a failed audit or lookahead.
    pub pauses: usize,
    /// Replanning attempts.
    pub replans: usize,
    /// Replanning attempts that produced a plan.
    pub replans_ok: usize,
    /// Total replanning latency across all attempts, milliseconds.
    pub replan_ms: f64,
    /// ESC cache entries live after the last replan (0 when no replan ran).
    pub replan_esc_entries: u64,
    /// Incremental routing replays across all replans (clean + dirty).
    pub replan_incremental: u64,
    /// `completed` | `rolled_back` | `paused` — the shared
    /// [`klotski_controller::ControllerReport::outcome_label`] vocabulary,
    /// matching the service's run counter labels and SSE terminal events.
    pub outcome: String,
    /// Deterministic run fingerprint (hex), stable across thread counts.
    pub fingerprint: String,
}

/// The JSON document written to `BENCH_scenarios.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ScenariosReport {
    pub rows: Vec<ScenarioRow>,
}

/// The four timelines of the sweep, all on preset A so the report stays
/// laptop-fast. The tight-θ pair is calibrated so the seeded link failure
/// pushes four circuits above the bound: with the default budget the
/// controller replans around it; with `max_states: 1` the replan starves
/// and the controller rolls back to the last audited-safe step.
fn timelines() -> Vec<Scenario> {
    let clean = Scenario {
        name: "clean".to_string(),
        events: vec![],
        ..Scenario::sample()
    };
    let tight = Scenario {
        name: "tight-link-failure".to_string(),
        theta: Some(0.62),
        events: vec![ScenarioEvent::link_failure(1, None, None)],
        ..Scenario::sample()
    };
    let starved = Scenario {
        name: "starved-rollback".to_string(),
        replan: ReplanPolicy {
            max_states: 1,
            ..ReplanPolicy::default()
        },
        ..tight.clone()
    };
    vec![clean, Scenario::sample(), tight, starved]
}

/// Runs every timeline and builds the JSON report.
pub fn measure() -> ScenariosReport {
    let rows = timelines()
        .iter()
        .map(|scenario| {
            let report = run_scenario(scenario, None)
                .unwrap_or_else(|e| panic!("scenario {} failed to start: {e}", scenario.name));
            let outcome = report.outcome_label();
            ScenarioRow {
                scenario: report.name.clone(),
                preset: scenario.preset.clone(),
                initial_phases: report.initial_phases,
                initial_plan_ms: report.initial_latency_ms,
                steps: report.steps.len(),
                audits: report.audit_stats.live_audits,
                pauses: report.pauses(),
                replans: report.replans.len(),
                replans_ok: report.replans.iter().filter(|r| r.ok).count(),
                // `+ 0.0` normalizes the empty sum's -0.0 for the JSON.
                replan_ms: report.replans.iter().map(|r| r.latency_ms).sum::<f64>() + 0.0,
                replan_esc_entries: report
                    .replans
                    .iter()
                    .map(|r| r.stats.esc_entries)
                    .max()
                    .unwrap_or(0),
                replan_incremental: report
                    .replans
                    .iter()
                    .map(|r| r.stats.incremental_clean + r.stats.incremental_dirty)
                    .sum(),
                outcome: outcome.to_string(),
                fingerprint: format!("{:016x}", report.fingerprint()),
            }
        })
        .collect();
    ScenariosReport { rows }
}

/// The `scenarios` experiment: renders the sweep as a table and writes
/// `BENCH_scenarios.json` in the working directory.
pub fn scenarios() -> String {
    let report = measure();
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = "BENCH_scenarios.json";
    let note = match std::fs::write(path, &json) {
        Ok(()) => format!("wrote {path}"),
        Err(e) => format!("could not write {path}: {e}"),
    };
    let mut t = Table::new([
        "scenario",
        "steps",
        "audits",
        "pauses",
        "replans",
        "replan time",
        "esc/incr reuse",
        "outcome",
        "fingerprint",
    ]);
    for r in &report.rows {
        t.row([
            r.scenario.clone(),
            r.steps.to_string(),
            r.audits.to_string(),
            r.pauses.to_string(),
            format!("{}/{} ok", r.replans_ok, r.replans),
            if r.replans == 0 {
                "-".to_string()
            } else {
                format!("{:.1}ms", r.replan_ms)
            },
            format!("{}/{}", r.replan_esc_entries, r.replan_incremental),
            r.outcome.clone(),
            r.fingerprint.clone(),
        ]);
    }
    format!(
        "== Controller scenarios (preset A timelines) ==\n{}\n[{note}]",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_exercises_the_whole_state_machine() {
        let report = measure();
        assert_eq!(report.rows.len(), 4);
        let by_name = |n: &str| {
            report
                .rows
                .iter()
                .find(|r| r.scenario == n)
                .unwrap_or_else(|| panic!("missing row {n}"))
        };
        // Clean and sample runs complete without pausing.
        for name in ["clean", "surge-and-failure"] {
            let r = by_name(name);
            assert_eq!(r.outcome, "completed", "{name}");
            assert_eq!(r.pauses, 0, "{name}");
            assert_eq!(r.audits as usize, r.steps, "{name}: one audit per step");
        }
        // The tight-θ failure pauses, replans incrementally, and completes.
        let tight = by_name("tight-link-failure");
        assert_eq!(tight.outcome, "completed");
        assert!(tight.pauses > 0);
        assert!(tight.replans_ok >= 1);
        assert!(tight.replan_esc_entries > 0 && tight.replan_incremental > 0);
        // The starved variant fails its replan and rolls back.
        let starved = by_name("starved-rollback");
        assert_eq!(starved.outcome, "rolled_back");
        assert_eq!(starved.replans_ok, 0);
        assert!(starved.replans >= 1);
    }
}
